//! Edge-case and failure-injection tests for the operator layer, beyond
//! the per-module unit tests.

use operators::{
    materialize, top_k, top_k_projected, Binding, BoxedStream, IncrementalMerge, OpMetrics,
    PartialAnswer, PullStrategy, RankJoin, VecStream,
};
use sparql::Var;
use specqp_common::{Score, TermId};

fn ans(pairs: &[(u32, u32)], score: f64) -> PartialAnswer {
    PartialAnswer::new(
        Binding::from_pairs(pairs.iter().map(|&(v, t)| (Var(v), TermId(t))).collect()),
        Score::new(score),
    )
}

#[test]
fn join_of_joins_three_way() {
    // (A ⋈ B) ⋈ C with a shared key variable ?0 everywhere.
    let a: Vec<_> = (0..20)
        .map(|i| ans(&[(0, i % 5), (1, i)], 1.0 - i as f64 * 0.01))
        .collect();
    let b: Vec<_> = (0..20)
        .map(|i| ans(&[(0, i % 5), (2, i)], 1.0 - i as f64 * 0.02))
        .collect();
    let c: Vec<_> = (0..20)
        .map(|i| ans(&[(0, i % 5), (3, i)], 1.0 - i as f64 * 0.03))
        .collect();
    let m = OpMetrics::new_handle();
    let ab = RankJoin::new(
        Box::new(VecStream::new(a.clone())),
        Box::new(VecStream::new(b.clone())),
        vec![Var(0)],
        PullStrategy::Adaptive,
        m.clone(),
    );
    let mut abc = RankJoin::new(
        Box::new(ab),
        Box::new(VecStream::new(c.clone())),
        vec![Var(0)],
        PullStrategy::Adaptive,
        m,
    );
    let got = top_k(&mut abc, 10);
    assert_eq!(got.len(), 10);
    for w in got.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    // Reference: brute force over all triples of rows.
    let mut best = Score::ZERO;
    for x in &a {
        for y in &b {
            for z in &c {
                if x.binding.get(Var(0)) == y.binding.get(Var(0))
                    && y.binding.get(Var(0)) == z.binding.get(Var(0))
                {
                    best = best.max(x.score + y.score + z.score);
                }
            }
        }
    }
    assert!(
        got[0].score.approx_eq(best, 1e-9),
        "{:?} vs {best:?}",
        got[0].score
    );
    // The join result binds all four variables.
    for v in [Var(0), Var(1), Var(2), Var(3)] {
        assert!(got[0].binding.get(v).is_some());
    }
}

#[test]
fn merge_of_merges_composes() {
    let l1 = vec![ans(&[(0, 1)], 1.0), ans(&[(0, 2)], 0.4)];
    let l2 = vec![ans(&[(0, 3)], 0.8)];
    let l3 = vec![ans(&[(0, 1)], 0.9), ans(&[(0, 4)], 0.3)];
    let inner = IncrementalMerge::new(vec![
        Box::new(VecStream::new(l1)) as BoxedStream<'static>,
        Box::new(VecStream::new(l2)),
    ]);
    let outer = IncrementalMerge::new(vec![
        Box::new(inner) as BoxedStream<'static>,
        Box::new(VecStream::new(l3)),
    ]);
    let out = materialize(outer);
    // Binding {0→1} appears in l1 (1.0) and l3 (0.9): dedup keeps 1.0.
    assert_eq!(out.len(), 4);
    assert_eq!(out[0].score, Score::new(1.0));
    assert!(
        out.iter()
            .filter(|a| a.binding.get(Var(0)) == Some(TermId(1)))
            .count()
            == 1
    );
}

#[test]
fn zero_score_tuples_flow_through() {
    let l = vec![ans(&[(0, 1)], 0.0)];
    let r = vec![ans(&[(0, 1)], 0.0)];
    let m = OpMetrics::new_handle();
    let join = RankJoin::new(
        Box::new(VecStream::new(l)),
        Box::new(VecStream::new(r)),
        vec![Var(0)],
        PullStrategy::Alternate,
        m,
    );
    let out = materialize(join);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].score, Score::ZERO);
}

#[test]
fn top_k_zero_returns_nothing_without_pulling() {
    let m = OpMetrics::new_handle();
    let mut s = VecStream::new(vec![ans(&[(0, 1)], 1.0)]);
    assert!(top_k(&mut s, 0).is_empty());
    assert_eq!(m.answers_created(), 0);
    // Stream untouched.
    assert_eq!(s.remaining(), 1);
}

#[test]
fn projected_topk_on_empty_projection_collapses_to_one() {
    // Projecting onto an empty variable list makes all answers identical —
    // max semantics keeps only the best.
    let mut s = VecStream::new(vec![ans(&[(0, 1)], 1.0), ans(&[(0, 2)], 0.5)]);
    let out = top_k_projected(&mut s, 10, &[]);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].score, Score::new(1.0));
}

#[test]
fn duplicate_scores_deterministic_order() {
    // Equal scores order by binding (deterministic across runs).
    let items = vec![
        ans(&[(0, 5)], 0.5),
        ans(&[(0, 1)], 0.5),
        ans(&[(0, 3)], 0.5),
    ];
    let m = OpMetrics::new_handle();
    let join = RankJoin::new(
        Box::new(VecStream::from_unsorted(items.clone())),
        Box::new(VecStream::new(vec![
            ans(&[(0, 1)], 0.1),
            ans(&[(0, 3)], 0.1),
            ans(&[(0, 5)], 0.1),
        ])),
        vec![Var(0)],
        PullStrategy::Alternate,
        m,
    );
    let out1 = materialize(join);
    let ids1: Vec<_> = out1
        .iter()
        .map(|a| a.binding.get(Var(0)).unwrap().0)
        .collect();
    assert_eq!(ids1, vec![1, 3, 5], "binding tie-break ascending");
}

#[test]
fn metrics_aggregate_across_whole_tree() {
    let m = OpMetrics::new_handle();
    let l: Vec<_> = (0..10)
        .map(|i| ans(&[(0, i)], 1.0 - i as f64 * 0.05))
        .collect();
    let r: Vec<_> = (0..10)
        .map(|i| ans(&[(0, i)], 1.0 - i as f64 * 0.05))
        .collect();
    let merge = IncrementalMerge::new(vec![Box::new(VecStream::new(l)) as BoxedStream<'static>]);
    let mut join = RankJoin::new(
        Box::new(merge),
        Box::new(VecStream::new(r)),
        vec![Var(0)],
        PullStrategy::Adaptive,
        m.clone(),
    );
    let _ = top_k(&mut join, 3);
    assert!(m.sorted_accesses() > 0);
    assert!(m.answers_created() > 0);
    assert!(m.heap_pushes() > 0);
}
