//! Configuration-ablation tests: the engine must stay *correct* under every
//! configuration — strategies and estimators may change plans and costs,
//! never answer validity.

use datagen::{XkgConfig, XkgGenerator};
use operators::PullStrategy;
use specqp::{Engine, EngineConfig};
use specqp_stats::{IndependenceEstimator, RefitMode};

#[test]
fn pull_strategies_agree_on_results() {
    let ds = XkgGenerator::new(XkgConfig::small(61)).generate();
    let alt = Engine::with_config(
        &ds.graph,
        &ds.registry,
        EngineConfig {
            refit: RefitMode::TwoBucket,
            pull: PullStrategy::Alternate,
            ..EngineConfig::default()
        },
    );
    let ada = Engine::with_config(
        &ds.graph,
        &ds.registry,
        EngineConfig {
            refit: RefitMode::TwoBucket,
            pull: PullStrategy::Adaptive,
            ..EngineConfig::default()
        },
    );
    for q in ds.workload.queries.iter().take(4) {
        let a = alt.run_trinit(q, 10);
        let b = ada.run_trinit(q, 10);
        assert_eq!(a.answers.len(), b.answers.len());
        for (x, y) in a.answers.iter().zip(&b.answers) {
            // Same scores at every rank (bindings may tie-split).
            assert!(x.score.approx_eq(y.score, 1e-9));
        }
    }
}

#[test]
fn refit_modes_give_valid_plans() {
    let ds = XkgGenerator::new(XkgConfig::small(62)).generate();
    for refit in [
        RefitMode::TwoBucket,
        RefitMode::MultiBucket(16),
        RefitMode::MultiBucket(128),
    ] {
        let engine = Engine::with_config(
            &ds.graph,
            &ds.registry,
            EngineConfig {
                refit,
                pull: PullStrategy::Adaptive,
                ..EngineConfig::default()
            },
        );
        for q in ds.workload.queries.iter().take(3) {
            let out = engine.run_specqp(q, 10);
            assert!(out.plan.is_valid_partition());
            for w in out.answers.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }
}

#[test]
fn independence_cardinality_backend_works() {
    let ds = XkgGenerator::new(XkgConfig::small(63)).generate();
    let engine = Engine::new(&ds.graph, &ds.registry)
        .with_cardinality(Box::new(IndependenceEstimator::new()));
    for q in ds.workload.queries.iter().take(3) {
        let out = engine.run_specqp(q, 10);
        assert!(out.plan.is_valid_partition());
        // Answers still sorted + valid (plan quality may differ).
        for w in out.answers.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}

#[test]
fn multibucket_richer_model_never_invalidates_results() {
    // The paper suggests multi-bucket histograms as the higher-fidelity
    // option; verify it changes only plans/costs, not result validity.
    let ds = XkgGenerator::new(XkgConfig::small(64)).generate();
    let two = Engine::new(&ds.graph, &ds.registry);
    let multi = Engine::with_config(
        &ds.graph,
        &ds.registry,
        EngineConfig {
            refit: RefitMode::MultiBucket(64),
            pull: PullStrategy::Adaptive,
            ..EngineConfig::default()
        },
    );
    let q = &ds.workload.queries[0];
    let full = two.run_naive(q, 100_000);
    for engine in [&two, &multi] {
        let out = engine.run_specqp(q, 10);
        for a in &out.answers {
            let hit = full.answers.iter().find(|t| t.binding == a.binding);
            assert!(hit.is_some());
        }
    }
}
