//! Enforces the `src/lib.rs` quickstart doctest contract as a plain
//! integration test, so the documented entry path (`spec_qp::prelude`,
//! build KG → parse → `engine.run_specqp(&q, 5)`) stays covered even if
//! doctests are skipped.

use spec_qp::prelude::*;

#[test]
fn prelude_quickstart_returns_documented_answer() {
    let mut b = KnowledgeGraphBuilder::new();
    b.add("a", "type", "x", 2.0);
    b.add("a", "type", "y", 1.0);
    let kg = b.build();
    let rules = RelaxationRegistry::new();
    let engine = Engine::new(&kg, &rules);
    let q = parse_query(
        "SELECT ?s WHERE { ?s <type> <x> . ?s <type> <y> }",
        kg.dictionary(),
    )
    .unwrap();

    let outcome = engine.run_specqp(&q, 5);
    assert_eq!(
        outcome.answers.len(),
        1,
        "exactly one entity joins both patterns"
    );
    assert!(
        outcome.answers[0].score.value() > 0.0,
        "the single answer carries a positive combined score"
    );
}
