//! Property tests of the plan cache's canonical [`QueryShape`] key and of
//! plan-reuse correctness: variable renaming never changes the key,
//! structural changes always do, and executing a cache-hit plan returns the
//! same top-k as executing a freshly generated plan.

use kgstore::{KnowledgeGraph, KnowledgeGraphBuilder};
use proptest::prelude::*;
use relax::{Position, RelaxationRegistry, TermRule};
use sparql::{Query, QueryBuilder};
use specqp::{Engine, EngineConfig, QueryShape, SpeculationPolicy};
use specqp_common::TermId;

/// A deterministic micro-KG with relaxation rules between random classes.
#[derive(Debug)]
struct MicroWorld {
    graph: KnowledgeGraph,
    registry: RelaxationRegistry,
    classes: Vec<TermId>,
    type_pred: TermId,
}

fn micro_world(
    assignments: Vec<(u8, u8, u16)>,
    rules: Vec<(u8, u8, u8)>,
    n_classes: u8,
) -> MicroWorld {
    let n_classes = n_classes.max(2);
    let mut b = KnowledgeGraphBuilder::new();
    let type_pred = b.intern("type");
    let classes: Vec<TermId> = (0..n_classes).map(|c| b.intern(&format!("c{c}"))).collect();
    for (e, c, score) in assignments {
        let class = classes[(c % n_classes) as usize];
        let ent = b.intern(&format!("e{e}"));
        b.add_ids(ent, type_pred, class, f64::from(score.max(1)).into());
    }
    let graph = b.build();
    let mut registry = RelaxationRegistry::new();
    for (from, to, w) in rules {
        let from = classes[(from % n_classes) as usize];
        let to = classes[(to % n_classes) as usize];
        if from != to {
            let w = f64::from(w.clamp(5, 99)) / 100.0;
            registry.add(TermRule::with_context(
                Position::Object,
                from,
                to,
                w,
                type_pred,
            ));
        }
    }
    MicroWorld {
        graph,
        registry,
        classes,
        type_pred,
    }
}

/// Builds the same star query twice with different variable names.
fn star_query(world: &MicroWorld, class_picks: &[u8], var_name: &str) -> Option<Query> {
    let mut qb = QueryBuilder::new();
    let x = qb.var(var_name);
    let mut used = Vec::new();
    for &c in class_picks {
        let class = world.classes[(c as usize) % world.classes.len()];
        if used.contains(&class) {
            continue;
        }
        used.push(class);
        qb.pattern(x, world.type_pred, class);
    }
    if used.is_empty() {
        return None;
    }
    qb.project(x);
    qb.build().ok()
}

/// Regression (speculation feedback staleness): after a stats feedback
/// refit bumps the catalog generation, a previously cached plan must be
/// **re-planned**, not served stale — and the fresh plan must honour the
/// refitted ledger.
#[test]
fn stats_refit_forces_replan_of_cached_shape() {
    // Class c0 is well-populated (k=5 fills without relaxing) and carries a
    // c0→c1 relaxation the ledger can force back in.
    let world = micro_world(
        (0..40).map(|e| (e, 0, 100 + u16::from(e))).collect(),
        vec![(0, 1, 90)],
        4,
    );
    let q = star_query(&world, &[0], "x").unwrap();
    let engine = Engine::with_config(
        &world.graph,
        &world.registry,
        EngineConfig::default().with_speculation(SpeculationPolicy::Off),
    );
    engine.warm(&q, 5);
    let m = engine.plan_cache_metrics().clone();
    assert_eq!(m.misses(), 1, "warm planned and cached the shape");
    let (_, _) = engine.plan(&q, 5);
    assert_eq!(m.hits(), 1, "cached plan served before the refit");
    assert_eq!(m.stale(), 0);

    // The refit: runtime feedback records the pattern's pruning as a repeat
    // offense, which flips its bias and bumps the catalog generation.
    let generation_before = engine.catalog().generation();
    assert!(engine
        .catalog()
        .record_speculation(q.patterns()[0].stats_key(), true));
    assert_eq!(engine.catalog().generation(), generation_before + 1);

    // The previously cached plan is now stale: the next plan call must
    // re-run PLANGEN (miss + stale), and the fresh plan must relax the
    // recorded offender.
    let (replanned, _) = engine.plan(&q, 5);
    assert_eq!(m.hits(), 1, "stale plan must not be served");
    assert_eq!(m.misses(), 2, "the shape was re-planned");
    assert_eq!(m.stale(), 1, "the stale entry was detected and dropped");
    assert!(
        replanned.is_relaxed(0),
        "the re-plan honours the refitted ledger: {replanned:?}"
    );

    // The refreshed entry serves normally at the new generation.
    let (served, _) = engine.plan(&q, 5);
    assert_eq!(m.hits(), 2);
    assert_eq!(served, replanned);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Renaming variables never changes the cache key.
    #[test]
    fn renamed_variables_hash_to_same_key(
        assignments in prop::collection::vec((0u8..20, 0u8..5, 1u16..500), 1..60),
        class_picks in prop::collection::vec(0u8..5, 1..4),
        k in 1usize..20,
    ) {
        let world = micro_world(assignments, vec![], 5);
        let (Some(a), Some(b)) = (
            star_query(&world, &class_picks, "x"),
            star_query(&world, &class_picks, "renamed_variable"),
        ) else {
            return Ok(());
        };
        prop_assert_eq!(QueryShape::of(&a, k), QueryShape::of(&b, k));
    }

    /// Structurally different queries get different keys: dropping a
    /// pattern, changing a constant, or changing `k` all separate shapes.
    #[test]
    fn structural_changes_separate_keys(
        assignments in prop::collection::vec((0u8..20, 0u8..5, 1u16..500), 1..60),
        class_picks in prop::collection::vec(0u8..5, 2..4),
        k in 1usize..20,
    ) {
        let world = micro_world(assignments, vec![], 5);
        let Some(q) = star_query(&world, &class_picks, "x") else {
            return Ok(());
        };
        let shape = QueryShape::of(&q, k);

        // Different k.
        prop_assert_ne!(shape.clone(), QueryShape::of(&q, k + 1));

        // Fewer patterns (when the query has at least two).
        if q.len() >= 2 {
            let shorter = star_query(&world, &class_picks[..class_picks.len() - 1], "x");
            if let Some(shorter) = shorter {
                if shorter.len() < q.len() {
                    prop_assert_ne!(shape.clone(), QueryShape::of(&shorter, k));
                }
            }
        }

        // A constant swapped for an unused class id.
        let unused = world.classes[(class_picks[0] as usize + 1) % world.classes.len()];
        let first = q.patterns()[0];
        if first.o.as_const() != Some(unused) {
            let swapped = q.with_pattern_replaced(
                0,
                sparql::TriplePattern::new(first.s, first.p, unused),
            );
            prop_assert_ne!(shape, QueryShape::of(&swapped, k));
        }
    }

    /// Plan reuse is semantically transparent: running the renamed query
    /// through the engine (which hits the plan cached for the original
    /// shape) returns exactly the same top-k as a fresh engine that plans
    /// the renamed query from scratch.
    #[test]
    fn cache_hit_plan_matches_fresh_plan(
        assignments in prop::collection::vec((0u8..30, 0u8..6, 1u16..1000), 1..120),
        rules in prop::collection::vec((0u8..6, 0u8..6, 5u8..99), 0..12),
        class_picks in prop::collection::vec(0u8..6, 1..4),
        k in 1usize..15,
    ) {
        let world = micro_world(assignments, rules, 6);
        let (Some(original), Some(renamed)) = (
            star_query(&world, &class_picks, "x"),
            star_query(&world, &class_picks, "y"),
        ) else {
            return Ok(());
        };

        // One engine: plan the original (miss), then run the renamed query —
        // a guaranteed cache hit on the shared shape.
        let engine = Engine::new(&world.graph, &world.registry);
        engine.warm(&original, k);
        prop_assert_eq!(engine.plan_cache_metrics().misses(), 1);
        let via_cache = engine.run_specqp(&renamed, k);
        prop_assert_eq!(engine.plan_cache_metrics().hits(), 1,
            "renamed query must hit the cached shape");

        // Fresh engine: plans the renamed query from scratch.
        let fresh = Engine::new(&world.graph, &world.registry);
        let from_scratch = fresh.run_specqp(&renamed, k);

        prop_assert_eq!(&via_cache.plan, &from_scratch.plan);
        prop_assert_eq!(via_cache.answers.len(), from_scratch.answers.len());
        for (a, b) in via_cache.answers.iter().zip(&from_scratch.answers) {
            prop_assert_eq!(&a.binding, &b.binding);
            prop_assert_eq!(a.score, b.score);
        }
    }
}
