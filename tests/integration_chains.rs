//! Integration tests of chain relaxations (the paper's §6 future-work
//! extension): replacing a triple pattern with a chain of patterns.

use kgstore::{KnowledgeGraph, KnowledgeGraphBuilder};
use relax::{ChainRule, ChainRuleSet, RelaxationRegistry};
use sparql::parse_query;
use specqp::Engine;
use specqp_common::Score;

/// A band-membership KG:
/// * direct facts: 〈member, inGroup, band〉 (only some),
/// * indirect path: 〈member, follows, frontier〉 + 〈frontier, memberOf, band〉.
fn setup() -> (KnowledgeGraph, RelaxationRegistry, ChainRuleSet) {
    let mut b = KnowledgeGraphBuilder::new();
    // Direct members (scores = prominence).
    b.add("alice", "inGroup", "beatles", 100.0);
    b.add("bob", "inGroup", "beatles", 60.0);
    // carol has no direct fact, but follows dave who is memberOf beatles.
    b.add("carol", "follows", "dave", 80.0);
    b.add("dave", "memberOf", "beatles", 90.0);
    // eve follows someone in another band (must not leak into beatles).
    b.add("eve", "follows", "frank", 70.0);
    b.add("frank", "memberOf", "stones", 85.0);
    // alice also reachable via the chain (dedup case).
    b.add("alice", "follows", "gina", 50.0);
    b.add("gina", "memberOf", "beatles", 40.0);
    let g = b.build();
    let d = g.dictionary();
    let chains = {
        let mut cs = ChainRuleSet::new();
        cs.add(ChainRule::new(
            d.lookup("inGroup").unwrap(),
            vec![d.lookup("follows").unwrap(), d.lookup("memberOf").unwrap()],
            0.6,
        ));
        cs
    };
    (g, RelaxationRegistry::new(), chains)
}

#[test]
fn chain_contributes_answers_the_original_lacks() {
    let (g, reg, chains) = setup();
    let q = parse_query("SELECT ?x WHERE { ?x <inGroup> <beatles> }", g.dictionary()).unwrap();

    // Without chains: only direct members.
    let plain = Engine::new(&g, &reg);
    let out = plain.run_trinit(&q, 10);
    assert_eq!(out.answers.len(), 2);

    // With chains: carol arrives through follows∘memberOf.
    let chained = Engine::new(&g, &reg).with_chain_rules(chains);
    let out = chained.run_trinit(&q, 10);
    let d = g.dictionary();
    let carol = d.lookup("carol").unwrap();
    let names: Vec<_> = out
        .answers
        .iter()
        .map(|a| a.binding.get(q.projection()[0]).unwrap())
        .collect();
    assert!(names.contains(&carol), "{names:?}");
    assert_eq!(
        out.answers.len(),
        3,
        "alice, bob, carol — eve must not leak"
    );
}

#[test]
fn chain_scores_are_weight_bounded_and_sorted() {
    let (g, reg, chains) = setup();
    let q = parse_query("SELECT ?x WHERE { ?x <inGroup> <beatles> }", g.dictionary()).unwrap();
    let engine = Engine::new(&g, &reg).with_chain_rules(chains);
    let out = engine.run_trinit(&q, 10);
    for w in out.answers.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    let d = g.dictionary();
    let carol = d.lookup("carol").unwrap();
    let carol_score = out
        .answers
        .iter()
        .find(|a| a.binding.get(q.projection()[0]) == Some(carol))
        .unwrap()
        .score;
    // Chain contribution ≤ rule weight; strictly below the direct head (1.0).
    assert!(carol_score <= Score::new(0.6 + 1e-9));
    assert!(carol_score > Score::ZERO);
    // Direct members keep their Def.-5 scores.
    assert!(out.answers[0].score.approx_eq(Score::new(1.0), 1e-9));
}

#[test]
fn chain_and_direct_sources_deduplicate() {
    let (g, reg, chains) = setup();
    let q = parse_query("SELECT ?x WHERE { ?x <inGroup> <beatles> }", g.dictionary()).unwrap();
    let engine = Engine::new(&g, &reg).with_chain_rules(chains);
    let out = engine.run_trinit(&q, 10);
    let d = g.dictionary();
    let alice = d.lookup("alice").unwrap();
    // alice is reachable directly (1.0) and via the chain (≤0.6): exactly
    // one merged answer at the max score.
    let alices: Vec<_> = out
        .answers
        .iter()
        .filter(|a| a.binding.get(q.projection()[0]) == Some(alice))
        .collect();
    assert_eq!(alices.len(), 1);
    assert!(alices[0].score.approx_eq(Score::new(1.0), 1e-9));
}

#[test]
fn chains_only_apply_to_relaxed_patterns() {
    let (g, reg, chains) = setup();
    let q = parse_query("SELECT ?x WHERE { ?x <inGroup> <beatles> }", g.dictionary()).unwrap();
    let engine = Engine::new(&g, &reg).with_chain_rules(chains);
    // Bare plan (join group only): no merges, hence no chain sources.
    let out = engine.run_with_plan(
        &q,
        10,
        specqp::QueryPlan::none_relaxed(1),
        std::time::Duration::ZERO,
    );
    assert_eq!(out.answers.len(), 2, "direct members only");
}

#[test]
fn chains_compose_with_multi_pattern_queries() {
    let (g, reg, _chains) = setup();
    // Add a second pattern so the chain's merged stream feeds a rank join.
    let mut b = KnowledgeGraphBuilder::new();
    for st in g.iter_scored() {
        let d = g.dictionary();
        b.add(
            d.name_or_unknown(st.triple.s),
            d.name_or_unknown(st.triple.p),
            d.name_or_unknown(st.triple.o),
            st.score.value(),
        );
    }
    b.add("alice", "plays", "guitar", 10.0);
    b.add("carol", "plays", "guitar", 8.0);
    let g2 = b.build();
    let d2 = g2.dictionary();
    let chains2 = {
        let mut cs = ChainRuleSet::new();
        cs.add(ChainRule::new(
            d2.lookup("inGroup").unwrap(),
            vec![
                d2.lookup("follows").unwrap(),
                d2.lookup("memberOf").unwrap(),
            ],
            0.6,
        ));
        cs
    };
    let q = parse_query(
        "SELECT ?x WHERE { ?x <inGroup> <beatles> . ?x <plays> <guitar> }",
        d2,
    )
    .unwrap();
    let engine = Engine::new(&g2, &reg).with_chain_rules(chains2);
    let out = engine.run_trinit(&q, 10);
    let names: Vec<&str> = out
        .answers
        .iter()
        .map(|a| d2.name_or_unknown(a.binding.get(q.projection()[0]).unwrap()))
        .collect();
    assert_eq!(names, vec!["alice", "carol"], "{names:?}");
    let _ = reg;
}
