//! Cross-crate tests of the statistics layer against *measured* reality:
//! the estimator's predictions are compared with true answer-score
//! quantiles computed by the naive executor.

use datagen::{XkgConfig, XkgGenerator};
use specqp::Engine;
use specqp_stats::{
    CardinalityEstimator, ExactCardinality, IndependenceEstimator, RefitMode, ScoreEstimator,
    StatsCatalog,
};

#[test]
fn estimated_counts_match_reality_exactly() {
    let ds = XkgGenerator::new(XkgConfig::small(51)).generate();
    let oracle = ExactCardinality::new();
    let engine = Engine::new(&ds.graph, &ds.registry);
    for q in ds.workload.queries.iter().take(4) {
        let n = oracle.cardinality(&ds.graph, q.patterns());
        // Count original answers with the naive executor restricted to the
        // un-relaxed query: run with the bare plan at huge k.
        let bare = engine.run_with_plan(
            q,
            1_000_000,
            specqp::QueryPlan::none_relaxed(q.len()),
            std::time::Duration::ZERO,
        );
        assert_eq!(n as usize, bare.answers.len());
    }
}

#[test]
fn estimator_top_score_brackets_truth() {
    // The model's E(1) must land within the score domain and not be absurd:
    // within a factor-of-domain bound of the true top score.
    let ds = XkgGenerator::new(XkgConfig::small(52)).generate();
    let catalog = StatsCatalog::new();
    let oracle = ExactCardinality::new();
    let est = ScoreEstimator::new(&catalog, &oracle);
    let engine = Engine::new(&ds.graph, &ds.registry);
    for q in ds.workload.queries.iter().take(5) {
        let weighted: Vec<_> = q.patterns().iter().map(|p| (*p, 1.0)).collect();
        let e = est.estimate(&ds.graph, &weighted);
        let Some(pred_top) = e.expected_top_score() else {
            continue;
        };
        let bare = engine.run_with_plan(
            q,
            1,
            specqp::QueryPlan::none_relaxed(q.len()),
            std::time::Duration::ZERO,
        );
        let Some(true_top) = bare.answers.first().map(|a| a.score.value()) else {
            continue;
        };
        let domain = q.len() as f64;
        assert!(pred_top <= domain + 1e-9);
        assert!(
            (pred_top - true_top).abs() <= 0.75 * domain,
            "prediction {pred_top} vs truth {true_top} (domain {domain})"
        );
    }
}

#[test]
fn independence_estimator_is_order_of_magnitude() {
    let ds = XkgGenerator::new(XkgConfig::small(53)).generate();
    let exact = ExactCardinality::new();
    let indep = IndependenceEstimator::new();
    let mut checked = 0;
    for q in &ds.workload.queries {
        let t = exact.cardinality(&ds.graph, q.patterns());
        let e = indep.cardinality(&ds.graph, q.patterns());
        if t >= 10.0 {
            // Star joins on skewed data: accept two orders of magnitude.
            assert!(e > 0.0, "independence estimate collapsed to zero");
            assert!(
                e / t < 1000.0 && t / e < 1000.0,
                "estimate {e} vs truth {t} out of range"
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 2,
        "workload had too few dense queries ({checked})"
    );
}

#[test]
fn refit_modes_agree_on_domain_and_order() {
    // Two-bucket vs multi-bucket estimates of the same query rank the same
    // relaxations in nearly the same order (the decision signal agrees).
    let ds = XkgGenerator::new(XkgConfig::small(54)).generate();
    let catalog = StatsCatalog::new();
    let oracle = ExactCardinality::new();
    let q = &ds.workload.queries[0];
    let weighted: Vec<_> = q.patterns().iter().map(|p| (*p, 1.0)).collect();
    let two = ScoreEstimator::with_mode(&catalog, &oracle, RefitMode::TwoBucket)
        .estimate(&ds.graph, &weighted);
    let multi = ScoreEstimator::with_mode(&catalog, &oracle, RefitMode::MultiBucket(128))
        .estimate(&ds.graph, &weighted);
    assert_eq!(two.n, multi.n);
    if let (Some(a), Some(b)) = (two.dist.as_ref(), multi.dist.as_ref()) {
        use specqp_stats::Distribution;
        assert!((a.domain_max() - b.domain_max()).abs() < 1e-6);
        // Same ballpark for the k-quantile.
        if let (Some(x), Some(y)) = (
            two.expected_score_at_rank(10),
            multi.expected_score_at_rank(10),
        ) {
            assert!((x - y).abs() < 0.5 * a.domain_max(), "{x} vs {y}");
        }
    }
}

#[test]
fn catalog_is_shared_across_engine_runs() {
    let ds = XkgGenerator::new(XkgConfig::small(55)).generate();
    let engine = Engine::new(&ds.graph, &ds.registry);
    let q = &ds.workload.queries[0];
    engine.warm(q, 10);
    let (_, t1) = engine.plan(q, 10);
    let (_, t2) = engine.plan(q, 15); // different k reuses all stats
    assert!(t2 <= t1 * 20 + std::time::Duration::from_millis(5));
}
