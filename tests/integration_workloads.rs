//! Generator contracts: the synthetic datasets must satisfy the workload
//! constraints the paper states for its testsets (§4.2).

use datagen::{TwitterConfig, TwitterGenerator, XkgConfig, XkgGenerator};
use kgstore::PatternKey;
use specqp_stats::{CardinalityEstimator, ExactCardinality};

#[test]
fn xkg_contract() {
    let ds = XkgGenerator::new(XkgConfig::small(31)).generate();
    assert_eq!(ds.name, "xkg");
    assert!(ds.graph.len() > 1_000);
    assert!(!ds.registry.is_empty());

    let oracle = ExactCardinality::new();
    let mut tp_counts = [0usize; 5];
    for q in &ds.workload.queries {
        // 2–4 triple patterns, connected star.
        assert!((2..=4).contains(&q.len()));
        tp_counts[q.len()] += 1;
        assert!(q.is_connected());
        // ≥10 relaxations per pattern.
        for p in q.patterns() {
            assert!(ds.registry.relaxation_count(p) >= 10);
        }
        // Non-empty original result.
        assert!(oracle.cardinality(&ds.graph, q.patterns()) >= 1.0);
    }
    // All pattern counts represented.
    assert!(tp_counts[2] > 0 && tp_counts[3] > 0 && tp_counts[4] > 0);
}

#[test]
fn twitter_contract() {
    let ds = TwitterGenerator::new(TwitterConfig::small(32)).generate();
    assert_eq!(ds.name, "twitter");
    let dict = ds.graph.dictionary();
    let has_tag = dict.lookup("hasTag").unwrap();

    let oracle = ExactCardinality::new();
    for q in &ds.workload.queries {
        assert!((2..=3).contains(&q.len()));
        for p in q.patterns() {
            // Single-predicate schema in every query pattern.
            assert_eq!(p.p.as_const(), Some(has_tag));
            assert!(ds.registry.relaxation_count(p) >= 5);
        }
        assert!(oracle.cardinality(&ds.graph, q.patterns()) >= 1.0);
    }
}

#[test]
fn xkg_type_lists_follow_8020() {
    // The two-bucket model's premise: most score mass sits in a head that
    // is a minority of the answers, for the class lists queries touch.
    let ds = XkgGenerator::new(XkgConfig::small(33)).generate();
    let dict = ds.graph.dictionary();
    let ty = dict.lookup("rdf:type").unwrap();
    let mut checked = 0;
    for q in &ds.workload.queries {
        for p in q.patterns() {
            if p.p.as_const() != Some(ty) {
                continue;
            }
            let (s, pp, o) = p.const_parts();
            let list = ds.graph.matches(PatternKey { s, p: pp, o });
            if list.len() < 20 {
                continue;
            }
            let total = list.total_score().value();
            let mut cum = 0.0;
            let mut rank_at_80 = list.len();
            for r in 0..list.len() {
                cum += list.score_at(r).value();
                if cum >= 0.8 * total {
                    rank_at_80 = r + 1;
                    break;
                }
            }
            // A power-law head over the popularity baseline: the 80%-mass
            // rank arrives before the end of the list and the boundary
            // score σ_r stays in the mid-range the two-bucket model needs.
            assert!(
                (rank_at_80 as f64) < 0.9 * list.len() as f64,
                "list too flat: 80% mass at rank {rank_at_80} of {}",
                list.len()
            );
            let sigma = list.score_at(rank_at_80 - 1).value() / list.max_score().value();
            assert!((0.02..0.98).contains(&sigma), "degenerate sigma_r {sigma}");
            checked += 1;
        }
    }
    assert!(checked > 5, "too few lists checked ({checked})");
}

#[test]
fn generators_scale_with_config() {
    let small = XkgGenerator::new(XkgConfig::small(34)).generate();
    let mut bigger_cfg = XkgConfig::small(34);
    bigger_cfg.entities *= 2;
    let bigger = XkgGenerator::new(bigger_cfg).generate();
    assert!(bigger.graph.len() > small.graph.len());

    let tw_small = TwitterGenerator::new(TwitterConfig::small(35)).generate();
    let mut tw_cfg = TwitterConfig::small(35);
    tw_cfg.tweets *= 2;
    let tw_big = TwitterGenerator::new(tw_cfg).generate();
    assert!(tw_big.graph.len() > tw_small.graph.len());
}

#[test]
fn different_seeds_differ() {
    let a = XkgGenerator::new(XkgConfig::small(40)).generate();
    let b = XkgGenerator::new(XkgConfig::small(41)).generate();
    // Same sizes/config, different content.
    let pa = a.workload.queries[0].patterns();
    let pb = b.workload.queries[0].patterns();
    assert!(pa != pb || a.graph.len() != b.graph.len());
}
