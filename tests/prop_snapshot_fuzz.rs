//! Snapshot corruption fuzz: random byte flips, truncations and
//! combinations thereof applied to a valid snapshot image must always come
//! back as a typed `Error::Snapshot(_)` — never a panic, and never an
//! attempted giant allocation (corrupt counts are rejected against the
//! remaining section capacity before any `Vec::with_capacity`).

use kgstore::snapshot::{read_snapshot, write_snapshot};
use kgstore::KnowledgeGraphBuilder;
use proptest::prelude::*;
use specqp_common::Error;
use std::sync::OnceLock;

fn snapshot_image() -> &'static Vec<u8> {
    static IMAGE: OnceLock<Vec<u8>> = OnceLock::new();
    IMAGE.get_or_init(|| {
        let mut b = KnowledgeGraphBuilder::new();
        // Varied structure so every section (dictionary, columns, all eight
        // index maps) has real content to corrupt.
        for i in 0..40u32 {
            b.add(
                &format!("e{i}"),
                &format!("p{}", i % 5),
                &format!("o{}", i % 11),
                f64::from(i % 7 + 1),
            );
        }
        b.add("loop", "self", "loop", 4.0);
        b.intern("orphan-term");
        write_snapshot(&b.build())
    })
}

/// Asserts that loading `bytes` fails with a typed snapshot error (the
/// load itself happening inside the call — any panic fails the test run).
fn assert_typed_failure(bytes: &[u8], what: &str) -> Result<(), TestCaseError> {
    match read_snapshot(bytes) {
        Err(Error::Snapshot(_)) => Ok(()),
        Err(other) => Err(TestCaseError::fail(format!(
            "{what}: expected Error::Snapshot, got {other:?}"
        ))),
        Ok(_) => Err(TestCaseError::fail(format!(
            "{what}: corrupt image loaded successfully"
        ))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Any single flipped byte is caught (framing check, structural check or
    /// the FNV-1a trailer — a flip of the trailer itself mismatches the
    /// recomputed sum).
    #[test]
    fn flipped_byte_is_typed_error(pos in any::<u32>(), mask in 1u8..=255) {
        let image = snapshot_image();
        let mut bytes = image.clone();
        let at = pos as usize % bytes.len();
        bytes[at] ^= mask;
        assert_typed_failure(&bytes, &format!("flip at {at} mask {mask:#x}"))?;
    }

    /// Any proper prefix is caught.
    #[test]
    fn truncation_is_typed_error(len in any::<u32>()) {
        let image = snapshot_image();
        let cut = len as usize % image.len();
        assert_typed_failure(&image[..cut], &format!("truncated to {cut}"))?;
    }

    /// Truncation composed with byte flips (corruption inside the surviving
    /// prefix) is caught too — framing errors must fire before any section
    /// is trusted.
    #[test]
    fn truncation_plus_flips_is_typed_error(
        len in any::<u32>(),
        flips in proptest::collection::vec((any::<u32>(), 1u8..=255), 1..=8),
    ) {
        let image = snapshot_image();
        let cut = len as usize % image.len();
        let mut bytes = image[..cut].to_vec();
        if bytes.is_empty() {
            return Ok(());
        }
        for (pos, mask) in flips {
            let at = pos as usize % bytes.len();
            bytes[at] ^= mask;
        }
        assert_typed_failure(&bytes, &format!("truncated to {cut} + flips"))?;
    }

    /// Growing the image (trailing garbage after the checksum, of any
    /// content) is caught by exact-length framing.
    #[test]
    fn trailing_garbage_is_typed_error(extra in proptest::collection::vec(any::<u8>(), 1..=64)) {
        let image = snapshot_image();
        let mut bytes = image.clone();
        bytes.extend_from_slice(&extra);
        assert_typed_failure(&bytes, "trailing garbage")?;
    }

    /// Re-stamping a valid checksum over a flipped payload byte pushes the
    /// corruption past the trailer check; the structural validation layer
    /// must still reject it (or, for score/term bytes whose new value is
    /// semantically valid, load a graph without panicking).
    #[test]
    fn payload_flip_with_fixed_checksum_never_panics(pos in any::<u32>(), mask in 1u8..=255) {
        let image = snapshot_image();
        let mut bytes = image.clone();
        let body_end = bytes.len() - 8;
        // Skip the 16-byte header (magic/version handled by other tests).
        let at = 16 + pos as usize % (body_end - 16);
        bytes[at] ^= mask;
        let sum = specqp_common::fnv1a_64_lanes(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        match read_snapshot(&bytes) {
            Ok(_) | Err(Error::Snapshot(_)) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!(
                    "flip at {at}: expected snapshot error or benign load, got {other:?}"
                )));
            }
        }
    }
}

#[test]
fn pristine_image_still_loads() {
    // Guard for the fuzz fixtures themselves: the uncorrupted image loads.
    let g = read_snapshot(snapshot_image()).expect("pristine snapshot loads");
    assert_eq!(g.len(), 41);
}
