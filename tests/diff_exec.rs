//! Differential harness locking in row ≡ block execution.
//!
//! For hundreds of randomly generated star queries per dataset (XKG and
//! Twitter, seeded through the vendored proptest), the vectorized block
//! executor must return **exactly** what the row-at-a-time reference
//! returns — same answers, same order, same scores (bitwise, not approx) —
//! for Spec-QP, TriniT and naive modes, across block sizes {1, 7, 64,
//! 4096}. The block sizes bracket the interesting regimes: 1 forces
//! single-row blocks through every operator, 7 exercises mid-block
//! boundaries, 64 is a realistic size, 4096 materializes most test-scale
//! match lists into one block.
//!
//! Queries are assembled from the patterns of the generators' own workloads
//! (rebased onto one shared subject variable), so they have the same shape
//! distribution as the benchmark queries while random subsets also produce
//! empty-result and heavily-tied cases.

use datagen::{Dataset, TwitterConfig, TwitterGenerator, XkgConfig, XkgGenerator};
use operators::ExecutionMode;
use proptest::prelude::*;
use sparql::{Query, QueryBuilder, Term};
use specqp::{Engine, EngineConfig};
use specqp_common::TermId;
use std::sync::OnceLock;

const BLOCK_SIZES: [usize; 4] = [1, 7, 64, 4096];

/// One reusable star-query building block, extracted from a workload query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PoolPattern {
    /// `?x <p> <o>` — a fully qualified (type-like) pattern.
    Bound { p: TermId, o: TermId },
    /// `?x <p> ?y` — a relational pattern with a fresh object variable.
    Open { p: TermId },
}

struct World {
    ds: Dataset,
    pool: Vec<PoolPattern>,
}

fn build_world(ds: Dataset) -> World {
    let mut pool: Vec<PoolPattern> = Vec::new();
    for q in &ds.workload.queries {
        for pat in q.patterns() {
            let entry = match (pat.p, pat.o) {
                (Term::Const(p), Term::Const(o)) => PoolPattern::Bound { p, o },
                (Term::Const(p), Term::Var(_)) => PoolPattern::Open { p },
                _ => continue,
            };
            if !pool.contains(&entry) {
                pool.push(entry);
            }
        }
    }
    assert!(pool.len() >= 8, "workload must yield a varied pattern pool");
    World { ds, pool }
}

fn xkg() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| build_world(XkgGenerator::new(XkgConfig::small(0x5eed001)).generate()))
}

fn twitter() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        build_world(TwitterGenerator::new(TwitterConfig::small(0x71177e4)).generate())
    })
}

/// Builds a star query over `?x` from pool picks (duplicates dropped).
/// Returns `None` when no pattern survives deduplication.
fn build_query(world: &World, picks: &[u16]) -> Option<Query> {
    let mut chosen: Vec<PoolPattern> = Vec::new();
    for &pick in picks {
        let entry = world.pool[pick as usize % world.pool.len()];
        if !chosen.contains(&entry) {
            chosen.push(entry);
        }
    }
    if chosen.is_empty() {
        return None;
    }
    let mut qb = QueryBuilder::new();
    let x = qb.var("x");
    for (i, entry) in chosen.iter().enumerate() {
        match *entry {
            PoolPattern::Bound { p, o } => {
                qb.pattern(x, p, o);
            }
            PoolPattern::Open { p } => {
                let y = qb.var(&format!("y{i}"));
                qb.pattern(x, p, y);
            }
        }
    }
    qb.project(x);
    qb.build().ok()
}

/// Runs the row reference and every block size for all three modes and
/// asserts exact equivalence.
fn check_differential(world: &World, picks: &[u16], k: usize) -> Result<(), TestCaseError> {
    let Some(q) = build_query(world, picks) else {
        return Ok(());
    };
    let engine = |mode: ExecutionMode| {
        Engine::with_config(
            &world.ds.graph,
            &world.ds.registry,
            EngineConfig::default().with_execution(mode),
        )
    };
    let row = engine(ExecutionMode::RowAtATime);
    let row_spec = row.run_specqp(&q, k);
    let row_trinit = row.run_trinit(&q, k);
    for size in BLOCK_SIZES {
        let block = engine(ExecutionMode::Block(size));
        let spec = block.run_specqp(&q, k);
        prop_assert_eq!(&spec.plan, &row_spec.plan, "specqp plan, size {}", size);
        prop_assert_eq!(
            &spec.answers,
            &row_spec.answers,
            "specqp answers, size {}",
            size
        );
        let trinit = block.run_trinit(&q, k);
        prop_assert_eq!(
            &trinit.answers,
            &row_trinit.answers,
            "trinit answers, size {}",
            size
        );
    }
    // Naive mode is executor-config-independent by construction; run it on
    // the smaller queries (it materializes every relaxation) to pin that a
    // block-configured engine leaves it untouched.
    if q.len() <= 2 {
        let row_naive = row.run_naive(&q, k);
        let block_naive = engine(ExecutionMode::Block(64)).run_naive(&q, k);
        prop_assert_eq!(&block_naive.answers, &row_naive.answers, "naive answers");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn xkg_block_execution_equals_row_execution(
        picks in proptest::collection::vec(any::<u16>(), 1..=4),
        k in 1usize..=25,
    ) {
        check_differential(xkg(), &picks, k)?;
    }

    #[test]
    fn twitter_block_execution_equals_row_execution(
        picks in proptest::collection::vec(any::<u16>(), 1..=4),
        k in 1usize..=25,
    ) {
        check_differential(twitter(), &picks, k)?;
    }
}

/// Morsel-driven parallel block execution must be **bit-identical** to
/// sequential block execution — same answers, same order, same score bits —
/// at every worker count. Degree 1 pins the hook's no-op path, 2 the
/// minimal split, 8 oversubscribes test-sized match lists so most workers
/// drain the dispenser dry.
#[test]
fn parallel_block_execution_equals_sequential() {
    for world in [xkg(), twitter()] {
        let engine = |workers: usize| {
            Engine::with_config(
                &world.ds.graph,
                &world.ds.registry,
                EngineConfig::default()
                    .with_execution(ExecutionMode::Block(operators::DEFAULT_BLOCK_SIZE))
                    .with_parallelism(workers),
            )
        };
        let sequential = engine(1);
        for q in &world.ds.workload.queries {
            let seq_spec = sequential.run_specqp(q, 10);
            let seq_trinit = sequential.run_trinit(q, 10);
            for workers in [1, 2, 8] {
                let parallel = engine(workers);
                let spec = parallel.run_specqp(q, 10);
                assert_eq!(seq_spec.plan, spec.plan, "{workers} workers");
                assert_eq!(seq_spec.answers, spec.answers, "{workers} workers");
                let trinit = parallel.run_trinit(q, 10);
                assert_eq!(seq_trinit.answers, trinit.answers, "{workers} workers");
            }
        }
    }
}

/// The exact benchmark workloads (not random subsets) must also agree,
/// including the per-query plans — this is the configuration the bench gate
/// times.
#[test]
fn workload_queries_agree_across_executors() {
    for world in [xkg(), twitter()] {
        let row = Engine::with_config(
            &world.ds.graph,
            &world.ds.registry,
            EngineConfig::default().with_execution(ExecutionMode::RowAtATime),
        );
        let block = Engine::with_config(
            &world.ds.graph,
            &world.ds.registry,
            EngineConfig::default()
                .with_execution(ExecutionMode::Block(operators::DEFAULT_BLOCK_SIZE)),
        );
        for q in &world.ds.workload.queries {
            let a = row.run_specqp(q, 10);
            let b = block.run_specqp(q, 10);
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.answers, b.answers);
        }
    }
}
