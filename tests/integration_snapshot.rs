//! Snapshot persistence integration suite: a graph reloaded from its binary
//! snapshot must be indistinguishable from the freshly built one at every
//! level — raw match lists, full engine runs (Spec-QP and TriniT), and the
//! concurrent service booted via `QueryService::from_snapshot` — because the
//! snapshot freezes the *same* posting lists the builder produced, term ids
//! included.

use datagen::{XkgConfig, XkgGenerator};
use kgstore::snapshot::{
    load_snapshot, read_snapshot, save_snapshot, write_snapshot, write_snapshot_v1,
};
use kgstore::PatternKey;
use operators::PartialAnswer;
use specqp::Engine;
use specqp_service::{QueryJob, QueryService, ServiceConfig};
use std::sync::Arc;

fn small_xkg() -> datagen::Dataset {
    let mut c = XkgConfig::small(0x5eed001);
    c.queries = 8;
    XkgGenerator::new(c).generate()
}

fn assert_identical_answers(a: &[PartialAnswer], b: &[PartialAnswer], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: answer count differs");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.binding, y.binding, "{ctx}: binding {i} differs");
        assert_eq!(x.score, y.score, "{ctx}: score {i} differs (bit-exact)");
    }
}

#[test]
fn reloaded_graph_matches_all_pattern_lists() {
    let ds = small_xkg();
    let g2 = read_snapshot(&write_snapshot(&ds.graph)).unwrap();
    assert_eq!(g2.len(), ds.graph.len());
    // Every pattern the workload touches answers with identical id/score
    // sequences — posting order included, since nothing was re-sorted.
    for q in &ds.workload.queries {
        for p in q.patterns() {
            let (s, pp, o) = p.const_parts();
            let key = PatternKey { s, p: pp, o };
            let (m1, m2) = (ds.graph.matches(key), g2.matches(key));
            assert_eq!(m1.len(), m2.len(), "{key:?}");
            for r in 0..m1.len() {
                assert_eq!(m1.id_at(r), m2.id_at(r), "{key:?} rank {r}");
                assert_eq!(m1.score_at(r), m2.score_at(r), "{key:?} rank {r}");
            }
        }
    }
}

#[test]
fn engine_runs_identically_on_snapshot_graph() {
    let ds = small_xkg();
    let g2 = read_snapshot(&write_snapshot(&ds.graph)).unwrap();
    let built = Engine::new(&ds.graph, &ds.registry);
    let loaded = Engine::new(&g2, &ds.registry);
    for (qi, q) in ds.workload.queries.iter().enumerate() {
        for k in [1, 5, 10] {
            let a = built.run_specqp(q, k);
            let b = loaded.run_specqp(q, k);
            assert_identical_answers(&a.answers, &b.answers, &format!("specqp q{qi} k{k}"));
            let a = built.run_trinit(q, k);
            let b = loaded.run_trinit(q, k);
            assert_identical_answers(&a.answers, &b.answers, &format!("trinit q{qi} k{k}"));
        }
    }
}

#[test]
fn service_boots_from_snapshot_file() {
    let ds = small_xkg();
    let path = std::env::temp_dir().join(format!(
        "specqp_integration_snapshot_{}.snap",
        std::process::id()
    ));
    save_snapshot(&ds.graph, &path).unwrap();

    let jobs: Vec<QueryJob> = ds
        .workload
        .queries
        .iter()
        .map(|q| QueryJob::specqp(q.clone(), 10))
        .collect();
    let registry = Arc::new(ds.registry);
    let direct = QueryService::new(
        Arc::new(ds.graph),
        registry.clone(),
        ServiceConfig::with_threads(3),
    );
    let booted = QueryService::from_snapshot(&path, registry, ServiceConfig::with_threads(3))
        .expect("snapshot boot");
    let a = direct.run_batch(&jobs);
    let b = booted.run_batch(&jobs);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_identical_answers(&x.answers, &y.answers, &format!("job {i}"));
    }
    std::fs::remove_file(&path).ok();
}

/// A v1 snapshot (the previous on-disk format: unaligned sections,
/// per-entry inline posting lists) must keep reading back into a graph
/// indistinguishable from the v2 roundtrip — the version policy promises
/// old files stay loadable across format bumps.
#[test]
fn v1_snapshot_reads_back_identically_to_v2() {
    let ds = small_xkg();
    let v1 = read_snapshot(&write_snapshot_v1(&ds.graph)).unwrap();
    let v2 = read_snapshot(&write_snapshot(&ds.graph)).unwrap();
    assert_eq!(v1.len(), ds.graph.len());
    for q in &ds.workload.queries {
        for p in q.patterns() {
            let (s, pp, o) = p.const_parts();
            let key = PatternKey { s, p: pp, o };
            let (m1, m2) = (v1.matches(key), v2.matches(key));
            assert_eq!(m1.len(), m2.len(), "{key:?}");
            for r in 0..m1.len() {
                assert_eq!(m1.id_at(r), m2.id_at(r), "{key:?} rank {r}");
                assert_eq!(m1.score_at(r), m2.score_at(r), "{key:?} rank {r}");
            }
        }
    }
    // And the whole engine agrees with the freshly built graph.
    let built = Engine::new(&ds.graph, &ds.registry);
    let loaded = Engine::new(&v1, &ds.registry);
    for (qi, q) in ds.workload.queries.iter().take(4).enumerate() {
        let a = built.run_specqp(q, 10);
        let b = loaded.run_specqp(q, 10);
        assert_identical_answers(&a.answers, &b.answers, &format!("v1 specqp q{qi}"));
    }
}

/// Every v2 section offset is 8-byte aligned in a real workload-sized
/// snapshot, so the fixed-stride columns can be reinterpreted without
/// repacking — the property the page-in-style loader relies on.
#[test]
fn workload_snapshot_sections_are_aligned() {
    let ds = small_xkg();
    let bytes = write_snapshot(&ds.graph);
    assert_eq!(&bytes[..8], b"SPECQPKG");
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    assert_eq!(version, 2);
    let sections = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut off = 16 + sections * 16;
    for i in 0..sections {
        assert_eq!(off % 8, 0, "section {i} starts misaligned at {off}");
        let at = 16 + i * 16 + 8;
        let len = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
        off += len.div_ceil(8) * 8;
    }
    assert_eq!(off + 8, bytes.len(), "sections + checksum must cover file");
}

#[test]
fn snapshot_file_roundtrip_is_bit_stable() {
    let ds = small_xkg();
    let path = std::env::temp_dir().join(format!(
        "specqp_integration_snapshot_stable_{}.snap",
        std::process::id()
    ));
    save_snapshot(&ds.graph, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // Re-serializing the loaded graph reproduces the file byte for byte:
    // ids, posting order and section layout are all deterministic.
    let reloaded = load_snapshot(&path).unwrap();
    assert_eq!(write_snapshot(&reloaded), bytes);
    std::fs::remove_file(&path).ok();
}
