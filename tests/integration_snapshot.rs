//! Snapshot persistence integration suite: a graph reloaded from its binary
//! snapshot must be indistinguishable from the freshly built one at every
//! level — raw match lists, full engine runs (Spec-QP and TriniT), and the
//! concurrent service booted via `QueryService::from_snapshot` — because the
//! snapshot freezes the *same* posting lists the builder produced, term ids
//! included.

use datagen::{XkgConfig, XkgGenerator};
use kgstore::snapshot::{load_snapshot, read_snapshot, save_snapshot, write_snapshot};
use kgstore::PatternKey;
use operators::PartialAnswer;
use specqp::Engine;
use specqp_service::{QueryJob, QueryService, ServiceConfig};
use std::sync::Arc;

fn small_xkg() -> datagen::Dataset {
    let mut c = XkgConfig::small(0x5eed001);
    c.queries = 8;
    XkgGenerator::new(c).generate()
}

fn assert_identical_answers(a: &[PartialAnswer], b: &[PartialAnswer], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: answer count differs");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.binding, y.binding, "{ctx}: binding {i} differs");
        assert_eq!(x.score, y.score, "{ctx}: score {i} differs (bit-exact)");
    }
}

#[test]
fn reloaded_graph_matches_all_pattern_lists() {
    let ds = small_xkg();
    let g2 = read_snapshot(&write_snapshot(&ds.graph)).unwrap();
    assert_eq!(g2.len(), ds.graph.len());
    // Every pattern the workload touches answers with identical id/score
    // sequences — posting order included, since nothing was re-sorted.
    for q in &ds.workload.queries {
        for p in q.patterns() {
            let (s, pp, o) = p.const_parts();
            let key = PatternKey { s, p: pp, o };
            let (m1, m2) = (ds.graph.matches(key), g2.matches(key));
            assert_eq!(m1.len(), m2.len(), "{key:?}");
            for r in 0..m1.len() {
                assert_eq!(m1.id_at(r), m2.id_at(r), "{key:?} rank {r}");
                assert_eq!(m1.score_at(r), m2.score_at(r), "{key:?} rank {r}");
            }
        }
    }
}

#[test]
fn engine_runs_identically_on_snapshot_graph() {
    let ds = small_xkg();
    let g2 = read_snapshot(&write_snapshot(&ds.graph)).unwrap();
    let built = Engine::new(&ds.graph, &ds.registry);
    let loaded = Engine::new(&g2, &ds.registry);
    for (qi, q) in ds.workload.queries.iter().enumerate() {
        for k in [1, 5, 10] {
            let a = built.run_specqp(q, k);
            let b = loaded.run_specqp(q, k);
            assert_identical_answers(&a.answers, &b.answers, &format!("specqp q{qi} k{k}"));
            let a = built.run_trinit(q, k);
            let b = loaded.run_trinit(q, k);
            assert_identical_answers(&a.answers, &b.answers, &format!("trinit q{qi} k{k}"));
        }
    }
}

#[test]
fn service_boots_from_snapshot_file() {
    let ds = small_xkg();
    let path = std::env::temp_dir().join(format!(
        "specqp_integration_snapshot_{}.snap",
        std::process::id()
    ));
    save_snapshot(&ds.graph, &path).unwrap();

    let jobs: Vec<QueryJob> = ds
        .workload
        .queries
        .iter()
        .map(|q| QueryJob::specqp(q.clone(), 10))
        .collect();
    let registry = Arc::new(ds.registry);
    let direct = QueryService::new(
        Arc::new(ds.graph),
        registry.clone(),
        ServiceConfig::with_threads(3),
    );
    let booted = QueryService::from_snapshot(&path, registry, ServiceConfig::with_threads(3))
        .expect("snapshot boot");
    let a = direct.run_batch(&jobs);
    let b = booted.run_batch(&jobs);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_identical_answers(&x.answers, &y.answers, &format!("job {i}"));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_file_roundtrip_is_bit_stable() {
    let ds = small_xkg();
    let path = std::env::temp_dir().join(format!(
        "specqp_integration_snapshot_stable_{}.snap",
        std::process::id()
    ));
    save_snapshot(&ds.graph, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // Re-serializing the loaded graph reproduces the file byte for byte:
    // ids, posting order and section layout are all deterministic.
    let reloaded = load_snapshot(&path).unwrap();
    assert_eq!(write_snapshot(&reloaded), bytes);
    std::fs::remove_file(&path).ok();
}
