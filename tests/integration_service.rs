//! Concurrency integration suite: the query service must be a pure
//! throughput layer — N threads over one shared graph produce answer sets
//! byte-identical to a sequential run of the same jobs, the plan cache
//! amortizes planning across repeated shapes, and its counters stay
//! consistent under contention.

use datagen::{XkgConfig, XkgGenerator};
use operators::PartialAnswer;
use specqp::{PlanCache, QueryOutcome, QueryPlan, QueryShape};
use specqp_service::{
    BatchReport, ExecMode, LiveGraph, QueryJob, QueryService, ServiceConfig, WriteBatch,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// `SPECQP_CHURN=1` re-runs this suite in *churn mode*: services are built
/// over a [`LiveGraph`] and every batch executes with a writer thread
/// concurrently committing net-zero write batches (assert + retract of the
/// same fresh triple), so queries pin a stream of distinct epochs while the
/// visible triples never change. The sequential-equivalence assertions stay
/// exact; only the plan-cache hit-rate assertions are relaxed, because each
/// observed epoch legitimately invalidates cached statistics and plans.
fn churn_enabled() -> bool {
    std::env::var("SPECQP_CHURN").is_ok_and(|v| v == "1")
}

/// Runs `jobs` on `service`; in churn mode a writer thread interleaves
/// net-zero commits through [`QueryService::apply_writes`] for the whole
/// duration of the batch.
fn run_batch_churned(service: &QueryService, jobs: &[QueryJob]) -> BatchReport {
    if !churn_enabled() {
        return service.run_batch(jobs);
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut batch = WriteBatch::new();
                for j in 0..8 {
                    let s = format!("churn_{round}_{j}");
                    batch.assert(&s, "churn_rel", "churn_obj", 0.5);
                    batch.retract(&s, "churn_rel", "churn_obj");
                }
                service
                    .apply_writes(&batch)
                    .expect("live service accepts writes during a batch");
                round += 1;
            }
        });
        let report = service.run_batch(jobs);
        stop.store(true, Ordering::Relaxed);
        report
    })
}

/// Byte-identical answer sets: same length, same bindings, bit-equal
/// scores, same order.
fn assert_identical_answers(a: &[PartialAnswer], b: &[PartialAnswer], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: answer count differs");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.binding, y.binding, "{ctx}: binding {i} differs");
        assert_eq!(x.score, y.score, "{ctx}: score {i} differs (bit-exact)");
    }
}

fn assert_identical_outcomes(par: &[QueryOutcome], seq: &[QueryOutcome], ctx: &str) {
    assert_eq!(par.len(), seq.len(), "{ctx}: outcome count");
    for (i, (p, s)) in par.iter().zip(seq).enumerate() {
        assert_eq!(p.plan, s.plan, "{ctx}: plan of job {i} differs");
        assert_identical_answers(&p.answers, &s.answers, &format!("{ctx}: job {i}"));
    }
}

/// Builds a service and an identical-dataset *fresh* sequential reference
/// (separate service instance so no cache state leaks between the two runs).
///
/// Speculation is pinned `Off`: these tests gate *executor* concurrency
/// (parallel ≡ sequential), and the speculation feedback ledger is online
/// learning whose plan evolution legitimately depends on the order verdicts
/// arrive — interleaving-dependent by design. Its service-level counters are
/// covered by `batch_report_surfaces_fallback_counters` in
/// `crates/service/src/lib.rs`, and its correctness by
/// `tests/diff_speculation.rs`.
fn xkg_services(seed: u64, threads: usize) -> (QueryService, QueryService, Vec<sparql::Query>) {
    let ds = XkgGenerator::new(XkgConfig::small(seed)).generate();
    let queries = ds.workload.queries.clone();
    let registry = Arc::new(ds.registry);
    let pinned = |threads: usize| {
        let mut cfg = ServiceConfig::with_threads(threads);
        cfg.engine = cfg.engine.with_speculation(specqp::SpeculationPolicy::Off);
        cfg
    };
    if churn_enabled() {
        // Churn lap: the service under test reads through a live graph (so
        // interleaved writer batches bump its epoch mid-run); the sequential
        // reference keeps the immutable epoch-0 base.
        let live = Arc::new(LiveGraph::new(ds.graph));
        let base = live.pinned().0;
        let service = QueryService::live(live, Arc::clone(&registry), pinned(threads));
        let reference = QueryService::new(base, registry, pinned(1));
        (service, reference, queries)
    } else {
        let graph = Arc::new(ds.graph);
        let service = QueryService::new(Arc::clone(&graph), Arc::clone(&registry), pinned(threads));
        let reference = QueryService::new(graph, registry, pinned(1));
        (service, reference, queries)
    }
}

/// Acceptance criterion: a 4-thread service over a 200-query XKG workload
/// produces answer sets identical to the sequential run and reports a
/// plan-cache hit rate > 0 on the repeated query shapes.
#[test]
fn four_threads_200_queries_match_sequential_with_cache_hits() {
    let (service, reference, queries) = xkg_services(0x5e41ce, 4);
    let jobs: Vec<QueryJob> = queries
        .iter()
        .cycle()
        .take(200)
        .map(|q| QueryJob::specqp(q.clone(), 10))
        .collect();
    assert_eq!(jobs.len(), 200);

    let report = run_batch_churned(&service, &jobs);
    let sequential = reference.run_sequential(&jobs);
    assert_identical_outcomes(&report.outcomes, &sequential, "xkg200");

    let c = report.stats.cache;
    assert_eq!(c.lookups, 200, "one plan-cache lookup per Spec-QP job");
    assert_eq!(c.hits + c.misses, c.lookups);
    // Under the churn lap every interleaved commit invalidates cached
    // statistics (and thereby plans), so the hit-rate floor and miss
    // ceiling only bind in the immutable-graph configuration.
    if !churn_enabled() {
        assert!(
            c.hit_rate > 0.0,
            "repeated shapes must hit the plan cache: {c:?}"
        );
        // The workload cycles, so shapes repeat ~11×; plan() is
        // lookup→plangen→insert without atomicity, so beyond the one miss per
        // distinct shape only concurrently in-flight duplicates (≤ threads - 1
        // at any instant) can add racing misses.
        assert!(
            c.misses <= (queries.len() + 4) as u64,
            "more misses than shapes + racing workers: {c:?}"
        );
    }
    assert!(report.stats.queries_per_sec > 0.0);
}

/// Determinism under parallelism for every executor: a mixed
/// specqp/trinit/naive workload run on 4 threads matches the sequential
/// engine run job-for-job.
#[test]
fn mixed_mode_workload_matches_sequential() {
    let (service, reference, queries) = xkg_services(0x111ed, 4);
    let jobs: Vec<QueryJob> = queries
        .iter()
        .cycle()
        .take(36)
        .enumerate()
        .map(|(i, q)| {
            let k = 5 + (i % 3) * 5;
            match i % 3 {
                0 => QueryJob::specqp(q.clone(), k),
                1 => QueryJob::trinit(q.clone(), k),
                _ => QueryJob::naive(q.clone(), k),
            }
        })
        .collect();
    let report = run_batch_churned(&service, &jobs);
    let sequential = reference.run_sequential(&jobs);
    assert_identical_outcomes(&report.outcomes, &sequential, "mixed");
    // Only the Spec-QP third consults the plan cache.
    assert_eq!(report.stats.cache.lookups, 12);
}

/// Repeated batches on one service keep answers stable while the hit rate
/// climbs (the cache persists across batches).
#[test]
fn cache_persists_across_batches() {
    let (service, _, queries) = xkg_services(0xba7c4, 2);
    let jobs: Vec<QueryJob> = queries
        .iter()
        .take(6)
        .map(|q| QueryJob::specqp(q.clone(), 10))
        .collect();
    let first = run_batch_churned(&service, &jobs);
    let misses_after_first = first.stats.cache.misses;
    let second = run_batch_churned(&service, &jobs);
    assert_identical_outcomes(&second.outcomes, &first.outcomes, "batch2");
    // Interleaved commits drop cached plans, so all-hits only holds on the
    // immutable-graph lap.
    if !churn_enabled() {
        assert_eq!(
            second.stats.cache.misses, misses_after_first,
            "second batch must be all hits"
        );
    }
    assert_eq!(second.stats.cache.lookups, 12);
}

/// Loom-free contention smoke: threads hammering the *same* shape must keep
/// the counters consistent (hits + misses == lookups), insert the plan at
/// most once per shape, and never corrupt the stored plan.
#[test]
fn cache_contention_same_key_is_consistent() {
    let cache = PlanCache::new(4, 64);
    let ds = XkgGenerator::new(XkgConfig::small(0xc0ffee)).generate();
    let query = ds.workload.queries[0].clone();
    let shape = QueryShape::of(&query, 10);
    let plan = QueryPlan::all_relaxed(query.len());

    const THREADS: usize = 8;
    const ROUNDS: usize = 500;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..ROUNDS {
                    match cache.lookup(&shape, 0) {
                        Some(got) => assert_eq!(got, plan, "cached plan corrupted"),
                        None => {
                            // Losing the insert race is fine; double-insert is not.
                            let _ = cache.insert(shape.clone(), plan.clone(), 0);
                        }
                    }
                }
            });
        }
    });

    let m = cache.metrics();
    assert_eq!(
        m.hits() + m.misses(),
        m.lookups(),
        "counter invariant broken"
    );
    assert_eq!(
        m.lookups(),
        (THREADS * ROUNDS) as u64,
        "every lookup accounted"
    );
    assert_eq!(m.insertions(), 1, "plan double-inserted under contention");
    assert_eq!(m.evictions(), 0);
    assert_eq!(cache.len(), 1);
}

/// Distinct shapes hammered concurrently land in distinct shard slots with
/// exact insert accounting.
#[test]
fn cache_contention_many_keys() {
    let cache = PlanCache::new(8, 1024);
    let ds = XkgGenerator::new(XkgConfig::small(0xd157)).generate();
    let shapes: Vec<QueryShape> = ds
        .workload
        .queries
        .iter()
        .flat_map(|q| (1..=4).map(|k| QueryShape::of(q, k)))
        .collect();
    let n_pats: Vec<usize> = shapes.iter().map(QueryShape::len).collect();
    std::thread::scope(|scope| {
        for _ in 0..6 {
            scope.spawn(|| {
                for (shape, n) in shapes.iter().zip(&n_pats) {
                    if cache.lookup(shape, 0).is_none() {
                        let _ = cache.insert(shape.clone(), QueryPlan::all_relaxed(*n), 0);
                    }
                }
            });
        }
    });
    let m = cache.metrics();
    assert_eq!(m.hits() + m.misses(), m.lookups());
    assert_eq!(
        m.insertions(),
        shapes.len() as u64,
        "each distinct shape inserted exactly once"
    );
    assert_eq!(cache.len(), shapes.len());
}

/// The compile-time `Send + Sync` proof required by the issue, at the
/// integration level: the owned-construction engine, the service, and the
/// outcome type all cross threads.
#[test]
fn service_layer_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<specqp::Engine<'static>>();
    assert_send_sync::<QueryService>();
    assert_send_sync::<QueryOutcome>();
    assert_send_sync::<QueryJob>();
    assert_send_sync::<ExecMode>();
}

/// Live-service stability, unconditionally (the churn lap additionally
/// interleaves writers into every other test here): a writer committing
/// net-zero batches concurrently with a 4-thread query batch must leave the
/// answers byte-identical to the pre-churn baseline — every query pins
/// *some* epoch and every epoch holds the same visible triples — and a
/// forced compaction folds the accumulated overlay without changing a
/// single answer.
#[test]
fn live_service_interleaved_writes_and_compaction_keep_answers() {
    let ds = XkgGenerator::new(XkgConfig::small(0x11fe)).generate();
    let live = Arc::new(LiveGraph::new(ds.graph));
    let mut cfg = ServiceConfig::with_threads(4);
    cfg.engine = cfg.engine.with_speculation(specqp::SpeculationPolicy::Off);
    let service = QueryService::live(Arc::clone(&live), Arc::new(ds.registry), cfg);
    let jobs: Vec<QueryJob> = ds
        .workload
        .queries
        .iter()
        .cycle()
        .take(48)
        .map(|q| QueryJob::specqp(q.clone(), 10))
        .collect();

    let baseline = service.run_batch(&jobs);
    let epoch0 = live.epoch();

    let stop = AtomicBool::new(false);
    let churned = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut batch = WriteBatch::new();
                for j in 0..16 {
                    let s = format!("mid_{round}_{j}");
                    batch.assert(&s, "mid_rel", "mid_obj", 0.5);
                    batch.retract(&s, "mid_rel", "mid_obj");
                }
                service
                    .apply_writes(&batch)
                    .expect("live service accepts writes");
                round += 1;
            }
        });
        let report = service.run_batch(&jobs);
        stop.store(true, Ordering::Relaxed);
        report
    });
    assert!(
        live.epoch() > epoch0,
        "the writer must have committed while the batch ran"
    );
    assert_identical_outcomes(&churned.outcomes, &baseline.outcomes, "mid-churn");

    let folded = service.compact().expect("live service compacts");
    assert_eq!(folded, live.epoch(), "compaction publishes the new epoch");
    let after = service.run_batch(&jobs);
    assert_identical_outcomes(&after.outcomes, &baseline.outcomes, "post-compaction");
}
