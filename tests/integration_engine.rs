//! End-to-end integration tests: generated datasets → engine → metrics.

use datagen::{TwitterConfig, TwitterGenerator, XkgConfig, XkgGenerator};
use specqp::{precision_at_k, required_relaxations, score_error, Engine, QueryPlan};

#[test]
fn trinit_equals_naive_on_xkg() {
    let ds = XkgGenerator::new(XkgConfig::small(21)).generate();
    let engine = Engine::new(&ds.graph, &ds.registry);
    for query in ds.workload.queries.iter().take(4) {
        let trinit = engine.run_trinit(query, 10);
        let naive = engine.run_naive(query, 10);
        assert_eq!(trinit.answers.len(), naive.answers.len());
        for (a, b) in trinit.answers.iter().zip(&naive.answers) {
            assert!(
                a.score.approx_eq(b.score, 1e-9),
                "TriniT and naive disagree: {a:?} vs {b:?}"
            );
        }
    }
}

#[test]
fn trinit_equals_naive_on_twitter() {
    let ds = TwitterGenerator::new(TwitterConfig::small(22)).generate();
    let engine = Engine::new(&ds.graph, &ds.registry);
    for query in ds.workload.queries.iter().take(3) {
        let trinit = engine.run_trinit(query, 10);
        let naive = engine.run_naive(query, 10);
        assert_eq!(trinit.answers.len(), naive.answers.len());
        for (a, b) in trinit.answers.iter().zip(&naive.answers) {
            assert!(a.score.approx_eq(b.score, 1e-9));
        }
    }
}

#[test]
fn specqp_answers_are_valid_relaxed_answers() {
    let ds = XkgGenerator::new(XkgConfig::small(23)).generate();
    let engine = Engine::new(&ds.graph, &ds.registry);
    for query in ds.workload.queries.iter().take(5) {
        let spec = engine.run_specqp(query, 10);
        // Ground truth over the full relaxation space, deep enough to cover
        // everything Spec-QP can return.
        let full = engine.run_naive(query, 100_000);
        for a in &spec.answers {
            let hit = full
                .answers
                .iter()
                .find(|t| t.binding == a.binding)
                .unwrap_or_else(|| panic!("Spec-QP invented an answer: {a:?}"));
            // Spec-QP scores never exceed the Def.-8 max-semantics score.
            assert!(
                a.score <= hit.score + specqp_common::Score::new(1e-9),
                "score above ground truth: {a:?} vs {hit:?}"
            );
        }
        // Output is sorted.
        for w in spec.answers.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}

#[test]
fn specqp_with_all_relaxed_plan_equals_trinit() {
    let ds = XkgGenerator::new(XkgConfig::small(24)).generate();
    // Parallelism pinned to 1: this test asserts exact work-counter
    // equality, and morsel workers repeat non-target scans by a
    // scheduling-dependent amount (answers stay identical either way).
    let engine = Engine::with_config(
        &ds.graph,
        &ds.registry,
        specqp::EngineConfig::default().with_parallelism(1),
    );
    let query = &ds.workload.queries[0];
    let forced = engine.run_with_plan(
        query,
        10,
        QueryPlan::all_relaxed(query.len()),
        std::time::Duration::ZERO,
    );
    let trinit = engine.run_trinit(query, 10);
    assert_eq!(forced.answers.len(), trinit.answers.len());
    for (a, b) in forced.answers.iter().zip(&trinit.answers) {
        assert_eq!(a.binding, b.binding);
        assert!(a.score.approx_eq(b.score, 1e-12));
    }
    assert_eq!(forced.report.answers_created, trinit.report.answers_created);
}

#[test]
fn workload_quality_stays_reasonable() {
    // The reproduction's headline: precision comparable to the paper's
    // 0.7–0.9 band and bounded score error.
    let ds = XkgGenerator::new(XkgConfig::small(25)).generate();
    let engine = Engine::new(&ds.graph, &ds.registry);
    let k = 10;
    let mut prec_sum = 0.0;
    for query in &ds.workload.queries {
        let spec = engine.run_specqp(query, k);
        let trinit = engine.run_trinit(query, k);
        prec_sum += precision_at_k(&spec.answers, &trinit.answers, k);
        let err = score_error(&spec.answers, &trinit.answers, k);
        assert!(
            err.mean_abs <= query.len() as f64,
            "score error out of range: {err:?}"
        );
    }
    let avg = prec_sum / ds.workload.len() as f64;
    assert!(avg >= 0.6, "average precision {avg} collapsed");
}

#[test]
fn memory_metric_spec_never_exceeds_trinit_when_pruning() {
    let ds = XkgGenerator::new(XkgConfig::small(26)).generate();
    // Parallelism pinned to 1: the §4.3 memory-metric comparison only holds
    // for sequential execution (morsel workers repeat non-target scans).
    let engine = Engine::with_config(
        &ds.graph,
        &ds.registry,
        specqp::EngineConfig::default().with_parallelism(1),
    );
    for query in ds.workload.queries.iter().take(6) {
        let spec = engine.run_specqp(query, 10);
        let trinit = engine.run_trinit(query, 10);
        if spec.plan.relaxed_count() < query.len() {
            // Pruned plans read strictly less input.
            assert!(
                spec.report.answers_created <= trinit.report.answers_created,
                "pruned plan created more objects: {} vs {}",
                spec.report.answers_created,
                trinit.report.answers_created
            );
        } else {
            assert_eq!(spec.report.answers_created, trinit.report.answers_created);
        }
    }
}

#[test]
fn required_relaxations_consistent_with_plans() {
    let ds = TwitterGenerator::new(TwitterConfig::small(27)).generate();
    let engine = Engine::new(&ds.graph, &ds.registry);
    for query in ds.workload.queries.iter().take(5) {
        let trinit = engine.run_trinit(query, 10);
        let required = required_relaxations(&ds.graph, query, &ds.registry, &trinit.answers);
        for &i in &required {
            assert!(i < query.len());
        }
        // If nothing is required, the bare plan reproduces the true top-k.
        if required.is_empty() {
            let bare = engine.run_with_plan(
                query,
                10,
                QueryPlan::none_relaxed(query.len()),
                std::time::Duration::ZERO,
            );
            let p = precision_at_k(&bare.answers, &trinit.answers, 10);
            assert!(
                (p - 1.0).abs() < 1e-9,
                "no relaxation required but bare precision {p}"
            );
        }
    }
}

#[test]
fn engine_runs_are_deterministic() {
    let ds = XkgGenerator::new(XkgConfig::small(28)).generate();
    // Speculation pinned Off: repeated-run identity is a property of the
    // baseline path. Under a feedback policy, run 1's verdicts may
    // legitimately re-plan run 2 (that is the learning loop working).
    // Parallelism pinned to 1 for the same reason the goldens pin it: the
    // final counter assertion is only exact sequentially.
    let engine = specqp::Engine::with_config(
        &ds.graph,
        &ds.registry,
        specqp::EngineConfig::default()
            .with_speculation(specqp::SpeculationPolicy::Off)
            .with_parallelism(1),
    );
    let query = &ds.workload.queries[1];
    let a = engine.run_specqp(query, 15);
    let b = engine.run_specqp(query, 15);
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.answers.len(), b.answers.len());
    for (x, y) in a.answers.iter().zip(&b.answers) {
        assert_eq!(x.binding, y.binding);
        assert_eq!(x.score, y.score);
    }
    assert_eq!(a.report.answers_created, b.report.answers_created);
}
