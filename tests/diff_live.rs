//! Differential harness locking in live writes ≡ rebuild-from-scratch.
//!
//! For hundreds of randomly generated write histories (seeded through the
//! vendored proptest), a [`LiveGraph`]-backed engine queried *live* — base
//! plus delta overlay, mid-churn — must answer exactly like an engine over
//! a graph rebuilt from scratch to hold the same visible triples, for
//! Spec-QP and TriniT across the row, block and morsel executors. On top
//! of the differential:
//!
//! * **epoch isolation** — an engine pinned to the version published after
//!   the first batch answers byte-identically before and after every later
//!   commit (a query pinned at epoch N never sees N+1);
//! * **compaction round-trip** — after folding the overlay into a flat
//!   base, answers still match, and the folded graph survives a snapshot
//!   v2 write/read round-trip answering the same.
//!
//! Scores are distinct by construction (each op gets its own quantized
//! score, disjoint from the seed and anchor ranges), so per-triple order is
//! deterministic; multi-pattern *sums* can still collide, so answers are
//! compared as canonicalized (score bits, resolved names) sets with `k`
//! larger than any possible result — answer-set equality at full depth,
//! immune to tie-order at a top-k boundary.

use kgstore::{CompactionPolicy, KnowledgeGraph, KnowledgeGraphBuilder, LiveGraph, WriteBatch};
use proptest::prelude::*;
use relax::RelaxationRegistry;
use sparql::{Query, QueryBuilder};
use specqp::{Engine, EngineConfig, QueryOutcome};
use std::collections::HashMap;
use std::sync::Arc;

/// Deeper than any reachable answer set, so top-k == all answers and set
/// comparison is complete.
const K_ALL: usize = 512;

const N_SUBJ: u8 = 12;
const N_PRED: u8 = 4;
const N_OBJ: u8 = 6;

/// One raw write op drawn by proptest: `(kind, s, p, o)` with kind 0 ⇒
/// retract, anything else ⇒ assert. The op's *index* in the history
/// provides its score, so every asserted score is distinct.
type RawOp = (u8, u8, u8, u8);

fn subj(i: u8) -> String {
    format!("s{}", i % N_SUBJ)
}
fn pred(i: u8) -> String {
    format!("p{}", i % N_PRED)
}
fn obj(i: u8) -> String {
    format!("o{}", i % N_OBJ)
}

/// The model the live graph is checked against: visible triples by name.
type Model = HashMap<(String, String, String), f64>;

/// A canonicalized answer set: (score bits, resolved names) rows, sorted.
type CanonicalAnswers = Vec<(u64, Vec<String>)>;

/// The epoch-isolation pin: a held version, its epoch, and the answers it
/// froze.
type PinnedExpectation = (Arc<KnowledgeGraph>, kgstore::Epoch, CanonicalAnswers);

/// Seed triples plus one never-retracted anchor per (p, o) pair, so every
/// predicate/object name exists in any rebuilt graph's dictionary and
/// queries can always be constructed against it.
fn seed_model() -> Model {
    let mut m = Model::new();
    for i in 0..10u8 {
        m.insert((subj(i), pred(i), obj(i)), 100.0 + f64::from(i));
    }
    for p in 0..N_PRED {
        for o in 0..N_OBJ {
            m.insert(
                (format!("anchor{p}_{o}"), pred(p), obj(o)),
                1000.0 + f64::from(p) * 16.0 + f64::from(o),
            );
        }
    }
    m
}

fn build_from_model(model: &Model) -> KnowledgeGraph {
    // Deterministic insertion order (builder ids follow it), though the
    // differential never depends on it: scores are distinct per triple.
    let mut entries: Vec<_> = model.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let mut b = KnowledgeGraphBuilder::new();
    for ((s, p, o), score) in entries {
        b.add(s, p, o, *score);
    }
    b.build()
}

/// Builds the same star query against `graph`'s own dictionary; `None`
/// when a picked term name is absent there (impossible for rebuilt graphs
/// thanks to the anchors, but checked rather than assumed).
fn build_query(graph: &KnowledgeGraph, picks: &[u16]) -> Option<Query> {
    let d = graph.dictionary();
    let mut chosen: Vec<(u8, Option<u8>)> = Vec::new();
    for &pick in picks {
        let p = (pick % u16::from(N_PRED)) as u8;
        // Every third pick leaves the object open (`?x <p> ?y`).
        let o = if pick % 3 == 0 {
            None
        } else {
            Some(((pick / u16::from(N_PRED)) % u16::from(N_OBJ)) as u8)
        };
        if !chosen.contains(&(p, o)) {
            chosen.push((p, o));
        }
    }
    let mut qb = QueryBuilder::new();
    let x = qb.var("x");
    for (i, (p, o)) in chosen.iter().enumerate() {
        let p = d.lookup(&pred(*p))?;
        match o {
            Some(o) => {
                qb.pattern(x, p, d.lookup(&obj(*o))?);
            }
            None => {
                let y = qb.var(&format!("y{i}"));
                qb.pattern(x, p, y);
            }
        }
    }
    qb.project(x);
    qb.build().ok()
}

/// Canonical answer form: (score bits, resolved binding names), sorted.
/// Resolving through each graph's own dictionary makes answers comparable
/// across graphs whose term ids differ.
fn canonical(outcome: &QueryOutcome, graph: &KnowledgeGraph) -> CanonicalAnswers {
    let d = graph.dictionary();
    let mut rows: CanonicalAnswers = outcome
        .answers
        .iter()
        .map(|a| {
            (
                a.score.value().to_bits(),
                a.binding
                    .iter()
                    .map(|(_, t)| d.name_or_unknown(t).to_string())
                    .collect(),
            )
        })
        .collect();
    rows.sort();
    rows
}

fn apply_to_model(model: &mut Model, ops: &[RawOp], score_base: usize) {
    for (idx, &(kind, s, p, o)) in ops.iter().enumerate() {
        let key = (subj(s), pred(p), obj(o));
        if kind == 0 {
            model.remove(&key);
        } else {
            model.insert(key, (score_base + idx + 1) as f64 * 0.25);
        }
    }
}

fn batch_of(ops: &[RawOp], score_base: usize) -> WriteBatch {
    let mut batch = WriteBatch::new();
    for (idx, &(kind, s, p, o)) in ops.iter().enumerate() {
        let (s, p, o) = (subj(s), pred(p), obj(o));
        if kind == 0 {
            batch.retract(&s, &p, &o);
        } else {
            batch.assert(&s, &p, &o, (score_base + idx + 1) as f64 * 0.25);
        }
    }
    batch
}

/// The full differential: random history applied batch-by-batch, the live
/// engine checked against a rebuilt-from-scratch engine after every
/// commit, epoch isolation across the tail of the history, and the
/// compaction + snapshot-v2 round-trip at the end.
fn check_live_differential(ops: &[RawOp], picks: &[u16]) -> Result<(), TestCaseError> {
    let mut model = seed_model();
    let live = Arc::new(LiveGraph::with_policy(
        build_from_model(&model),
        CompactionPolicy::never(),
    ));
    let registry = Arc::new(RelaxationRegistry::new());
    let engines: Vec<Engine<'static>> = [
        EngineConfig::default().with_execution(operators::ExecutionMode::RowAtATime),
        EngineConfig::default().with_execution(operators::ExecutionMode::Block(7)),
        EngineConfig::default()
            .with_execution(operators::ExecutionMode::Block(
                operators::DEFAULT_BLOCK_SIZE,
            ))
            .with_parallelism(2),
    ]
    .into_iter()
    .map(|config| Engine::live_with_config(Arc::clone(&live), Arc::clone(&registry), config))
    .collect();

    let mut pinned: Option<PinnedExpectation> = None;
    for (i, chunk) in ops.chunks(5).enumerate() {
        let score_base = i * 5;
        live.commit(&batch_of(chunk, score_base));
        apply_to_model(&mut model, chunk, score_base);

        let rebuilt = build_from_model(&model);
        let reference = Engine::new(&rebuilt, &registry);
        let Some(ref_query) = build_query(&rebuilt, picks) else {
            return Ok(());
        };
        let want_spec = canonical(&reference.run_specqp(&ref_query, K_ALL), &rebuilt);
        let want_trinit = canonical(&reference.run_trinit(&ref_query, K_ALL), &rebuilt);
        prop_assert!(
            want_spec.len() < K_ALL,
            "K_ALL must exceed the full answer set"
        );

        let (version, _) = live.pinned();
        let live_query = build_query(&version, picks).expect("live dict is append-only");
        for (e, engine) in engines.iter().enumerate() {
            let got = canonical(&engine.run_specqp(&live_query, K_ALL), &version);
            prop_assert_eq!(&got, &want_spec, "specqp, executor {}, batch {}", e, i);
            let got = canonical(&engine.run_trinit(&live_query, K_ALL), &version);
            prop_assert_eq!(&got, &want_trinit, "trinit, executor {}, batch {}", e, i);
        }

        // Pin the version published by the first commit; it must keep
        // answering exactly this for the rest of the history.
        if i == 0 {
            let (v, e) = live.pinned();
            let outcome = Engine::shared(Arc::clone(&v), Arc::clone(&registry))
                .run_specqp(&live_query, K_ALL);
            let frozen = canonical(&outcome, &v);
            pinned = Some((v, e, frozen));
        } else if let Some((v, e, frozen)) = &pinned {
            prop_assert_eq!(*e < live.epoch(), true, "later commits bump the epoch");
            let rerun_query = build_query(v, picks).expect("pinned dict held the vocabulary");
            let rerun = Engine::shared(Arc::clone(v), Arc::clone(&registry))
                .run_specqp(&rerun_query, K_ALL);
            prop_assert_eq!(
                &canonical(&rerun, v),
                frozen,
                "epoch-pinned answers drifted at batch {}",
                i
            );
        }
    }

    // Compaction round-trip: fold the overlay, then push the folded base
    // through the v2 snapshot codec — three graphs, one answer set.
    if ops.is_empty() {
        return Ok(());
    }
    live.compact();
    let (folded, _) = live.pinned();
    prop_assert!(!folded.has_overlay(), "compaction must flatten");
    let rebuilt = build_from_model(&model);
    let reference = Engine::new(&rebuilt, &registry);
    let Some(ref_query) = build_query(&rebuilt, picks) else {
        return Ok(());
    };
    let want = canonical(&reference.run_specqp(&ref_query, K_ALL), &rebuilt);
    let live_query = build_query(&folded, picks).expect("flatten is id-stable");
    let got = canonical(&engines[0].run_specqp(&live_query, K_ALL), &folded);
    prop_assert_eq!(&got, &want, "post-compaction answers");

    let bytes = kgstore::snapshot::write_snapshot(&folded);
    let loaded = kgstore::snapshot::read_snapshot(&bytes).expect("snapshot v2 round-trip");
    let loaded_query = build_query(&loaded, picks).expect("snapshot keeps the dictionary");
    let reloaded = Engine::new(&loaded, &registry);
    let got = canonical(&reloaded.run_specqp(&loaded_query, K_ALL), &loaded);
    prop_assert_eq!(&got, &want, "snapshot-reloaded answers");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn live_reads_equal_rebuild_from_scratch(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..=25,
        ),
        picks in proptest::collection::vec(any::<u16>(), 1..=3),
    ) {
        check_live_differential(&ops, &picks)?;
    }
}

/// A deterministic worst-case history (every triple replaced, half
/// retracted, scores shuffled) pinned outside proptest so a regression
/// fails loudly with a stable name.
#[test]
fn replacement_heavy_history_stays_equivalent() {
    let mut ops: Vec<RawOp> = Vec::new();
    for r in 0..4u8 {
        for s in 0..N_SUBJ {
            ops.push((1, s, s % N_PRED, (s + r) % N_OBJ));
            if s % 2 == 0 {
                ops.push((0, s, s % N_PRED, (s + r) % N_OBJ));
            }
        }
    }
    check_live_differential(&ops, &[1, 3, 6]).unwrap();
}
