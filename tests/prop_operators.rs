//! Property-based tests of the top-k operators against brute-force
//! references.

use operators::{
    materialize, top_k, Binding, IncrementalMerge, NestedLoopsRankJoin, OpMetrics, PartialAnswer,
    PullStrategy, RankJoin, RankedStream, VecStream,
};
use proptest::prelude::*;
use sparql::Var;
use specqp_common::{Score, TermId};

/// Strategy: one descending-sorted input list binding `?0` (+ a side var so
/// join outputs differ), with controlled key collisions.
fn input_list(side_var: u32, max_len: usize) -> impl Strategy<Value = Vec<PartialAnswer>> {
    prop::collection::vec((0u32..12, 0u32..1000u32, 0.0f64..1.0), 0..max_len).prop_map(
        move |items| {
            let mut v: Vec<PartialAnswer> = items
                .into_iter()
                .map(|(key, side, score)| {
                    PartialAnswer::new(
                        Binding::from_pairs(vec![
                            (Var(0), TermId(key)),
                            (Var(side_var), TermId(side)),
                        ]),
                        Score::new(score),
                    )
                })
                .collect();
            v.sort_by(|a, b| b.cmp(a));
            v
        },
    )
}

fn naive_join(l: &[PartialAnswer], r: &[PartialAnswer], join_vars: &[Var]) -> Vec<PartialAnswer> {
    let mut out = Vec::new();
    for a in l {
        for b in r {
            if a.binding.key_for(join_vars) == b.binding.key_for(join_vars)
                && a.binding.compatible(&b.binding)
            {
                out.push(PartialAnswer::new(
                    a.binding.merged(&b.binding),
                    a.score + b.score,
                ));
            }
        }
    }
    out.sort_by(|x, y| y.cmp(x));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// HRJN (both pull strategies) produces exactly the sorted join.
    #[test]
    fn rank_join_equals_naive(
        l in input_list(1, 40),
        r in input_list(2, 40),
        adaptive in any::<bool>(),
    ) {
        let strategy = if adaptive { PullStrategy::Adaptive } else { PullStrategy::Alternate };
        let m = OpMetrics::new_handle();
        let join = RankJoin::new(
            Box::new(VecStream::new(l.clone())),
            Box::new(VecStream::new(r.clone())),
            vec![Var(0)],
            strategy,
            m,
        );
        let got = materialize(join);
        let want = naive_join(&l, &r, &[Var(0)]);
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.score.approx_eq(b.score, 1e-12));
        }
    }

    /// NRJN agrees with HRJN on score sequences.
    #[test]
    fn nrjn_equals_hrjn(
        l in input_list(1, 30),
        r in input_list(2, 30),
    ) {
        let m1 = OpMetrics::new_handle();
        let nrjn = NestedLoopsRankJoin::new(l.clone(), r.clone(), vec![Var(0)], m1);
        let got = materialize(nrjn);
        let want = naive_join(&l, &r, &[Var(0)]);
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.score.approx_eq(b.score, 1e-12));
        }
    }

    /// The incremental merge equals sort-merge-dedup with max semantics.
    #[test]
    fn incremental_merge_equals_naive(
        lists in prop::collection::vec(input_list(1, 25), 0..5),
    ) {
        let inputs: Vec<operators::BoxedStream<'static>> = lists
            .iter()
            .map(|l| Box::new(VecStream::new(l.clone())) as operators::BoxedStream<'static>)
            .collect();
        let merge = IncrementalMerge::new(inputs);
        let got = materialize(merge);

        // Reference: flatten, sort desc, keep first occurrence per binding.
        let mut flat: Vec<PartialAnswer> = lists.into_iter().flatten().collect();
        flat.sort_by(|a, b| b.cmp(a));
        let mut seen = std::collections::HashSet::new();
        let want: Vec<PartialAnswer> = flat
            .into_iter()
            .filter(|a| seen.insert(a.binding.clone()))
            .collect();

        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.score.approx_eq(b.score, 1e-12));
            // Dedup keeps max score per binding: scores agree rankwise.
        }
        // Sortedness.
        for w in got.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// `top_k` is a prefix of the full materialization.
    #[test]
    fn top_k_is_prefix(
        l in input_list(1, 40),
        k in 0usize..50,
    ) {
        let mut s1 = VecStream::new(l.clone());
        let got = top_k(&mut s1, k);
        let full = materialize(VecStream::new(l));
        prop_assert_eq!(got.len(), k.min(full.len()));
        for (a, b) in got.iter().zip(&full) {
            prop_assert_eq!(a, b);
        }
    }

    /// Upper bounds never underestimate the next answer, through a 2-level
    /// operator tree (merge feeding a join).
    #[test]
    fn bounds_are_sound_through_composition(
        l1 in input_list(1, 20),
        l2 in input_list(1, 20),
        r in input_list(2, 25),
    ) {
        let m = OpMetrics::new_handle();
        let merge = IncrementalMerge::new(vec![
            Box::new(VecStream::new(l1)) as operators::BoxedStream<'static>,
            Box::new(VecStream::new(l2)),
        ]);
        let mut join = RankJoin::new(
            Box::new(merge),
            Box::new(VecStream::new(r)),
            vec![Var(0)],
            PullStrategy::Adaptive,
            m,
        );
        loop {
            let bound = join.upper_bound();
            match join.next() {
                Some(a) => {
                    let b = bound.expect("bound exists while answers remain");
                    prop_assert!(b + Score::new(1e-9) >= a.score,
                        "bound {:?} < answer {:?}", b, a.score);
                }
                None => break,
            }
        }
    }
}
