//! Loopback TCP integration suite for the wire front-end: frame
//! round-trips, protocol-error handling, per-client quota rejection,
//! queue-full shedding with `RetryAfter`, deadline shedding, and response
//! ordering — the overload behaviors the admission-control layer promises.

use kgstore::KnowledgeGraphBuilder;
use relax::RelaxationRegistry;
use specqp_server::{
    ErrorCode, QuotaConfig, Server, ServerConfig, SpecQpClient, WireResponse, WireWriteOp, OP_QUERY,
};
use specqp_service::{ExecMode, LiveGraph, QueryService, ServiceConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SINGERS: &str = "SELECT ?s WHERE { ?s <rdf:type> <singer> }";
/// A two-pattern merge join — around a millisecond per execution on the
/// 2000-entity graph, the hammer for wedging a single-worker service.
const SLOW_JOIN: &str = "SELECT ?s WHERE { ?s <rdf:type> <singer> . ?s <rdf:type> <artist> }";

fn sized_service(entities: usize, threads: usize, queue_depth: usize) -> Arc<QueryService> {
    let mut b = KnowledgeGraphBuilder::new();
    for i in 0..entities {
        b.add(
            &format!("singer{i}"),
            "rdf:type",
            "singer",
            100.0 / (i + 1) as f64,
        );
        b.add(
            &format!("singer{i}"),
            "rdf:type",
            "artist",
            90.0 / (i + 1) as f64,
        );
    }
    let config = ServiceConfig::with_threads(threads).with_queue_depth(queue_depth);
    Arc::new(QueryService::new(
        Arc::new(b.build()),
        Arc::new(RelaxationRegistry::new()),
        config,
    ))
}

fn test_service(threads: usize, queue_depth: usize) -> Arc<QueryService> {
    sized_service(30, threads, queue_depth)
}

fn expect_answers(reply: WireResponse) -> Vec<specqp_server::WireAnswer> {
    match reply {
        WireResponse::Answers { answers, .. } => answers,
        other => panic!("expected answers, got {other:?}"),
    }
}

/// Frame round-trip: a well-formed query over loopback returns the ranked
/// answer set with resolved term names and bit-exact scores.
#[test]
fn loopback_roundtrip_returns_ranked_answers() {
    let service = test_service(2, 8);
    let server =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SpecQpClient::connect(server.local_addr()).unwrap();

    let answers = expect_answers(
        client
            .roundtrip(SINGERS, ExecMode::SpecQp, 5, 0, 1)
            .unwrap(),
    );
    assert_eq!(answers.len(), 5);
    // Rank order, top entity first, names resolved through the dictionary.
    assert_eq!(answers[0].bindings[0].1, "singer0");
    for w in answers.windows(2) {
        assert!(w[0].score >= w[1].score, "answers must be rank-ordered");
    }
    // The wire answers match an in-process run bit-for-bit.
    let graph = service.engine().graph();
    let direct = service.engine().run_specqp(
        &sparql::parse_query(SINGERS, graph.dictionary()).unwrap(),
        5,
    );
    for (wire, local) in answers.iter().zip(&direct.answers) {
        assert_eq!(wire.score.to_bits(), local.score.value().to_bits());
    }
    server.shutdown();
}

/// Responses come back in request order per connection, and request ids
/// correlate.
#[test]
fn pipelined_requests_answer_in_order() {
    let service = test_service(3, 16);
    let server = Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SpecQpClient::connect(server.local_addr()).unwrap();

    let ids: Vec<u64> = (1..=10)
        .map(|k| client.send(SINGERS, ExecMode::SpecQp, k, 0, 1).unwrap())
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let reply = client.recv().unwrap();
        assert_eq!(reply.request_id(), *id, "response {i} out of order");
        assert_eq!(
            expect_answers(reply).len(),
            i + 1,
            "k grew with each request"
        );
    }
    server.shutdown();
}

/// Malformed frames are a typed `Protocol` error, not a dropped connection:
/// the same connection keeps serving valid requests afterwards.
#[test]
fn malformed_frame_gets_protocol_error_and_connection_survives() {
    let service = test_service(2, 8);
    let server = Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SpecQpClient::connect(server.local_addr()).unwrap();

    // Unknown opcode.
    client.send_raw(&[0x7f, 1, 2, 3]).unwrap();
    match client.recv().unwrap() {
        WireResponse::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    // Truncated query payload.
    client.send_raw(&[OP_QUERY, 0, 0]).unwrap();
    match client.recv().unwrap() {
        WireResponse::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    // Unparseable query text, unknown mode byte and k = 0 are all Protocol.
    client
        .send("THIS IS NOT SPARQL", ExecMode::SpecQp, 5, 0, 1)
        .unwrap();
    match client.recv().unwrap() {
        WireResponse::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::Protocol);
            assert!(
                message.contains("parse"),
                "message names the cause: {message}"
            );
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    client.send(SINGERS, ExecMode::SpecQp, 0, 0, 1).unwrap();
    match client.recv().unwrap() {
        WireResponse::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    // The connection still works.
    let answers = expect_answers(
        client
            .roundtrip(SINGERS, ExecMode::TriniT, 3, 0, 1)
            .unwrap(),
    );
    assert_eq!(answers.len(), 3);
    server.shutdown();
}

/// Quota exhaustion: a client that bursts past its token bucket gets
/// `RetryAfter` with a positive back-off hint, while other clients are
/// unaffected; after the hinted wait the client is admitted again.
#[test]
fn quota_exhaustion_returns_retry_after() {
    let service = test_service(2, 32);
    let config = ServerConfig::with_quota(QuotaConfig {
        rate_per_sec: 20.0,
        burst: 3.0,
    });
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let mut client = SpecQpClient::connect(server.local_addr()).unwrap();

    // The burst admits; the next request is throttled.
    for _ in 0..3 {
        expect_answers(
            client
                .roundtrip(SINGERS, ExecMode::SpecQp, 2, 0, 7)
                .unwrap(),
        );
    }
    let retry_ms = match client
        .roundtrip(SINGERS, ExecMode::SpecQp, 2, 0, 7)
        .unwrap()
    {
        WireResponse::Error {
            code: ErrorCode::RetryAfter,
            retry_after_ms,
            ..
        } => retry_after_ms,
        other => panic!("expected RetryAfter, got {other:?}"),
    };
    assert!(retry_ms >= 1, "hint must be positive");
    // A different client id has its own untouched bucket.
    expect_answers(
        client
            .roundtrip(SINGERS, ExecMode::SpecQp, 2, 0, 8)
            .unwrap(),
    );
    // After backing off as hinted, client 7 is admitted again.
    std::thread::sleep(Duration::from_millis(u64::from(retry_ms) + 20));
    expect_answers(
        client
            .roundtrip(SINGERS, ExecMode::SpecQp, 2, 0, 7)
            .unwrap(),
    );
    assert!(server.stats().quota_rejected >= 1);
    server.shutdown();
}

/// Deadline shedding over the wire: a request whose deadline budget is
/// already unmeetable comes back `DeadlineExceeded` without executing.
#[test]
fn expired_deadline_is_shed_over_the_wire() {
    // One slow worker and a deep queue: put ~10ms of join work ahead of a
    // request whose 1ms budget is unmeetable.
    let service = sized_service(2000, 1, 32);
    let server =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SpecQpClient::connect(server.local_addr()).unwrap();

    let mut sheds = 0;
    for round in 0..10 {
        for _ in 0..8 {
            client.send(SLOW_JOIN, ExecMode::SpecQp, 10, 0, 1).unwrap();
        }
        let id = client.send(SINGERS, ExecMode::SpecQp, 10, 1, 1).unwrap();
        for _ in 0..8 {
            client.recv().unwrap();
        }
        match client.recv().unwrap() {
            WireResponse::Error {
                request_id,
                code: ErrorCode::DeadlineExceeded,
                ..
            } => {
                assert_eq!(request_id, id);
                sheds += 1;
                break;
            }
            WireResponse::Answers { .. } => { /* queue drained too fast; retry */ }
            other => panic!("round {round}: unexpected reply {other:?}"),
        }
    }
    assert!(
        sheds > 0,
        "a 1ms deadline behind ~10ms of queued joins must shed"
    );
    let stats = service.lifetime_stats();
    assert!(stats.shed_deadline >= 1, "shed is counted, not executed");
    server.shutdown();
}

/// Hammering a tiny queue from the wire: overloaded requests come back
/// `RetryAfter` *quickly* (no unbounded waits), and accepted ones all
/// complete.
#[test]
fn queue_saturation_sheds_with_retry_after() {
    let service = test_service(1, 1);
    let server =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SpecQpClient::connect(server.local_addr()).unwrap();

    let t0 = Instant::now();
    let mut accepted = 0u32;
    let mut shed = 0u32;
    for _ in 0..60 {
        client.send(SINGERS, ExecMode::SpecQp, 10, 0, 1).unwrap();
    }
    for _ in 0..60 {
        match client.recv().unwrap() {
            WireResponse::Answers { .. } => accepted += 1,
            WireResponse::Error {
                code: ErrorCode::RetryAfter,
                retry_after_ms,
                ..
            } => {
                assert!(retry_after_ms >= 1);
                shed += 1;
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    let elapsed = t0.elapsed();
    assert!(accepted >= 1, "some requests execute");
    assert!(shed >= 1, "a 1-deep queue under a 60-burst must shed");
    // Shedding is the point: the burst must resolve promptly instead of
    // queueing unboundedly behind a single worker.
    assert!(
        elapsed < Duration::from_secs(30),
        "no unbounded waits: {elapsed:?}"
    );
    let stats = service.lifetime_stats();
    assert_eq!(stats.submitted, u64::from(accepted));
    assert!(stats.rejected_queue_full >= u64::from(shed));
    server.shutdown();
}

/// Several concurrent connections share one service; every connection gets
/// its own in-order responses and the lifetime stats add up.
#[test]
fn concurrent_connections_share_the_service() {
    let service = test_service(3, 64);
    let server =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = SpecQpClient::connect(addr).unwrap();
                let mut got = 0;
                for _ in 0..25 {
                    match client
                        .roundtrip(SINGERS, ExecMode::SpecQp, 5, 0, c)
                        .unwrap()
                    {
                        WireResponse::Answers { answers, .. } => {
                            assert_eq!(answers.len(), 5);
                            got += 1;
                        }
                        WireResponse::Error { code, .. } => {
                            panic!("closed-loop client {c} rejected: {code:?}")
                        }
                        other => panic!("unexpected reply: {other:?}"),
                    }
                }
                got
            })
        })
        .collect();
    let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 100);
    let stats = server.stats();
    assert_eq!(stats.service.completed, 100);
    assert!(stats.connections >= 4);
    server.shutdown();
}

/// Live writes over the wire: `WRITE` commits a new epoch synchronously,
/// `WRITE_OK` carries the epoch value, later queries on the same connection
/// see the committed (and masked) triples, and a read-only server rejects
/// writes with a typed `Protocol` error instead of dropping the connection.
#[test]
fn wire_writes_commit_and_read_only_rejects() {
    // A service over an immutable graph refuses writes but keeps serving.
    let service = test_service(2, 8);
    let server =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SpecQpClient::connect(server.local_addr()).unwrap();
    client
        .send_writes(
            vec![WireWriteOp::Assert {
                s: "nope".into(),
                p: "rdf:type".into(),
                o: "singer".into(),
                score: 1.0,
            }],
            1,
        )
        .unwrap();
    match client.recv().unwrap() {
        WireResponse::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::Protocol);
            assert!(message.contains("read-only"), "names the cause: {message}");
        }
        other => panic!("expected read-only rejection, got {other:?}"),
    }
    expect_answers(
        client
            .roundtrip(SINGERS, ExecMode::SpecQp, 2, 0, 1)
            .unwrap(),
    );
    server.shutdown();

    // A live service commits the batch atomically under one epoch.
    let mut b = KnowledgeGraphBuilder::new();
    b.add("shakira", "rdf:type", "singer", 100.0);
    let live = Arc::new(LiveGraph::new(b.build()));
    let service = Arc::new(QueryService::live(
        Arc::clone(&live),
        Arc::new(RelaxationRegistry::new()),
        ServiceConfig::with_threads(2),
    ));
    let server =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SpecQpClient::connect(server.local_addr()).unwrap();

    let before = expect_answers(
        client
            .roundtrip(SINGERS, ExecMode::SpecQp, 10, 0, 1)
            .unwrap(),
    );
    assert_eq!(before.len(), 1);
    assert_eq!(before[0].bindings[0].1, "shakira");

    let epoch = client
        .apply_writes(
            vec![
                WireWriteOp::Assert {
                    s: "beyonce".into(),
                    p: "rdf:type".into(),
                    o: "singer".into(),
                    score: 120.0,
                },
                WireWriteOp::Retract {
                    s: "shakira".into(),
                    p: "rdf:type".into(),
                    o: "singer".into(),
                },
            ],
            1,
        )
        .unwrap();
    assert!(epoch >= 1, "commit bumps the epoch");
    assert_eq!(
        epoch,
        live.epoch().value(),
        "WRITE_OK carries the new epoch"
    );

    // Queries admitted after WRITE_OK pin the committed version: the new
    // triple is visible, the retracted one is masked.
    let after = expect_answers(
        client
            .roundtrip(SINGERS, ExecMode::SpecQp, 10, 0, 1)
            .unwrap(),
    );
    assert_eq!(after.len(), 1);
    assert_eq!(after[0].bindings[0].1, "beyonce");
    server.shutdown();
}

/// Shutdown closes the listener and unblocks connected clients instead of
/// hanging them.
#[test]
fn shutdown_refuses_new_connections_and_unblocks_clients() {
    let service = test_service(2, 8);
    let server = Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = SpecQpClient::connect(addr).unwrap();
    expect_answers(
        client
            .roundtrip(SINGERS, ExecMode::SpecQp, 2, 0, 1)
            .unwrap(),
    );

    server.shutdown();
    // A blocked reader on an existing connection is released.
    assert!(client.recv().is_err(), "shutdown unblocks pending reads");
    // New connections are refused once the acceptor is gone (a races-free
    // guarantee needs a few attempts on loopback).
    let mut served_after_shutdown = false;
    for _ in 0..5 {
        if let Ok(mut c) = SpecQpClient::connect(addr) {
            if c.roundtrip(SINGERS, ExecMode::SpecQp, 2, 0, 1).is_ok() {
                served_after_shutdown = true;
            }
        }
    }
    assert!(!served_after_shutdown, "no queries served after shutdown");
    // Idempotent.
    server.shutdown();
}
