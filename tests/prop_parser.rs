//! Property tests of the SPARQL-subset parser: display→parse round-trips
//! and structural invariants on arbitrary generated queries.

use proptest::prelude::*;
use sparql::{parse_query, QueryBuilder, Term, TriplePattern, Var};
use specqp_common::Dictionary;

/// Renames variables in first-occurrence order so structurally identical
/// queries compare equal regardless of internal variable numbering.
fn canonicalize(patterns: &[TriplePattern]) -> Vec<TriplePattern> {
    let mut map: Vec<(Var, Var)> = Vec::new();
    let rename = |t: Term, map: &mut Vec<(Var, Var)>| -> Term {
        match t {
            Term::Const(c) => Term::Const(c),
            Term::Var(v) => {
                if let Some(&(_, to)) = map.iter().find(|(from, _)| *from == v) {
                    Term::Var(to)
                } else {
                    let to = Var(map.len() as u32);
                    map.push((v, to));
                    Term::Var(to)
                }
            }
        }
    };
    patterns
        .iter()
        .map(|p| TriplePattern {
            s: rename(p.s, &mut map),
            p: rename(p.p, &mut map),
            o: rename(p.o, &mut map),
        })
        .collect()
}

/// Strategy: a dictionary plus a random star/path query over it.
fn query_source() -> impl Strategy<Value = (Vec<String>, Vec<(u8, u8, u8)>)> {
    (
        prop::collection::vec("[a-z][a-z0-9_:#]{0,8}", 3..12),
        prop::collection::vec((0u8..4, 0u8..12, 0u8..12), 1..5),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any builder-produced query renders to text that reparses to the same
    /// structure.
    #[test]
    fn display_parse_roundtrip((names, pats) in query_source()) {
        let mut dict = Dictionary::new();
        let ids: Vec<_> = names.iter().map(|n| dict.intern(n)).collect();

        let mut qb = QueryBuilder::new();
        let subject = qb.var("x");
        for (v, p, o) in &pats {
            let p = ids[(*p as usize) % ids.len()];
            let o = ids[(*o as usize) % ids.len()];
            match v % 3 {
                0 => { qb.pattern(subject, p, o); }
                1 => { let y = qb.var("y"); qb.pattern(subject, p, y); }
                _ => { let z = qb.var("z"); qb.pattern(z, p, o); }
            };
        }
        qb.project(subject);
        let q = match qb.build() {
            Ok(q) => q,
            Err(_) => return Ok(()), // e.g. projection var unused — fine
        };

        let text = q.display(&dict).to_string();
        let q2 = parse_query(&text, &dict).expect("rendered query must reparse");
        prop_assert_eq!(canonicalize(q.patterns()), canonicalize(q2.patterns()));
        prop_assert_eq!(q.projection().len(), q2.projection().len());
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_garbage(input in ".{0,200}") {
        let dict = Dictionary::new();
        let _ = parse_query(&input, &dict);
    }

    /// Whitespace and dot placement don't change the parse.
    #[test]
    fn whitespace_insensitive(extra_ws in "[ \t\n]{0,6}") {
        let mut dict = Dictionary::new();
        dict.intern("p");
        dict.intern("o");
        let compact = parse_query("SELECT ?a WHERE { ?a <p> <o> }", &dict).unwrap();
        let spaced = parse_query(
            &format!("SELECT{extra_ws} ?a{extra_ws} WHERE {extra_ws}{{ ?a{extra_ws} <p> <o> {extra_ws}}}"),
            &dict,
        )
        .unwrap();
        prop_assert_eq!(compact.patterns(), spaced.patterns());
    }
}

/// Constants with every supported quoting style resolve identically.
#[test]
fn quoting_styles_equivalent() {
    let mut dict = Dictionary::new();
    dict.intern("rdf:type");
    dict.intern("singer");
    let a = parse_query("SELECT ?s WHERE { ?s 'rdf:type' <singer> }", &dict).unwrap();
    let b = parse_query("SELECT ?s WHERE { ?s \"rdf:type\" singer }", &dict).unwrap();
    let c = parse_query("SELECT ?s WHERE { ?s <rdf:type> 'singer' }", &dict).unwrap();
    assert_eq!(a.patterns(), b.patterns());
    assert_eq!(a.patterns(), c.patterns());
    assert!(matches!(a.patterns()[0].p, Term::Const(_)));
}
