//! Property-based tests of the statistics layer: histograms, convolution,
//! order statistics.

use proptest::prelude::*;
use specqp_stats::{
    expected_score_at_rank, refit_two_bucket, Distribution, PatternStats, PiecewiseConstantPdf,
    TwoBucketHistogram,
};

/// Strategy: a normalized descending score list (head = 1.0).
fn score_list() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0001f64..1.0, 1..200).prop_map(|mut v| {
        v.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let max = v[0];
        v.iter_mut().for_each(|x| *x /= max);
        v
    })
}

/// Strategy: a valid two-bucket histogram.
fn histogram() -> impl Strategy<Value = TwoBucketHistogram> {
    (0.01f64..0.99, 0.05f64..0.95, 0.5f64..4.0).prop_map(|(sigma_frac, head_mass, domain)| {
        TwoBucketHistogram::new(domain, sigma_frac * domain, head_mass)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pattern statistics reproduce the paper's invariants: S_r ≥ 0.8·S_m,
    /// σ_r ∈ (0, 1], S_m ≥ S_r.
    #[test]
    fn pattern_stats_invariants(scores in score_list()) {
        let st = PatternStats::from_sorted_scores(&scores).unwrap();
        prop_assert_eq!(st.m as usize, scores.len());
        prop_assert!(st.s_m >= st.s_r - 1e-9);
        prop_assert!(st.s_r >= 0.8 * st.s_m - 1e-9, "S_r {} < 0.8·S_m {}", st.s_r, st.s_m);
        prop_assert!(st.sigma_r > 0.0 && st.sigma_r <= 1.0);
    }

    /// cdf is monotone, quantile inverts it, mass is 1.
    #[test]
    fn histogram_cdf_quantile_duality(h in histogram(), p in 0.0f64..1.0) {
        prop_assert!((h.mass() - 1.0).abs() < 1e-9);
        let x = h.quantile(p);
        prop_assert!(x >= 0.0 && x <= h.domain_max() + 1e-12);
        prop_assert!((h.cdf(x) - p).abs() < 1e-6, "p={p} x={x} cdf={}", h.cdf(x));
        // Monotonicity on a small grid.
        let mut last = -1e-12;
        for i in 0..=20 {
            let c = h.cdf(h.domain_max() * i as f64 / 20.0);
            prop_assert!(c + 1e-12 >= last);
            last = c;
        }
    }

    /// Convolution preserves mass and adds means; refit preserves domain and
    /// mass and keeps the mean in the convex hull of the support.
    #[test]
    fn convolution_and_refit_preserve_structure(a in histogram(), b in histogram()) {
        let pa = a.to_piecewise_constant();
        let pb = b.to_piecewise_constant();
        let conv = pa.convolve(&pb);
        prop_assert!((conv.mass() - 1.0).abs() < 1e-6, "mass {}", conv.mass());
        prop_assert!((conv.mean() - (pa.mean() + pb.mean())).abs() < 1e-6);
        prop_assert!((conv.domain_max() - (pa.domain_max() + pb.domain_max())).abs() < 1e-9);

        let refit = refit_two_bucket(&conv);
        prop_assert!((refit.domain_max() - conv.domain_max()).abs() < 1e-9);
        prop_assert!((refit.mass() - 1.0).abs() < 1e-9);
        prop_assert!(refit.mean() > 0.0 && refit.mean() < refit.domain_max());
        // The refit boundary sits at the 20% score-mass point.
        let tail = conv.partial_score_mass(0.0, refit.sigma());
        let total = conv.score_mass();
        prop_assert!((tail / total - 0.2).abs() < 1e-3, "tail fraction {}", tail / total);
    }

    /// Scaling a histogram by w scales quantiles by w.
    #[test]
    fn scaling_commutes_with_quantiles(h in histogram(), w in 0.05f64..1.0, p in 0.0f64..1.0) {
        let s = h.scale(w);
        prop_assert!((s.quantile(p) - w * h.quantile(p)).abs() < 1e-9);
    }

    /// Order statistics are monotone in rank and in n, and bounded by the
    /// domain.
    #[test]
    fn order_statistics_monotone(h in histogram(), n in 1.0f64..10_000.0) {
        let top = expected_score_at_rank(&h, n, 1);
        prop_assert!(top.is_some());
        let top = top.unwrap();
        prop_assert!(top <= h.domain_max() + 1e-12);
        let max_rank = (n as usize).max(1);
        let mid_rank = (max_rank / 2).max(1);
        if let (Some(mid), Some(last)) = (
            expected_score_at_rank(&h, n, mid_rank),
            expected_score_at_rank(&h, n, max_rank),
        ) {
            prop_assert!(top + 1e-12 >= mid);
            prop_assert!(mid + 1e-12 >= last);
        }
        prop_assert!(expected_score_at_rank(&h, n, max_rank + 1).is_none());
    }

    /// Projections of piecewise-linear results preserve bucket mass.
    #[test]
    fn projection_preserves_mass(a in histogram(), b in histogram(), buckets in 1usize..64) {
        let conv = a.to_piecewise_constant().convolve(&b.to_piecewise_constant());
        let pc = conv.to_piecewise_constant(buckets);
        prop_assert!((pc.mass() - conv.mass()).abs() < 1e-6);
        prop_assert!((pc.domain_max() - conv.domain_max()).abs() < 1e-9);
    }

    /// Histogram built from stats matches the paper's closed-form heights.
    #[test]
    fn stats_histogram_heights(scores in score_list()) {
        let st = PatternStats::from_sorted_scores(&scores).unwrap();
        if st.s_m > 0.0 && st.sigma_r < 1.0 - 1e-9 && st.sigma_r > 1e-9 {
            let h = st.histogram();
            let tail_expected = (st.s_m - st.s_r) / st.s_m / st.sigma_r;
            let head_expected = st.s_r / st.s_m / (1.0 - st.sigma_r);
            prop_assert!((h.tail_height() - tail_expected).abs() < 1e-6
                || (st.s_r / st.s_m) > 1.0 - 1e-9);
            prop_assert!((h.head_height() - head_expected).abs() / head_expected < 1e-6
                || (st.s_r / st.s_m) > 1.0 - 1e-9);
        }
    }
}

/// Convolving k uniform distributions approaches a bell shape: sanity check
/// that iterated convolution + projection stays numerically stable.
#[test]
fn iterated_convolution_stable() {
    let u = PiecewiseConstantPdf::new(vec![0.0, 1.0], vec![1.0]);
    let mut acc = u.clone();
    for _ in 0..6 {
        acc = acc.convolve(&u).to_piecewise_constant(64);
        assert!((acc.mass() - 1.0).abs() < 1e-6);
    }
    assert!((acc.domain_max() - 7.0).abs() < 1e-9);
    assert!((acc.mean() - 3.5).abs() < 0.05);
}
