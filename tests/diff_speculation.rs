//! Differential harness locking in the speculation lifecycle's safety net:
//! with fallback **forced to the final stage**
//! ([`SpeculationPolicy::ForceFinal`]), `run_specqp` must return exactly
//! what `run_trinit` returns — same answers, same order, same scores
//! (bitwise, not approx) — across XKG and Twitter, both executors, block
//! sizes {1, 64, 4096}.
//!
//! This is the recovery path's end-to-end proof: the forced verdict drives
//! the plan → execute → verify → escalate → re-execute machinery on every
//! query, and the re-executed all-relaxed stage must be indistinguishable
//! from the TriniT baseline it claims to guarantee. A second property pins
//! the budgeted policy: `Fallback { max_stages: 1 }` either verifies clean
//! (answers stand) or takes its one permitted stage straight to the safety
//! net (answers are TriniT's).
//!
//! Queries are assembled from the generators' own workload patterns, the
//! same construction as tests/diff_exec.rs.

use datagen::{Dataset, TwitterConfig, TwitterGenerator, XkgConfig, XkgGenerator};
use operators::ExecutionMode;
use proptest::prelude::*;
use sparql::{Query, QueryBuilder, Term};
use specqp::{Engine, EngineConfig, QueryPlan, SpeculationPolicy};
use specqp_common::TermId;
use std::sync::OnceLock;

const BLOCK_SIZES: [usize; 3] = [1, 64, 4096];

/// One reusable star-query building block, extracted from a workload query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PoolPattern {
    /// `?x <p> <o>` — a fully qualified (type-like) pattern.
    Bound { p: TermId, o: TermId },
    /// `?x <p> ?y` — a relational pattern with a fresh object variable.
    Open { p: TermId },
}

struct World {
    ds: Dataset,
    pool: Vec<PoolPattern>,
}

fn build_world(ds: Dataset) -> World {
    let mut pool: Vec<PoolPattern> = Vec::new();
    for q in &ds.workload.queries {
        for pat in q.patterns() {
            let entry = match (pat.p, pat.o) {
                (Term::Const(p), Term::Const(o)) => PoolPattern::Bound { p, o },
                (Term::Const(p), Term::Var(_)) => PoolPattern::Open { p },
                _ => continue,
            };
            if !pool.contains(&entry) {
                pool.push(entry);
            }
        }
    }
    assert!(pool.len() >= 8, "workload must yield a varied pattern pool");
    World { ds, pool }
}

fn xkg() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| build_world(XkgGenerator::new(XkgConfig::small(0x5eed001)).generate()))
}

fn twitter() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        build_world(TwitterGenerator::new(TwitterConfig::small(0x71177e4)).generate())
    })
}

/// Builds a star query over `?x` from pool picks (duplicates dropped).
fn build_query(world: &World, picks: &[u16]) -> Option<Query> {
    let mut chosen: Vec<PoolPattern> = Vec::new();
    for &pick in picks {
        let entry = world.pool[pick as usize % world.pool.len()];
        if !chosen.contains(&entry) {
            chosen.push(entry);
        }
    }
    if chosen.is_empty() {
        return None;
    }
    let mut qb = QueryBuilder::new();
    let x = qb.var("x");
    for (i, entry) in chosen.iter().enumerate() {
        match *entry {
            PoolPattern::Bound { p, o } => {
                qb.pattern(x, p, o);
            }
            PoolPattern::Open { p } => {
                let y = qb.var(&format!("y{i}"));
                qb.pattern(x, p, y);
            }
        }
    }
    qb.project(x);
    qb.build().ok()
}

/// Runs the forced-final and budgeted-fallback properties for one query
/// under one executor configuration.
fn check_one(
    world: &World,
    q: &Query,
    k: usize,
    execution: ExecutionMode,
) -> Result<(), TestCaseError> {
    let engine = |policy: SpeculationPolicy| {
        Engine::with_config(
            &world.ds.graph,
            &world.ds.registry,
            EngineConfig::default()
                .with_execution(execution)
                .with_speculation(policy),
        )
    };

    // Property 1: forced-final fallback ≡ TriniT, byte for byte.
    let forced_engine = engine(SpeculationPolicy::ForceFinal);
    let trinit = forced_engine.run_trinit(q, k);
    let forced = forced_engine.run_specqp(q, k);
    prop_assert_eq!(
        &forced.answers,
        &trinit.answers,
        "forced final ≠ trinit ({:?}, k {})",
        execution,
        k
    );
    prop_assert_eq!(&forced.plan, &QueryPlan::all_relaxed(q.len()));
    prop_assert_eq!(forced.report.fallback_stages, 1, "exactly one forced stage");

    // Property 2: a one-stage budget either verifies clean or lands on the
    // safety net — mis-speculated runs must return TriniT's answers.
    let budgeted = engine(SpeculationPolicy::Fallback { max_stages: 1 });
    let out = budgeted.run_specqp(q, k);
    if out.report.fallback_stages > 0 {
        prop_assert_eq!(
            &out.answers,
            &trinit.answers,
            "one-stage fallback must recover to trinit ({:?}, k {})",
            execution,
            k
        );
        prop_assert!(out.report.mis_speculated);
        prop_assert!(out.report.wasted_answers > 0 || out.report.answers_created == 0);
    }
    Ok(())
}

fn check_differential(world: &World, picks: &[u16], k: usize) -> Result<(), TestCaseError> {
    let Some(q) = build_query(world, picks) else {
        return Ok(());
    };
    check_one(world, &q, k, ExecutionMode::RowAtATime)?;
    for size in BLOCK_SIZES {
        check_one(world, &q, k, ExecutionMode::Block(size))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn xkg_forced_final_fallback_equals_trinit(
        picks in proptest::collection::vec(any::<u16>(), 1..=4),
        k in 1usize..=25,
    ) {
        check_differential(xkg(), &picks, k)?;
    }

    #[test]
    fn twitter_forced_final_fallback_equals_trinit(
        picks in proptest::collection::vec(any::<u16>(), 1..=4),
        k in 1usize..=25,
    ) {
        check_differential(twitter(), &picks, k)?;
    }
}

/// The exact benchmark workloads (not random subsets) must also recover to
/// TriniT under the forced final stage, on both executors.
#[test]
fn workload_queries_forced_final_equals_trinit() {
    for world in [xkg(), twitter()] {
        for execution in [
            ExecutionMode::RowAtATime,
            ExecutionMode::Block(operators::DEFAULT_BLOCK_SIZE),
        ] {
            let engine = Engine::with_config(
                &world.ds.graph,
                &world.ds.registry,
                EngineConfig::default()
                    .with_execution(execution)
                    .with_speculation(SpeculationPolicy::ForceFinal),
            );
            for q in &world.ds.workload.queries {
                let forced = engine.run_specqp(q, 10);
                let trinit = engine.run_trinit(q, 10);
                assert_eq!(forced.answers, trinit.answers);
                assert_eq!(forced.report.fallback_stages, 1);
            }
        }
    }
}

/// The learned-mode lap (`SPECQP_LEARNED=1`, pinned here via
/// `with_learned(true)` so the test holds regardless of environment):
/// learned predictions must not dent any lifecycle guarantee, across
/// row / block / morsel executors on XKG + Twitter.
///
/// * **Cold fallback identity**: with empty models every confidence gate is
///   closed, so a learned engine plans and answers byte-identically to a
///   histogram engine — the acceptance criterion's "histogram fallback path
///   proven byte-identical when confidence is low".
/// * **ForceFinal inertness**: the ground-truth oracle records nothing and
///   still reproduces TriniT byte for byte with learning on.
/// * **Taught recovery guarantee**: after enough runs for the gates to
///   open (and the generation to bump), every run that takes a fallback
///   stage must still land on TriniT's answers exactly — learned
///   predictions change *what gets speculated*, never what recovery
///   returns.
#[test]
fn workload_queries_learned_lap_is_byte_identical_to_ground_truth() {
    for world in [xkg(), twitter()] {
        for (execution, parallelism) in [
            (ExecutionMode::RowAtATime, 1),
            (ExecutionMode::Block(operators::DEFAULT_BLOCK_SIZE), 1),
            (ExecutionMode::Block(operators::DEFAULT_BLOCK_SIZE), 4),
        ] {
            let config = |policy: SpeculationPolicy, learned: bool| {
                EngineConfig::default()
                    .with_execution(execution)
                    .with_parallelism(parallelism)
                    .with_speculation(policy)
                    .with_learned(learned)
            };
            let mk = |policy, learned| {
                Engine::with_config(&world.ds.graph, &world.ds.registry, config(policy, learned))
            };

            // Cold identity: empty models ⇒ the histogram path, byte for
            // byte (plans included).
            let fb = SpeculationPolicy::Fallback { max_stages: 3 };
            let cold_learned = mk(fb, true);
            let cold_hist = mk(fb, false);
            for q in &world.ds.workload.queries {
                let a = cold_learned.run_specqp(q, 10);
                let b = cold_hist.run_specqp(q, 10);
                assert_eq!(a.answers, b.answers, "cold learned ≠ histogram");
                assert_eq!(a.plan, b.plan, "cold learned plan ≠ histogram plan");
                // Teaching happened above: the learned engine recorded one
                // observation per run while the histogram engine did not.
            }
            assert_eq!(
                cold_learned.catalog().learned_counters().observations,
                world.ds.workload.queries.len() as u64
            );
            assert_eq!(cold_hist.catalog().learned_counters().observations, 0);

            // ForceFinal inertness with learning on.
            let forced = mk(SpeculationPolicy::ForceFinal, true);
            for q in &world.ds.workload.queries {
                let out = forced.run_specqp(q, 10);
                let trinit = forced.run_trinit(q, 10);
                assert_eq!(out.answers, trinit.answers, "learned forced ≠ trinit");
            }
            assert_eq!(forced.catalog().learned_counters().observations, 0);

            // Taught recovery guarantee: keep teaching the cold_learned
            // engine until its models converge, then check every recovered
            // run against the TriniT ground truth.
            for _ in 0..3 {
                for q in &world.ds.workload.queries {
                    let _ = cold_learned.run_specqp(q, 10);
                }
            }
            for q in &world.ds.workload.queries {
                let out = cold_learned.run_specqp(q, 10);
                if out.report.fallback_stages > 0 {
                    let trinit = cold_learned.run_trinit(q, 10);
                    assert_eq!(
                        out.answers, trinit.answers,
                        "taught fallback must recover to trinit"
                    );
                }
            }
        }
    }
}
