//! Golden-trace regression tests: byte-stable execution traces on the
//! seeded XKG workload, one golden file per (mode × executor).
//!
//! The trace serializes everything deterministic about a run — the chosen
//! plan, the `RunReport` work counters (answer objects, sorted/random
//! accesses, heap pushes; timings are deliberately excluded) and the full
//! top-k with bit-exact scores — so planner or executor drift is caught
//! even when the answers still agree. Row and block executors keep separate
//! goldens because their access patterns legitimately differ (block pulls
//! whole batches), while their answer lines must match.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! SPECQP_UPDATE_GOLDEN=1 cargo test --test golden_trace
//! git diff tests/golden/   # review the drift before committing it
//! ```

use datagen::{Dataset, XkgConfig, XkgGenerator};
use operators::ExecutionMode;
use specqp::{Engine, EngineConfig, QueryOutcome};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::OnceLock;

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| XkgGenerator::new(XkgConfig::small(0x5eed001)).generate())
}

/// Serializes one outcome as stable text. Scores carry their exact bit
/// pattern (hex) next to a human-readable rendering; timings are excluded.
fn trace_outcome(out: &mut String, qi: usize, o: &QueryOutcome) {
    let r = &o.report;
    let _ = writeln!(
        out,
        "query {qi} plan_singletons={:?} answers_created={} sorted={} random={} heap={}",
        o.plan.singletons(),
        r.answers_created,
        r.sorted_accesses,
        r.random_accesses,
        r.heap_pushes
    );
    for (i, a) in o.answers.iter().enumerate() {
        let mut binding = String::new();
        for (v, t) in a.binding.iter() {
            let _ = write!(binding, " ?{}={}", v.0, t.0);
        }
        let _ = writeln!(
            out,
            "  {i}: score={:.6} bits={:016x}{binding}",
            a.score.value(),
            a.score.value().to_bits()
        );
    }
}

fn trace_for(mode: &str, execution: ExecutionMode) -> String {
    let ds = dataset();
    // Speculation pinned Off: the goldens pin the *baseline* planner and
    // executors. The lifecycle's fallback/feedback behaviour evolves plans
    // across runs by design and has its own differential suite
    // (tests/diff_speculation.rs). Parallelism pinned to 1: morsel workers
    // repeat non-target scans, so their work counters legitimately exceed
    // the sequential trace even though answers stay bit-identical (that
    // equality is asserted by tests/diff_exec.rs, not here).
    let engine = Engine::with_config(
        &ds.graph,
        &ds.registry,
        EngineConfig::default()
            .with_execution(execution)
            .with_speculation(specqp::SpeculationPolicy::Off)
            .with_parallelism(1),
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# golden trace: dataset=xkg-small seed=0x5eed001 mode={mode} k=10 (timings excluded)"
    );
    for (qi, q) in ds.workload.queries.iter().enumerate() {
        let outcome = match mode {
            "specqp" => engine.run_specqp(q, 10),
            "trinit" => engine.run_trinit(q, 10),
            "naive" => engine.run_naive(q, 10),
            other => unreachable!("unknown mode {other}"),
        };
        trace_outcome(&mut out, qi, &outcome);
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check_golden(name: &str, mode: &str, execution: ExecutionMode) {
    let got = trace_for(mode, execution);
    let path = golden_path(name);
    if std::env::var("SPECQP_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {path:?} ({e}); run with SPECQP_UPDATE_GOLDEN=1 to create it")
    });
    if got != want {
        let diff_at = got
            .lines()
            .zip(want.lines())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        panic!(
            "golden trace {name} drifted (first differing line {}):\n  expected: {}\n  actual:   {}\n\
             re-run with SPECQP_UPDATE_GOLDEN=1 and review `git diff tests/golden/` \
             if the change is intentional",
            diff_at + 1,
            want.lines().nth(diff_at).unwrap_or("<eof>"),
            got.lines().nth(diff_at).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn golden_specqp_row() {
    check_golden("specqp_row", "specqp", ExecutionMode::RowAtATime);
}

#[test]
fn golden_specqp_block() {
    check_golden(
        "specqp_block",
        "specqp",
        ExecutionMode::Block(operators::DEFAULT_BLOCK_SIZE),
    );
}

#[test]
fn golden_trinit_row() {
    check_golden("trinit_row", "trinit", ExecutionMode::RowAtATime);
}

#[test]
fn golden_trinit_block() {
    check_golden(
        "trinit_block",
        "trinit",
        ExecutionMode::Block(operators::DEFAULT_BLOCK_SIZE),
    );
}

#[test]
fn golden_naive() {
    check_golden("naive", "naive", ExecutionMode::RowAtATime);
}

/// Cross-file invariant: the row and block goldens must carry identical
/// *answer* lines (only the work counters may differ) — drift here means an
/// executor divergence slipped into a committed golden.
#[test]
fn goldens_agree_on_answers_across_executors() {
    for (a, b) in [
        ("specqp_row", "specqp_block"),
        ("trinit_row", "trinit_block"),
    ] {
        let read = |n: &str| {
            std::fs::read_to_string(golden_path(n))
                .unwrap_or_else(|e| panic!("missing golden {n} ({e})"))
        };
        let answers = |s: String| -> Vec<String> {
            s.lines()
                .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(answers(read(a)), answers(read(b)), "{a} vs {b}");
    }
}
