//! Property-based tests of the planner and end-to-end execution on random
//! graphs: the plan is always a valid partition, and whatever Spec-QP
//! returns is a correctly scored subset of the full relaxed answer space.

use kgstore::{KnowledgeGraph, KnowledgeGraphBuilder};
use proptest::prelude::*;
use relax::{Position, RelaxationRegistry, TermRule};
use sparql::{Query, QueryBuilder};
use specqp::{precision_at_k, Engine};
use specqp_common::TermId;

/// A random micro-KG: `n_entities` entities spread over `n_classes`
/// classes (ids interned as strings), plus relaxation rules between random
/// class pairs.
#[derive(Debug)]
struct MicroWorld {
    graph: KnowledgeGraph,
    registry: RelaxationRegistry,
    classes: Vec<TermId>,
    type_pred: TermId,
}

fn micro_world(
    assignments: Vec<(u8, u8, u16)>, // (entity, class, score)
    rules: Vec<(u8, u8, u8)>,        // (from class, to class, weight%)
    n_classes: u8,
) -> MicroWorld {
    let n_classes = n_classes.max(2);
    let mut b = KnowledgeGraphBuilder::new();
    let type_pred = b.intern("type");
    let classes: Vec<TermId> = (0..n_classes).map(|c| b.intern(&format!("c{c}"))).collect();
    for (e, c, score) in assignments {
        let class = classes[(c % n_classes) as usize];
        let ent = b.intern(&format!("e{e}"));
        b.add_ids(ent, type_pred, class, f64::from(score.max(1)).into());
    }
    let graph = b.build();
    let mut registry = RelaxationRegistry::new();
    for (from, to, w) in rules {
        let from = classes[(from % n_classes) as usize];
        let to = classes[(to % n_classes) as usize];
        if from != to {
            let w = f64::from(w.clamp(5, 99)) / 100.0;
            registry.add(TermRule::with_context(
                Position::Object,
                from,
                to,
                w,
                type_pred,
            ));
        }
    }
    MicroWorld {
        graph,
        registry,
        classes,
        type_pred,
    }
}

fn star_query(world: &MicroWorld, class_picks: &[u8]) -> Option<Query> {
    let mut qb = QueryBuilder::new();
    let x = qb.var("x");
    let mut used = Vec::new();
    for &c in class_picks {
        let class = world.classes[(c as usize) % world.classes.len()];
        if used.contains(&class) {
            continue;
        }
        used.push(class);
        qb.pattern(x, world.type_pred, class);
    }
    if used.is_empty() {
        return None;
    }
    qb.project(x);
    qb.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PLANGEN output is a valid partition; Spec-QP answers are a sorted,
    /// correctly-scored subset of the full relaxed space; forcing all
    /// relaxations reproduces TriniT exactly.
    #[test]
    fn planner_and_execution_invariants(
        assignments in prop::collection::vec((0u8..30, 0u8..6, 1u16..1000), 1..120),
        rules in prop::collection::vec((0u8..6, 0u8..6, 5u8..99), 0..12),
        class_picks in prop::collection::vec(0u8..6, 1..4),
        k in 1usize..15,
    ) {
        let world = micro_world(assignments, rules, 6);
        let Some(query) = star_query(&world, &class_picks) else {
            return Ok(());
        };
        let engine = Engine::new(&world.graph, &world.registry);

        let spec = engine.run_specqp(&query, k);
        prop_assert!(spec.plan.is_valid_partition());
        prop_assert_eq!(spec.plan.len(), query.len());
        prop_assert!(spec.answers.len() <= k);
        for w in spec.answers.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }

        // Full relaxed space (generous k) — every Spec-QP answer appears
        // with a score no smaller than Spec-QP's (plans only prune sources).
        let full = engine.run_naive(&query, 1_000_000);
        for a in &spec.answers {
            let hit = full.answers.iter().find(|t| t.binding == a.binding);
            prop_assert!(hit.is_some(), "unknown answer {:?}", a);
            prop_assert!(a.score <= hit.unwrap().score + specqp_common::Score::new(1e-9));
        }

        // TriniT (all relaxed) must agree with the naive executor.
        let trinit = engine.run_trinit(&query, k);
        let naive_topk = &full.answers[..k.min(full.answers.len())];
        prop_assert_eq!(trinit.answers.len(), naive_topk.len());
        for (a, b) in trinit.answers.iter().zip(naive_topk) {
            prop_assert!(a.score.approx_eq(b.score, 1e-9),
                "trinit {:?} vs naive {:?}", a, b);
        }

        // Precision is 1 whenever the planner relaxed everything.
        if spec.plan.relaxed_count() == query.len() {
            let p = precision_at_k(&spec.answers, &trinit.answers, k);
            prop_assert!((p - 1.0).abs() < 1e-9, "all-relaxed precision {p}");
        }
    }

    /// Plans never relax patterns that have no applicable rules.
    #[test]
    fn never_relaxes_ruleless_patterns(
        assignments in prop::collection::vec((0u8..20, 0u8..4, 1u16..500), 1..60),
        class_picks in prop::collection::vec(0u8..4, 1..4),
        k in 1usize..12,
    ) {
        let world = micro_world(assignments, vec![], 4);
        let Some(query) = star_query(&world, &class_picks) else {
            return Ok(());
        };
        let engine = Engine::new(&world.graph, &world.registry);
        let (plan, _) = engine.plan(&query, k);
        prop_assert_eq!(plan.relaxed_count(), 0);
    }
}
