//! The paper's introduction scenario at dataset scale: "Which singers also
//! write lyrics and play guitar and piano?" over a synthetic XKG-style
//! knowledge graph with a mined type-hierarchy relaxation registry.
//!
//! Demonstrates:
//! * generating a seeded XKG dataset,
//! * planning and explaining a multi-pattern query,
//! * the speedup and result quality of Spec-QP vs TriniT.
//!
//! ```text
//! cargo run --release --example music_discovery
//! ```

use datagen::{XkgConfig, XkgGenerator};
use specqp::{precision_at_k, required_relaxations, score_error, Engine};

fn main() {
    // A mid-sized seeded dataset (use XkgConfig::default() for full scale).
    let mut cfg = XkgConfig::small(0xCAFE);
    cfg.entities = 8_000;
    cfg.relational_triples = 24_000;
    cfg.queries = 6;
    let ds = XkgGenerator::new(cfg).generate();
    println!("{}", ds.summary());

    let engine = Engine::new(&ds.graph, &ds.registry);
    let k = 10;

    for (qid, query) in ds.workload.queries.iter().enumerate() {
        println!("\n=== query {qid} ===");
        println!("{}", query.display(ds.graph.dictionary()));

        engine.warm(query, k);
        let spec = engine.run_specqp(query, k);
        let trinit = engine.run_trinit(query, k);

        println!("{}", spec.plan.explain(query, ds.graph.dictionary()));
        let required = required_relaxations(&ds.graph, query, &ds.registry, &trinit.answers);
        println!("ground truth: patterns whose relaxations reach the top-{k}: {required:?}");

        let precision = precision_at_k(&spec.answers, &trinit.answers, k);
        let err = score_error(&spec.answers, &trinit.answers, k);
        println!(
            "TriniT : {:>9.3?} total, {:>8} answer objects",
            trinit.report.total_time(),
            trinit.report.answers_created
        );
        println!(
            "Spec-QP: {:>9.3?} total ({:?} planning), {:>8} answer objects",
            spec.report.total_time(),
            spec.report.planning,
            spec.report.answers_created
        );
        println!(
            "quality: precision {:.2}, score error {:.3}±{:.3} ({:.1}%)",
            precision, err.mean_abs, err.std_dev, err.mean_pct
        );
    }
}
