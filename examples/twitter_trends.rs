//! The paper's Twitter scenario: top-k tweets carrying a set of tags, with
//! co-occurrence-mined relaxations (`#intoyouvideo` → `video`, §4.2).
//!
//! Demonstrates:
//! * the `〈tweetID, hasTag, term〉` schema with retweet-count scores,
//! * mining relaxation weights with the paper's exact formula
//!   `w = #tweets(T₁∧T₂)/#tweets(T₁)`,
//! * how sparse original results force the planner to keep relaxations.
//!
//! ```text
//! cargo run --release --example twitter_trends
//! ```

use datagen::{TwitterConfig, TwitterGenerator};
use specqp::Engine;

fn main() {
    let mut cfg = TwitterConfig::small(0xFEED);
    cfg.tweets = 15_000;
    cfg.queries = 6;
    let ds = TwitterGenerator::new(cfg).generate();
    println!("{}", ds.summary());

    // Show a few mined rules for the first query's first tag.
    let q0 = &ds.workload.queries[0];
    let p0 = &q0.patterns()[0];
    println!("\nmined relaxations for {:?}:", p0.o);
    for r in ds.registry.relaxations_for(p0).into_iter().take(5) {
        let name = r
            .pattern
            .o
            .as_const()
            .map(|id| ds.graph.dictionary().name_or_unknown(id))
            .unwrap_or("?");
        println!("  → {name:<10} w = {:.3}", r.weight);
    }

    let engine = Engine::new(&ds.graph, &ds.registry);
    for k in [10usize, 20] {
        println!("\n==== k = {k} ====");
        let mut spec_ms = 0.0;
        let mut trinit_ms = 0.0;
        let mut spec_mem = 0u64;
        let mut trinit_mem = 0u64;
        for query in &ds.workload.queries {
            engine.warm(query, k);
            let spec = engine.run_specqp(query, k);
            let trinit = engine.run_trinit(query, k);
            spec_ms += spec.report.total_time().as_secs_f64() * 1e3;
            trinit_ms += trinit.report.total_time().as_secs_f64() * 1e3;
            spec_mem += spec.report.answers_created;
            trinit_mem += trinit.report.answers_created;
            println!(
                "  {} patterns, Spec-QP relaxed {:?}: {:.2} ms vs TriniT {:.2} ms",
                query.len(),
                spec.plan.singletons(),
                spec.report.total_time().as_secs_f64() * 1e3,
                trinit.report.total_time().as_secs_f64() * 1e3,
            );
        }
        println!(
            "workload totals: Spec-QP {spec_ms:.1} ms / {spec_mem} objects,  TriniT {trinit_ms:.1} ms / {trinit_mem} objects"
        );
    }
}
