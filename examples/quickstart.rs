//! Quickstart: build a tiny scored knowledge graph, add one relaxation
//! rule, and compare Spec-QP with the TriniT baseline.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kgstore::KnowledgeGraphBuilder;
use relax::{Position, RelaxationRegistry, TermRule};
use sparql::parse_query;
use specqp::Engine;

fn main() {
    // 1. A small music knowledge graph. Scores are popularity counts
    //    (the paper's "number of inlinks into the subject").
    let mut b = KnowledgeGraphBuilder::new();
    for (entity, class, score) in [
        ("shakira", "singer", 120.0),
        ("beyonce", "singer", 110.0),
        ("adele", "vocalist", 100.0),
        ("sia", "vocalist", 70.0),
        ("dylan", "writer", 90.0),
        ("shakira", "lyricist", 60.0),
        ("adele", "lyricist", 50.0),
        ("sia", "writer", 40.0),
        ("beyonce", "writer", 35.0),
    ] {
        b.add(entity, "rdf:type", class, score);
    }
    let kg = b.build();
    println!("graph: {} triples", kg.len());

    // 2. Relaxation rules mined offline (here: hand-written, Table 1 style).
    let d = kg.dictionary();
    let ty = d.lookup("rdf:type").unwrap();
    let mut rules = RelaxationRegistry::new();
    rules.add(TermRule::with_context(
        Position::Object,
        d.lookup("singer").unwrap(),
        d.lookup("vocalist").unwrap(),
        0.8,
        ty,
    ));
    rules.add(TermRule::with_context(
        Position::Object,
        d.lookup("lyricist").unwrap(),
        d.lookup("writer").unwrap(),
        0.7,
        ty,
    ));

    // 3. A triple-pattern query in the paper's SPARQL subset.
    let query = parse_query(
        "SELECT ?s WHERE {
            ?s 'rdf:type' <singer> .
            ?s 'rdf:type' <lyricist>
        }",
        kg.dictionary(),
    )
    .expect("valid query");
    println!("\nquery:\n{}\n", query.display(kg.dictionary()));

    // 4. Run both techniques for top-4.
    let engine = Engine::new(&kg, &rules);
    let k = 4;

    let trinit = engine.run_trinit(&query, k);
    println!("TriniT (all relaxations processed):");
    for a in &trinit.answers {
        println!(
            "  {}  score {:.3}",
            kg.dictionary()
                .name_or_unknown(a.binding.get(query.projection()[0]).unwrap()),
            a.score.value()
        );
    }
    println!(
        "  answer objects created: {}",
        trinit.report.answers_created
    );

    let spec = engine.run_specqp(&query, k);
    println!("\nSpec-QP:");
    println!("{}", spec.plan.explain(&query, kg.dictionary()));
    for a in &spec.answers {
        println!(
            "  {}  score {:.3}",
            kg.dictionary()
                .name_or_unknown(a.binding.get(query.projection()[0]).unwrap()),
            a.score.value()
        );
    }
    println!(
        "  answer objects created: {} (planning took {:?})",
        spec.report.answers_created, spec.report.planning
    );
}
