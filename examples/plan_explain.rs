//! EXPLAIN-style walkthrough of PLANGEN: prints, for one query, the
//! expected-score arithmetic behind every keep/prune decision (§3.1–3.2).
//!
//! ```text
//! cargo run --release --example plan_explain
//! ```

use datagen::{XkgConfig, XkgGenerator};
use specqp::Engine;
use specqp_stats::{ExactCardinality, ScoreEstimator, StatsCatalog};

fn main() {
    let ds = XkgGenerator::new(XkgConfig::small(0xBEEF)).generate();
    let query = &ds.workload.queries[1];
    let dict = ds.graph.dictionary();
    let k = 10;

    println!("{}", ds.summary());
    println!("\nquery:\n{}", query.display(dict));

    let catalog = StatsCatalog::new();
    let oracle = ExactCardinality::new();
    let estimator = ScoreEstimator::new(&catalog, &oracle);

    // Per-pattern statistics: the four stored values of §3.1.1.
    println!("\nper-pattern statistics (m, σ_r, S_r, S_m):");
    for (i, p) in query.patterns().iter().enumerate() {
        match catalog.stats(&ds.graph, p) {
            Some(st) => println!(
                "  q{}: m={:<6} σ_r={:.4} S_r={:.2} S_m={:.2}",
                i + 1,
                st.m,
                st.sigma_r,
                st.s_r,
                st.s_m
            ),
            None => println!("  q{}: no matches", i + 1),
        }
    }

    // The two quantities PLANGEN compares.
    let original: Vec<_> = query.patterns().iter().map(|p| (*p, 1.0)).collect();
    let e_orig = estimator.estimate(&ds.graph, &original);
    println!(
        "\noriginal query: n = {:.0}, E_Q(k={k}) = {:?}",
        e_orig.n,
        e_orig.expected_score_at_rank(k)
    );
    for (i, p) in query.patterns().iter().enumerate() {
        let Some(top) = ds.registry.top_relaxation_for(p) else {
            println!("q{}: no relaxations — stays in the join group", i + 1);
            continue;
        };
        let mut relaxed = original.clone();
        relaxed[i] = (top.pattern, top.weight);
        let e_rel = estimator.estimate(&ds.graph, &relaxed);
        println!(
            "q{}: top relaxation w={:.3} ⇒ E_Q'(1) = {:?} {} E_Q(k)",
            i + 1,
            top.weight,
            e_rel.expected_top_score(),
            match (e_rel.expected_top_score(), e_orig.expected_score_at_rank(k)) {
                (Some(a), Some(b)) if a > b => ">",
                (Some(_), None) => "> (original cannot fill k)",
                _ => "≤",
            }
        );
    }

    // And the plan the engine actually chooses + its execution.
    let engine = Engine::new(&ds.graph, &ds.registry);
    let out = engine.run_specqp(query, k);
    println!("\n{}", out.plan.explain(query, dict));
    println!("top-{k} answers:");
    for a in &out.answers {
        let x = query.projection()[0];
        println!(
            "  {:<12} {:.3}",
            dict.name_or_unknown(a.binding.get(x).unwrap()),
            a.score.value()
        );
    }
}
