//! # spec-qp — speculative query planning for top-k joins over knowledge graphs
//!
//! Umbrella crate re-exporting the whole workspace; see the
//! [README](https://github.com/spec-qp/spec-qp/blob/main/README.md) and the
//! individual crates:
//!
//! * [`specqp`] — the planner (PLANGEN), executors and engine façade,
//! * [`kgstore`] — the scored triple store,
//! * [`sparql`] — the query model and parser,
//! * [`operators`] — incremental merge and rank joins,
//! * [`stats`] — score-distribution statistics and the expected-score
//!   estimator,
//! * [`relax`] — weighted relaxation rules and miners,
//! * [`datagen`] — seeded synthetic XKG/Twitter datasets,
//! * [`service`] — the concurrent query service (`Arc`-shared engine,
//!   worker pool, plan-cache-backed batch driver),
//! * [`server`] — the TCP wire front-end (length-prefixed frames,
//!   per-client token-bucket quotas, load-shedding admission control).
//!
//! ```
//! use spec_qp::prelude::*;
//!
//! let mut b = KnowledgeGraphBuilder::new();
//! b.add("a", "type", "x", 2.0);
//! b.add("a", "type", "y", 1.0);
//! let kg = b.build();
//! let rules = RelaxationRegistry::new();
//! let engine = Engine::new(&kg, &rules);
//! let q = parse_query("SELECT ?s WHERE { ?s <type> <x> . ?s <type> <y> }", kg.dictionary()).unwrap();
//! assert_eq!(engine.run_specqp(&q, 5).answers.len(), 1);
//! ```

pub use datagen;
pub use kgstore;
pub use operators;
pub use relax;
pub use sparql;
pub use specqp;
pub use specqp_common as common;
pub use specqp_server as server;
pub use specqp_service as service;
pub use specqp_stats as stats;

/// The most common imports in one place.
pub mod prelude {
    pub use kgstore::{KnowledgeGraph, KnowledgeGraphBuilder, PatternKey};
    pub use operators::{ExecutionMode, PartialAnswer, PullStrategy};
    pub use relax::{
        CooccurrenceMiner, HierarchyMiner, Position, Relaxation, RelaxationRegistry, TermRule,
    };
    pub use sparql::{parse_query, Query, QueryBuilder, TriplePattern, Var};
    pub use specqp::{
        Engine, EngineConfig, PlanCache, QueryOutcome, QueryPlan, QueryShape, RunReport,
        SpeculationPolicy,
    };
    pub use specqp_common::{Dictionary, Score, TermId};
    pub use specqp_server::{Server, ServerConfig, SpecQpClient};
    pub use specqp_service::{
        ExecMode, QueryJob, QueryService, Request, ServiceConfig, ServiceError, Ticket,
    };
    pub use specqp_stats::{ExactCardinality, RefitMode, ScoreEstimator, StatsCatalog};
}
