//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! covering what this workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`, `bench_with_input`,
//! `finish`), [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this shim. It is a *timer*, not a statistics engine: each benchmark is
//! warmed up once, run `sample_size × ITERS_PER_SAMPLE` times, and the mean
//! per-iteration wall time is printed. Good enough to spot order-of-magnitude
//! regressions locally; CI only compiles benches (`cargo bench --no-run`).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus an optional
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean: Option<Duration>,
}

impl Bencher {
    /// Calls `routine` once to warm up, then `self.iters` timed times, and
    /// records the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.iters as u32);
    }
}

fn run_one(label: &str, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { iters, mean: None };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("{label:<50} {mean:>12.3?}/iter ({iters} iters)"),
        None => println!("{label:<50} (no Bencher::iter call)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size as u64, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size as u64, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point; one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into().id, 20, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); a timing shim has
            // no options, so arguments are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(5);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 6, "1 warmup + 5 timed iterations");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }
}
