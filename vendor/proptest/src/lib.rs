//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, covering what this
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, multiple
//!   `#[test]` functions, and `pattern in strategy` bindings),
//! * [`Strategy`] with `prop_map`, range strategies, tuple strategies,
//!   [`collection::vec`], [`any`], and regex-subset string strategies,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * a deterministic [`test_runner::TestRunner`] (fixed seed, so CI is
//!   reproducible; set `PROPTEST_SEED` to explore other sequences).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this shim. The big intentional simplification: **no shrinking** — a failing
//! case reports the generated input verbatim.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt::Debug;

    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        pub fn message(&self) -> &str {
            &self.0
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Mirror of `proptest::test_runner::Config` (aliased `ProptestConfig` in
    /// the prelude). Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic case runner: draws `config.cases` inputs from the
    /// strategy and fails fast (no shrinking) with the offending input.
    pub struct TestRunner {
        rng: StdRng,
        config: Config,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5eed_cafe_f00d_u64);
            TestRunner {
                rng: StdRng::seed_from_u64(seed),
                config,
            }
        }

        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: super::Strategy,
            S::Value: Debug,
            F: FnMut(S::Value) -> TestCaseResult,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                let described = format!("{value:?}");
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest case {case} failed: {e}\n(no shrinking) input: {described}"
                    ),
                    Err(panic) => {
                        eprintln!(
                            "proptest case {case} panicked\n(no shrinking) input: {described}"
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        }
    }
}

/// A generator of test-case inputs. Unlike real proptest there is no value
/// tree: `generate` yields a plain value and failures are not shrunk.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A B);
impl_tuple_strategy!(A B C);
impl_tuple_strategy!(A B C D);
impl_tuple_strategy!(A B C D E);
impl_tuple_strategy!(A B C D E F);

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Inclusive length bounds for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies (`"[a-z][a-z0-9_:#]{0,8}"` etc.)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct CharClass {
    /// Inclusive char ranges; a literal is a one-char range.
    ranges: Vec<(char, char)>,
}

impl CharClass {
    fn sample(&self, rng: &mut StdRng) -> char {
        let total: u32 = self
            .ranges
            .iter()
            .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
            .sum();
        let mut pick = rng.gen_range(0..total);
        for &(lo, hi) in &self.ranges {
            let span = hi as u32 - lo as u32 + 1;
            if pick < span {
                return char::from_u32(lo as u32 + pick).expect("valid char range");
            }
            pick -= span;
        }
        unreachable!("pick < total")
    }
}

#[derive(Debug, Clone)]
struct Atom {
    class: CharClass,
    min: usize,
    max: usize,
}

/// Parses the regex subset the workspace's string strategies use: literals,
/// escapes, `.`, `[...]` classes (with ranges), and `{m}` / `{m,n}` / `?` /
/// `*` / `+` quantifiers. Panics on anything else — string strategies are
/// authored in-tree, so a parse failure is a test-authoring bug.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    fn escaped(c: char) -> char {
        match c {
            't' => '\t',
            'n' => '\n',
            'r' => '\r',
            other => other,
        }
    }

    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let class = match c {
            // Real proptest's `.` draws from (nearly) any char except '\n'.
            // Tests like `".{0,200}"` rely on that to feed parsers control
            // characters and multi-byte Unicode, so the class mixes printable
            // ASCII with controls, Latin-1/extended, CJK and emoji slices —
            // wide enough to catch byte-indexed slicing bugs.
            '.' => CharClass {
                ranges: vec![
                    ('\u{0}', '\u{9}'),
                    ('\u{b}', '\u{1f}'),
                    (' ', '~'),
                    ('\u{7f}', '\u{2ff}'),
                    ('\u{4e00}', '\u{4eff}'),
                    ('\u{1f600}', '\u{1f64f}'),
                ],
            },
            '\\' => {
                let e = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in string strategy {pattern:?}"));
                let lit = escaped(e);
                CharClass {
                    ranges: vec![(lit, lit)],
                }
            }
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let item = chars.next().unwrap_or_else(|| {
                        panic!("unterminated class in string strategy {pattern:?}")
                    });
                    let lo = match item {
                        ']' => break,
                        '\\' => escaped(chars.next().unwrap_or_else(|| {
                            panic!("dangling escape in string strategy {pattern:?}")
                        })),
                        other => other,
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.peek() {
                            Some(']') | None => {
                                // Trailing '-' is a literal.
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                            }
                            Some(_) => {
                                let hi = match chars.next().expect("peeked") {
                                    '\\' => escaped(chars.next().unwrap_or_else(|| {
                                        panic!("dangling escape in string strategy {pattern:?}")
                                    })),
                                    other => other,
                                };
                                assert!(lo <= hi, "inverted range in {pattern:?}");
                                ranges.push((lo, hi));
                            }
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(
                    !ranges.is_empty(),
                    "empty class in string strategy {pattern:?}"
                );
                CharClass { ranges }
            }
            lit => CharClass {
                ranges: vec![(lit, lit)],
            },
        };

        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let (m, n) = match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {{{spec}}} in {pattern:?}")),
                        n.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {{{spec}}} in {pattern:?}")),
                    ),
                    None => {
                        let m: usize = spec
                            .trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {{{spec}}} in {pattern:?}"));
                        (m, m)
                    }
                };
                assert!(m <= n, "inverted quantifier {{{spec}}} in {pattern:?}");
                (m, n)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { class, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let reps = rng.gen_range(atom.min..=atom.max);
            for _ in 0..reps {
                out.push(atom.class.sample(rng));
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        self.as_str().generate(rng)
    }
}

/// Everything a property-test file conventionally imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // The stringified expression goes in as a format *argument*, not the
        // format string — conditions like `matches!(x, Foo { .. })` contain
        // braces that would otherwise break `format!`.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` followed by
/// `#[test]` functions whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn string_strategy_respects_pattern() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z][a-z0-9_:#]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "bad len: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_:#".contains(c)));
        }
    }

    #[test]
    fn dot_covers_controls_and_multibyte() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut control = false;
        let mut multibyte = false;
        let mut ascii = false;
        for _ in 0..400 {
            for c in crate::Strategy::generate(&".{0,40}", &mut rng).chars() {
                assert_ne!(c, '\n', "`.` must not produce newlines");
                control |= c.is_control();
                multibyte |= (c as u32) > 0x7f;
                ascii |= c.is_ascii_graphic();
            }
        }
        assert!(control && multibyte && ascii, "`.` should mix char classes");
    }

    #[test]
    fn escape_classes_parse() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = crate::Strategy::generate(&"[ \t\n]{0,6}", &mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c == ' ' || c == '\t' || c == '\n'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(0u8..10, 3..12)) {
            prop_assert!(v.len() >= 3 && v.len() < 12, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0u32..5, 0.25f64..0.5).prop_map(|(a, b)| (a + 1, b * 2.0))) {
            prop_assert!((1..=5).contains(&a));
            prop_assert!((0.5..1.0).contains(&b));
            prop_assert_eq!(a, a);
        }

        #[test]
        fn any_bool_is_exhaustive(flag in any::<bool>(), _pad in 0u8..4) {
            let _ = flag;
        }
    }

    proptest! {
        fn always_fails(x in 0u8..4) {
            prop_assert!(x > 200, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_input() {
        always_fails();
    }
}
