//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate, covering exactly what this workspace uses: a seedable deterministic
//! generator ([`rngs::StdRng`]) and the [`Rng`] extension methods `gen`,
//! `gen_range` and `gen_bool`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this shim instead of the real crate. Determinism is the only contract the
//! workspace relies on (datasets are generated from fixed seeds); statistical
//! quality is "good enough" (SplitMix64-seeded xoshiro256++), not
//! cryptographic.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator ("standard"
/// distribution: full range for integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free (modulo-bias-corrected) sampling of `[0, n)` for `u64`.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening-multiply trick (Lemire); the rare biased zone is re-rolled.
    let zone = n.wrapping_neg() % n; // = 2^64 mod n
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let m = (v as u128) * (n as u128);
            ((m >> 64) as u64, m as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64 — the
    /// stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.gen_range(2..=5u8);
            assert!((2..=5).contains(&y));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn works_through_unsized_ref() {
        fn take<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        let x = take(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
