# Mirrors .github/workflows/ci.yml — `make ci` is exactly the CI gate.
CARGO ?= cargo

.PHONY: ci lint fmt build test bench example smoke clean

ci: lint build test bench example

lint:
	$(CARGO) fmt --all --check
	$(CARGO) clippy --workspace --all-targets -- -D warnings

fmt:
	$(CARGO) fmt --all

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace
	env -u RUST_TEST_THREADS $(CARGO) test -q --release --test integration_service
	env -u RUST_TEST_THREADS $(CARGO) test -q --release -p specqp_service

bench:
	$(CARGO) bench --no-run --workspace

example:
	$(CARGO) run --release --example quickstart

# The weekly bench-smoke job in one command.
smoke:
	$(CARGO) run --release -p bench --bin probe -- xkg 2 10 --service 4 --json BENCH_probe.json

clean:
	$(CARGO) clean
