# Mirrors .github/workflows/ci.yml — `make ci` is exactly the CI gate.
CARGO ?= cargo

.PHONY: ci lint fmt build test bench doc example smoke gate quality snapshot clean

ci: lint build test bench doc example

lint:
	$(CARGO) fmt --all --check
	$(CARGO) clippy --workspace --all-targets -- -D warnings

fmt:
	$(CARGO) fmt --all

build:
	$(CARGO) build --release --workspace

test:
	SPECQP_EXEC=row $(CARGO) test -q --workspace
	SPECQP_EXEC=block $(CARGO) test -q --workspace
	SPECQP_SPEC=fallback $(CARGO) test -q --workspace
	SPECQP_EXEC=block SPECQP_MORSELS=4 $(CARGO) test -q --workspace
	SPECQP_CHURN=1 $(CARGO) test -q --workspace
	SPECQP_LEARNED=1 $(CARGO) test -q --workspace
	env -u RUST_TEST_THREADS $(CARGO) test -q --release --test integration_service
	env -u RUST_TEST_THREADS $(CARGO) test -q --release --test integration_server
	env -u RUST_TEST_THREADS $(CARGO) test -q --release -p specqp_service
	env -u RUST_TEST_THREADS $(CARGO) test -q --release -p specqp_server

bench:
	$(CARGO) bench --no-run --workspace

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps --workspace

example:
	$(CARGO) run --release --example quickstart

# The weekly bench-smoke job in one command.
smoke:
	$(CARGO) run --release -p bench --bin probe -- xkg 2 10 --service 4 --block-size 128 --quality --server --morsels 4 --churn --learned --json BENCH_probe.json

# The CI bench-regression job: probe the current tree, gate against the
# committed baseline (3x noise tolerance), and check the snapshot speedup,
# the block-executor speedup, the speculation quality floor, the wire
# front-end's overload behavior (shed with RetryAfter, p99 bounded), the
# morsel-parallel + snapshot v2 floors (answers bit-identical always; the 2x
# speedup floor applies only when cores >= workers), the live-writes
# churn floors (answers epoch-stable, post-compaction load >= 5x), and the
# learned-prediction floors (cold engine byte-identical to histograms,
# taught mis-speculation rate < 0.06 and <= static, overhead <= 1.25x).
gate:
	$(CARGO) run --release -p bench --bin probe -- xkg 2 10 --service 4 --block-size 128 --quality --server --morsels 4 --churn --learned --json target/BENCH_current.json
	$(CARGO) run --release -p bench --bin bench_gate -- regression BENCH_probe.json target/BENCH_current.json 3
	$(CARGO) run --release -p bench --bin bench_gate -- snapshot target/BENCH_current.json 3
	$(CARGO) run --release -p bench --bin bench_gate -- block target/BENCH_current.json 1.3
	$(CARGO) run --release -p bench --bin bench_gate -- quality target/BENCH_current.json 0.95 1.25
	$(CARGO) run --release -p bench --bin bench_gate -- overload BENCH_probe.json target/BENCH_current.json 3
	$(CARGO) run --release -p bench --bin bench_gate -- parallel target/BENCH_current.json 2 5
	$(CARGO) run --release -p bench --bin bench_gate -- churn target/BENCH_current.json 5
	$(CARGO) run --release -p bench --bin bench_gate -- learned target/BENCH_current.json 0.06 1.25

# The speculation quality gate alone: precision@k vs TriniT must stay
# >= 0.95 with the fallback lifecycle enabled, at <= 1.25x runtime overhead.
quality:
	$(CARGO) run --release -p bench --bin probe -- xkg 2 10 --quality --json target/BENCH_quality.json
	$(CARGO) run --release -p bench --bin bench_gate -- quality target/BENCH_quality.json 0.95 1.25

# The CI snapshot-roundtrip job: datagen -> save snapshot -> reload ->
# results must be byte-identical to the builder/TSV path.
snapshot:
	$(CARGO) run --release -p bench --bin probe -- xkg 2 10 --save-snapshot target/xkg.snap --json target/BENCH_tsv.json
	$(CARGO) run --release -p bench --bin probe -- xkg 2 10 --snapshot target/xkg.snap --json target/BENCH_snapshot.json
	$(CARGO) run --release -p bench --bin bench_gate -- determinism target/BENCH_tsv.json target/BENCH_snapshot.json
	$(CARGO) run --release -p bench --bin bench_gate -- snapshot target/BENCH_snapshot.json 3

clean:
	$(CARGO) clean
