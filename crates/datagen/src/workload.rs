//! Query workloads and their text persistence.
//!
//! Workloads round-trip through plain text — one SPARQL-subset query per
//! blank-line-separated block — so a generated testset can be saved, edited
//! and reloaded for experiment reproducibility.

use sparql::Query;
use specqp_common::{Dictionary, Result};

/// A named list of benchmark queries.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Human-readable name ("xkg", "twitter").
    pub name: String,
    /// The queries, in generation order.
    pub queries: Vec<Query>,
}

impl Workload {
    /// Creates a workload.
    pub fn new(name: impl Into<String>, queries: Vec<Query>) -> Self {
        Workload {
            name: name.into(),
            queries,
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when there are no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Renders the workload as text: one query per blank-line-separated
    /// block, constants resolved through `dict`.
    pub fn to_text(&self, dict: &Dictionary) -> String {
        let mut out = String::new();
        for q in &self.queries {
            out.push_str(&q.display(dict).to_string());
            out.push_str("\n\n");
        }
        out
    }

    /// Parses a workload previously rendered by [`Workload::to_text`]
    /// (lookup-only resolution against `dict`).
    pub fn from_text(name: impl Into<String>, text: &str, dict: &Dictionary) -> Result<Self> {
        let mut queries = Vec::new();
        for block in text.split("\n\n") {
            let block = block.trim();
            if block.is_empty() {
                continue;
            }
            queries.push(sparql::parse_query(block, dict)?);
        }
        Ok(Workload {
            name: name.into(),
            queries,
        })
    }

    /// Queries grouped by pattern count, ascending (`(#TP, indices)`), the
    /// grouping of Figures 6 and 8 / Table 4.
    pub fn by_pattern_count(&self) -> Vec<(usize, Vec<usize>)> {
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, q) in self.queries.iter().enumerate() {
            match groups.iter_mut().find(|(n, _)| *n == q.len()) {
                Some((_, v)) => v.push(i),
                None => groups.push((q.len(), vec![i])),
            }
        }
        groups.sort_by_key(|(n, _)| *n);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::QueryBuilder;
    use specqp_common::TermId;

    fn q(n: usize) -> Query {
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        for i in 0..n {
            b.pattern(s, TermId(0), TermId(i as u32 + 1));
        }
        b.project(s);
        b.build().unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let mut dict = Dictionary::new();
        let p = dict.intern("p");
        let c1 = dict.intern("c1");
        let c2 = dict.intern("c2");
        let mut b1 = QueryBuilder::new();
        let s = b1.var("s");
        b1.pattern(s, p, c1);
        b1.pattern(s, p, c2);
        b1.project(s);
        let mut b2 = QueryBuilder::new();
        let x = b2.var("x");
        b2.pattern(x, p, c1);
        b2.project(x);
        let w = Workload::new("t", vec![b1.build().unwrap(), b2.build().unwrap()]);
        let text = w.to_text(&dict);
        let w2 = Workload::from_text("t", &text, &dict).unwrap();
        assert_eq!(w2.len(), 2);
        for (a, b) in w.queries.iter().zip(&w2.queries) {
            assert_eq!(a.len(), b.len());
            assert_eq!(a.patterns(), b.patterns());
        }
    }

    #[test]
    fn groups_by_tp() {
        let w = Workload::new("t", vec![q(2), q(3), q(2), q(4)]);
        let groups = w.by_pattern_count();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (2, vec![0, 2]));
        assert_eq!(groups[1], (3, vec![1]));
        assert_eq!(groups[2], (4, vec![3]));
        assert_eq!(w.len(), 4);
    }
}
