//! The generated-dataset bundle.

use crate::workload::Workload;
use kgstore::KnowledgeGraph;
use relax::RelaxationRegistry;
use specqp_common::Result;
use std::path::Path;

/// Everything one experiment needs: the graph, the mined relaxation rules
/// and the query workload.
pub struct Dataset {
    /// Dataset name ("xkg" / "twitter").
    pub name: String,
    /// The scored knowledge graph.
    pub graph: KnowledgeGraph,
    /// Mined relaxation rules.
    pub registry: RelaxationRegistry,
    /// Benchmark queries.
    pub workload: Workload,
}

impl Dataset {
    /// Emits the generated graph as a binary KG snapshot at `path`
    /// (dictionary, triple columns and prebuilt pattern indexes — see
    /// [`kgstore::snapshot`]). The relaxation registry and workload are
    /// *not* included: they are cheap to regenerate from the same seed, and
    /// because the snapshot preserves term ids exactly, regenerated rules
    /// and queries remain valid against the reloaded graph.
    pub fn to_snapshot(&self, path: impl AsRef<Path>) -> Result<()> {
        kgstore::snapshot::save_snapshot(&self.graph, path)
    }

    /// Serializes the generated graph into an in-memory snapshot image
    /// (the buffer [`Dataset::to_snapshot`] would write to disk).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        kgstore::snapshot::write_snapshot(&self.graph)
    }

    /// Sanity summary used by the experiment harness banner.
    pub fn summary(&self) -> String {
        format!(
            "dataset {}: {} triples, {} relaxation rules, {} queries",
            self.name,
            self.graph.len(),
            self.registry.len(),
            self.workload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{XkgConfig, XkgGenerator};
    use kgstore::PatternKey;

    #[test]
    fn snapshot_emit_preserves_graph_and_term_ids() {
        let mut c = XkgConfig::small(0xdead5eed);
        c.queries = 2;
        let ds = XkgGenerator::new(c).generate();
        let g2 = kgstore::snapshot::read_snapshot(&ds.snapshot_bytes()).unwrap();
        assert_eq!(g2.len(), ds.graph.len());
        assert_eq!(g2.dictionary().len(), ds.graph.dictionary().len());
        // Term ids are preserved exactly, so regenerated workload queries
        // (which carry ids from the original dictionary) answer identically.
        for q in &ds.workload.queries {
            for p in q.patterns() {
                let (s, pp, o) = p.const_parts();
                let key = PatternKey { s, p: pp, o };
                assert_eq!(ds.graph.cardinality(key), g2.cardinality(key));
            }
        }
    }

    #[test]
    fn to_snapshot_writes_loadable_file() {
        let mut c = XkgConfig::small(0x5eed);
        c.queries = 2;
        let ds = XkgGenerator::new(c).generate();
        let path = std::env::temp_dir().join(format!(
            "specqp_datagen_snapshot_{}.snap",
            std::process::id()
        ));
        ds.to_snapshot(&path).unwrap();
        let g = kgstore::snapshot::load_snapshot(&path).unwrap();
        assert_eq!(g.len(), ds.graph.len());
        std::fs::remove_file(&path).ok();
    }
}
