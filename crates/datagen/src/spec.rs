//! The generated-dataset bundle.

use crate::workload::Workload;
use kgstore::KnowledgeGraph;
use relax::RelaxationRegistry;

/// Everything one experiment needs: the graph, the mined relaxation rules
/// and the query workload.
pub struct Dataset {
    /// Dataset name ("xkg" / "twitter").
    pub name: String,
    /// The scored knowledge graph.
    pub graph: KnowledgeGraph,
    /// Mined relaxation rules.
    pub registry: RelaxationRegistry,
    /// Benchmark queries.
    pub workload: Workload,
}

impl Dataset {
    /// Sanity summary used by the experiment harness banner.
    pub fn summary(&self) -> String {
        format!(
            "dataset {}: {} triples, {} relaxation rules, {} queries",
            self.name,
            self.graph.len(),
            self.registry.len(),
            self.workload.len()
        )
    }
}
