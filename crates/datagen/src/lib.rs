//! Seeded synthetic datasets and workloads reproducing the paper's two
//! evaluation settings (§4.2).
//!
//! The original datasets are not redistributable (XKG is a 105M-triple
//! YAGO2s+OpenIE build; the Twitter crawl is 18M tweet–tag triples from
//! April 2017), so this crate generates *statistically faithful* substitutes
//! — see DESIGN.md for the substitution argument. Everything the planner
//! and operators observe is reproduced:
//!
//! * **power-law triple scores** (the paper's inlink counts / occurrence
//!   counts / retweet counts),
//! * **relaxation structure with mined weights** — type-hierarchy
//!   neighbourhoods for XKG (≥10 rules per query pattern), tag
//!   co-occurrence with `w = #(T₁∧T₂)/#T₁` for Twitter (≥5 rules per
//!   pattern),
//! * **workload shape** — 65 XKG queries with 2–4 triple patterns and
//!   non-empty results; 50 Twitter queries with 2–3 patterns over frequent
//!   tags.
//!
//! All generators take explicit seeds and are deterministic.

pub mod spec;
pub mod twitter;
pub mod workload;
pub mod xkg;
pub mod zipf;

pub use spec::Dataset;
pub use twitter::{TwitterConfig, TwitterGenerator};
pub use workload::Workload;
pub use xkg::{XkgConfig, XkgGenerator};
pub use zipf::Zipf;
