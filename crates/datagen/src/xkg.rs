//! The synthetic XKG-style dataset (§4.2 dataset 1).
//!
//! Structure generated:
//!
//! * a three-level class taxonomy `domain → group → leaf` recorded as
//!   `subClassOf` triples;
//! * entities with Zipf popularity; each entity gets 1–3 *leaf* types drawn
//!   from a (mostly) single group — and, as in YAGO-style KBs, the ancestor
//!   types are **materialized** (`e type leaf` implies `e type group`,
//!   `e type domain`), so relaxing a class to its parent genuinely widens
//!   the match list;
//! * relational triples `〈e₁, rel, e₂〉` whose predicates come in families;
//! * triple scores equal the subject entity's popularity (the paper's
//!   "number of inlinks into the subject");
//! * relaxations: [`HierarchyMiner`] over the taxonomy (every leaf gets ≥10
//!   rules) plus within-family predicate rules;
//! * a workload of star queries built around *witness entities* so every
//!   query is guaranteed a non-empty original result, with 2–4 triple
//!   patterns per query as in the paper's testset of 65.

use crate::spec::Dataset;
use crate::workload::Workload;
use crate::zipf::{blended_power_law_score, Zipf};
use kgstore::KnowledgeGraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relax::{HierarchyMiner, Position, RelaxationRegistry, TermRule, TypeHierarchy};
use sparql::{Query, QueryBuilder};
use specqp_common::TermId;

/// Knobs of the XKG generator. `Default` is the benchmark-scale
/// configuration; [`XkgConfig::small`] is test-scale.
#[derive(Clone, Debug)]
pub struct XkgConfig {
    /// RNG seed (all outputs are deterministic in it).
    pub seed: u64,
    /// Level-1 classes.
    pub domains: usize,
    /// Level-2 classes per domain.
    pub groups_per_domain: usize,
    /// Leaf classes per group.
    pub leaves_per_group: usize,
    /// Number of entities.
    pub entities: usize,
    /// Max leaf types per entity (min 1).
    /// (entities always get at least 2 types)
    pub max_types_per_entity: usize,
    /// Predicate families for relational triples.
    pub predicate_families: usize,
    /// Predicates per family (must be ≥ 11 so relational patterns keep ≥10
    /// relaxations).
    pub predicates_per_family: usize,
    /// Relational triples to generate.
    pub relational_triples: usize,
    /// Zipf exponent of entity popularity.
    pub popularity_exponent: f64,
    /// Scale of the top popularity score.
    pub popularity_scale: f64,
    /// Baseline fraction of the top popularity (every entity in a curated
    /// KB has some inlinks; keeps per-list normalized scores off the floor,
    /// see `zipf::blended_power_law_score`).
    pub popularity_floor: f64,
    /// Number of workload queries.
    pub queries: usize,
    /// Minimum original-result size for an admitted workload query.
    pub min_answers: usize,
    /// Hierarchy relaxation decay per tree edge.
    pub relaxation_decay: f64,
}

impl Default for XkgConfig {
    fn default() -> Self {
        XkgConfig {
            seed: 0x5eed001,
            domains: 8,
            groups_per_domain: 5,
            leaves_per_group: 8,
            entities: 40_000,
            max_types_per_entity: 4,
            predicate_families: 4,
            predicates_per_family: 12,
            relational_triples: 150_000,
            popularity_exponent: 0.9,
            popularity_scale: 100_000.0,
            popularity_floor: 0.2,
            queries: 65,
            min_answers: 2,
            relaxation_decay: 0.85,
        }
    }
}

impl XkgConfig {
    /// A small configuration for unit/integration tests (fast to build,
    /// same structure).
    pub fn small(seed: u64) -> Self {
        XkgConfig {
            seed,
            domains: 4,
            groups_per_domain: 3,
            leaves_per_group: 8,
            entities: 2_000,
            relational_triples: 6_000,
            queries: 12,
            ..Self::default()
        }
    }
}

/// Generator state and entry point.
pub struct XkgGenerator {
    config: XkgConfig,
}

impl XkgGenerator {
    /// Creates the generator.
    pub fn new(config: XkgConfig) -> Self {
        XkgGenerator { config }
    }

    /// Generates the dataset (graph + mined rules + workload).
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut b = KnowledgeGraphBuilder::new();
        b.reserve(cfg.entities * 4 + cfg.relational_triples);

        let type_pred = b.intern("rdf:type");
        let subclass_pred = b.intern("subClassOf");

        // ---- taxonomy -----------------------------------------------------
        let mut domains: Vec<TermId> = Vec::new();
        let mut groups: Vec<Vec<TermId>> = Vec::new(); // per domain
        let mut leaves: Vec<Vec<Vec<TermId>>> = Vec::new(); // [domain][group]
        for d in 0..cfg.domains {
            let dom = b.intern(&format!("dom{d}"));
            domains.push(dom);
            let mut g_row = Vec::new();
            let mut l_row = Vec::new();
            for g in 0..cfg.groups_per_domain {
                let grp = b.intern(&format!("grp{d}_{g}"));
                g_row.push(grp);
                let mut l_cell = Vec::new();
                for l in 0..cfg.leaves_per_group {
                    let leaf = b.intern(&format!("cls{d}_{g}_{l}"));
                    l_cell.push(leaf);
                }
                l_row.push(l_cell);
            }
            groups.push(g_row);
            leaves.push(l_row);
        }
        // subClassOf triples (score 1: taxonomy assertions).
        let root = b.intern("thing");
        for d in 0..cfg.domains {
            b.add_ids(domains[d], subclass_pred, root, 1.0.into());
            for g in 0..cfg.groups_per_domain {
                b.add_ids(groups[d][g], subclass_pred, domains[d], 1.0.into());
                for leaf in &leaves[d][g] {
                    b.add_ids(*leaf, subclass_pred, groups[d][g], 1.0.into());
                }
            }
        }

        // ---- entities and type triples ------------------------------------
        let domain_z = Zipf::new(cfg.domains, 0.7);
        let group_z = Zipf::new(cfg.groups_per_domain, 0.7);
        let leaf_z = Zipf::new(cfg.leaves_per_group, 0.8);

        let mut entities: Vec<TermId> = Vec::with_capacity(cfg.entities);
        let mut popularity: Vec<f64> = Vec::with_capacity(cfg.entities);
        // Per entity: the distinct leaf types, as (domain, group, leaf idx).
        let mut entity_types: Vec<Vec<(usize, usize, usize)>> = Vec::with_capacity(cfg.entities);

        for r in 0..cfg.entities {
            let e = b.intern(&format!("ent{r}"));
            let pop = blended_power_law_score(
                r,
                cfg.popularity_scale,
                cfg.popularity_exponent,
                cfg.popularity_floor,
            );
            entities.push(e);
            popularity.push(pop);

            let home_d = domain_z.sample(&mut rng);
            let home_g = group_z.sample(&mut rng);
            let n_types = rng.gen_range(2..=cfg.max_types_per_entity.max(2));
            let mut tys: Vec<(usize, usize, usize)> = Vec::with_capacity(n_types);
            for t in 0..n_types {
                let (d, g) = if t > 0 && rng.gen_bool(0.15) {
                    // Occasional cross-group type: creates instance overlap
                    // between unrelated classes.
                    (domain_z.sample(&mut rng), group_z.sample(&mut rng))
                } else {
                    (home_d, home_g)
                };
                let l = leaf_z.sample(&mut rng);
                if !tys.contains(&(d, g, l)) {
                    tys.push((d, g, l));
                }
            }
            for &(d, g, l) in &tys {
                // Leaf type plus materialized ancestors, all scored by the
                // subject's popularity (inlink-count semantics).
                b.add_ids(e, type_pred, leaves[d][g][l], pop.into());
                b.add_ids(e, type_pred, groups[d][g], pop.into());
                b.add_ids(e, type_pred, domains[d], pop.into());
            }
            entity_types.push(tys);
        }

        // ---- relational predicates and triples ----------------------------
        let mut predicates: Vec<Vec<TermId>> = Vec::new();
        for f in 0..cfg.predicate_families {
            let mut fam = Vec::new();
            for m in 0..cfg.predicates_per_family {
                fam.push(b.intern(&format!("rel{f}_{m}")));
            }
            predicates.push(fam);
        }
        let subj_z = Zipf::new(cfg.entities, 0.8);
        let obj_z = Zipf::new(cfg.entities, 1.0);
        let pred_z = Zipf::new(cfg.predicates_per_family, 0.6);
        // Record outgoing predicates per entity for query construction.
        let mut entity_out_pred: Vec<Vec<(usize, usize)>> = vec![Vec::new(); cfg.entities];
        // Edges are emitted in *bundles* of adjacent family members: real
        // KGs correlate related relations (actedIn/directed/produced), and
        // the bundles guarantee that relaxing a predicate to a family
        // neighbour keeps the join non-empty often enough for PLANGEN's
        // top-relaxation check to be informative.
        let mut emitted = 0usize;
        while emitted < cfg.relational_triples {
            let s = subj_z.sample(&mut rng);
            let f = rng.gen_range(0..cfg.predicate_families);
            let m = pred_z.sample(&mut rng);
            let spread = rng.gen_range(1..=3usize);
            for d in 0..spread {
                let mm = (m + d) % cfg.predicates_per_family;
                let o = obj_z.sample(&mut rng);
                b.add_ids(
                    entities[s],
                    predicates[f][mm],
                    entities[o],
                    popularity[s].into(),
                );
                emitted += 1;
                if entity_out_pred[s].len() < 4 && !entity_out_pred[s].contains(&(f, mm)) {
                    entity_out_pred[s].push((f, mm));
                }
                if emitted >= cfg.relational_triples {
                    break;
                }
            }
        }

        let graph = b.build();

        // ---- relaxation mining --------------------------------------------
        let hierarchy = TypeHierarchy::from_graph(&graph, subclass_pred);
        let mut miner = HierarchyMiner::new(type_pred);
        miner.decay = cfg.relaxation_decay;
        miner.max_distance = 4;
        miner.max_rules_per_class = 15;
        let mut registry = miner.mine(&graph, &hierarchy);
        // Predicate-family rules: rel{f}_{i} → rel{f}_{j}, weight decaying
        // in |i−j| (ring distance within the family).
        for fam in &predicates {
            for i in 0..fam.len() {
                for j in 0..fam.len() {
                    if i == j {
                        continue;
                    }
                    let d = i.abs_diff(j);
                    let w = 0.9_f64.powi(d as i32).max(0.2);
                    registry.add(TermRule::new(Position::Predicate, fam[i], fam[j], w));
                }
            }
        }

        // ---- workload ------------------------------------------------------
        let workload = self.build_workload(
            &graph,
            &registry,
            &entities,
            &entity_types,
            &entity_out_pred,
            &leaves,
            type_pred,
            &predicates,
            &mut rng,
        );

        Dataset {
            name: "xkg".into(),
            graph,
            registry,
            workload,
        }
    }

    /// Builds `cfg.queries` star queries around witness entities. Pattern
    /// counts cycle through 2, 3, 4 (the paper's testset covers all three),
    /// and every admitted query's original (un-relaxed) form has at least
    /// [`XkgConfig::min_answers`] results — the paper's queries were
    /// "manually constructed so as to have non-empty result sets".
    #[allow(clippy::too_many_arguments)]
    fn build_workload(
        &self,
        graph: &kgstore::KnowledgeGraph,
        registry: &RelaxationRegistry,
        entities: &[TermId],
        entity_types: &[Vec<(usize, usize, usize)>],
        entity_out_pred: &[Vec<(usize, usize)>],
        leaves: &[Vec<Vec<TermId>>],
        type_pred: TermId,
        predicates: &[Vec<TermId>],
        rng: &mut StdRng,
    ) -> Workload {
        use specqp_stats::CardinalityEstimator;
        let cfg = &self.config;
        let oracle = specqp_stats::ExactCardinality::new();
        let mut queries: Vec<Query> = Vec::with_capacity(cfg.queries);
        let mut attempts = 0usize;
        while queries.len() < cfg.queries && attempts < cfg.queries * 200 {
            attempts += 1;
            let want_tp = 2 + queries.len() % 3; // cycle 2,3,4
            let w = rng.gen_range(0..entities.len());
            let tys = &entity_types[w];
            let outs = &entity_out_pred[w];
            // Need enough distinct patterns: leaf types first, relational
            // patterns after.
            if tys.len() + outs.len() < want_tp {
                continue;
            }
            let mut qb = QueryBuilder::new();
            let x = qb.var("x");
            let mut n = 0usize;
            let mut ok = true;
            for &(d, g, l) in tys.iter().take(want_tp) {
                let leaf = leaves[d][g][l];
                let pat = sparql::TriplePattern::new(x, type_pred, leaf);
                if registry.relaxation_count(&pat) < 10 {
                    ok = false;
                    break;
                }
                qb.pattern(x, type_pred, leaf);
                n += 1;
            }
            if ok && n < want_tp {
                for (idx, &(f, m)) in outs.iter().enumerate() {
                    if n >= want_tp {
                        break;
                    }
                    let p = predicates[f][m];
                    let y = qb.var(&format!("y{idx}"));
                    let pat = sparql::TriplePattern::new(x, p, y);
                    if registry.relaxation_count(&pat) < 10 {
                        ok = false;
                        break;
                    }
                    qb.pattern(x, p, y);
                    n += 1;
                }
            }
            if !ok || n < want_tp {
                continue;
            }
            qb.project(x);
            let q = qb.build().expect("generated query is valid");
            debug_assert!(q.is_connected());
            // The witness guarantees ≥1 original answer; additionally demand
            // a minimum original result size so the workload is not
            // dominated by degenerate 1-answer joins.
            let n = oracle.cardinality(graph, q.patterns());
            if n < cfg.min_answers as f64 {
                continue;
            }
            queries.push(q);
        }
        assert_eq!(
            queries.len(),
            cfg.queries,
            "workload generation exhausted attempts — enlarge the dataset"
        );
        Workload::new("xkg", queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::PatternKey;

    fn small() -> Dataset {
        XkgGenerator::new(XkgConfig::small(7)).generate()
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(a.registry.len(), b.registry.len());
        assert_eq!(a.workload.len(), b.workload.len());
        for (qa, qb) in a.workload.queries.iter().zip(&b.workload.queries) {
            assert_eq!(qa.patterns(), qb.patterns());
        }
    }

    #[test]
    fn workload_shape_matches_paper() {
        let d = small();
        assert_eq!(d.workload.len(), 12);
        for q in &d.workload.queries {
            assert!((2..=4).contains(&q.len()), "#TP = {}", q.len());
            assert!(q.is_connected());
            // ≥10 relaxations per pattern (paper requirement).
            for p in q.patterns() {
                assert!(
                    d.registry.relaxation_count(p) >= 10,
                    "pattern with only {} relaxations",
                    d.registry.relaxation_count(p)
                );
            }
        }
    }

    #[test]
    fn queries_have_nonempty_original_results() {
        use specqp_stats::CardinalityEstimator;
        let d = small();
        let card = specqp_stats::ExactCardinality::new();
        for q in &d.workload.queries {
            let n = card.cardinality(&d.graph, q.patterns());
            assert!(n >= 2.0, "query below min_answers");
        }
    }

    #[test]
    fn scores_have_power_head_and_moderate_sigma() {
        let d = small();
        let dict = d.graph.dictionary();
        let ty = dict.lookup("rdf:type").unwrap();
        // Pick a dense leaf: a clear popularity head must exist…
        let leaf = dict.lookup("cls0_0_0").unwrap();
        let list = d.graph.matches(PatternKey::po(ty, leaf));
        assert!(list.len() > 20, "dense leaf should have many instances");
        let median = list.score_at(list.len() / 2).value();
        assert!(
            list.max_score().value() > 3.0 * median,
            "max {} vs median {median}",
            list.max_score().value()
        );
        // …while the popularity baseline keeps the two-bucket boundary σ_r
        // in the mid-range (not degenerate near zero).
        let total = list.total_score().value();
        let mut cum = 0.0;
        let mut sigma = 1.0;
        for r in 0..list.len() {
            cum += list.score_at(r).value();
            if cum >= 0.8 * total {
                sigma = list.score_at(r).value() / list.max_score().value();
                break;
            }
        }
        assert!((0.05..0.95).contains(&sigma), "sigma_r = {sigma}");
    }

    #[test]
    fn ancestor_types_are_materialized() {
        let d = small();
        let dict = d.graph.dictionary();
        let ty = dict.lookup("rdf:type").unwrap();
        let leaf = dict.lookup("cls0_0_0").unwrap();
        let grp = dict.lookup("grp0_0").unwrap();
        let leaf_count = d.graph.cardinality(PatternKey::po(ty, leaf));
        let grp_count = d.graph.cardinality(PatternKey::po(ty, grp));
        assert!(grp_count >= leaf_count, "group must subsume leaf instances");
    }

    #[test]
    fn top_relaxation_is_parent_class_with_matches() {
        let d = small();
        let dict = d.graph.dictionary();
        let ty = dict.lookup("rdf:type").unwrap();
        let leaf = dict.lookup("cls0_0_0").unwrap();
        let pat = sparql::TriplePattern::new(sparql::Var(0), ty, leaf);
        let top = d.registry.top_relaxation_for(&pat).unwrap();
        // The best-weighted relaxation must itself be non-empty, otherwise
        // PLANGEN's single-relaxation check would be systematically blind.
        let (s, p, o) = top.pattern.const_parts();
        let n = d.graph.cardinality(PatternKey { s, p, o });
        assert!(n > 0, "top relaxation has no matches");
    }
}
