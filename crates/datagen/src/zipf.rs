//! Zipf-distributed sampling and scoring.
//!
//! The paper's scores are heavy-tailed counts (inlinks, extraction
//! frequencies, retweets); its §3.1.1 histogram design leans on the
//! observation that pattern score lists follow a power law ("80% of the
//! score mass lies in the 20% of the answers"). This module provides the
//! deterministic Zipf machinery the generators use.

use rand::Rng;

/// A Zipf(`n`, `s`) distribution over ranks `0..n` with weight
/// `(rank+1)^{-s}`, sampled by inverse-cdf binary search.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += zipf_weight(rank, s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the distribution is over zero ranks (impossible by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// The unnormalized Zipf weight of `rank` (0-based): `(rank+1)^{-s}`.
pub fn zipf_weight(rank: usize, s: f64) -> f64 {
    ((rank + 1) as f64).powf(-s)
}

/// A deterministic power-law *score* for a rank: `scale·(rank+1)^{-s}`,
/// floored at 1.0 so scores remain count-like.
pub fn power_law_score(rank: usize, scale: f64, s: f64) -> f64 {
    (scale * zipf_weight(rank, s)).max(1.0)
}

/// A power law riding on a baseline: `scale·(floor + (1−floor)·(rank+1)^{-s})`.
///
/// Pure power laws normalized by their maximum put the 80%-score-mass
/// boundary σᵣ near zero, which degenerates the paper's two-bucket model
/// into a near-uniform density. Count data in the paper's settings has a
/// natural baseline (every *trending* tweet has substantial retweets; every
/// entity in a curated KB has some inlinks), which keeps σᵣ in the
/// mid-range the paper's Figure 3 depicts. `floor ∈ [0,1)` sets that
/// baseline as a fraction of the top score.
pub fn blended_power_law_score(rank: usize, scale: f64, s: f64, floor: f64) -> f64 {
    assert!((0.0..1.0).contains(&floor), "floor must be in [0,1)");
    (scale * (floor + (1.0 - floor) * zipf_weight(rank, s))).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_decay() {
        assert!(zipf_weight(0, 1.0) > zipf_weight(1, 1.0));
        assert_eq!(zipf_weight(0, 1.0), 1.0);
        assert!((zipf_weight(1, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_skew() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate deep ranks by a wide margin.
        assert!(counts[0] > 20 * counts[500].max(1));
        // Every sample is in range (implicitly checked by indexing).
        assert!(counts[0] > counts[9]);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(100, 1.0);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let sa: Vec<usize> = (0..50).map(|_| z.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..50).map(|_| z.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn power_law_scores_are_floored_counts() {
        assert_eq!(power_law_score(0, 1000.0, 1.0), 1000.0);
        assert_eq!(power_law_score(999_999, 1000.0, 1.0), 1.0);
        let s1 = power_law_score(1, 1000.0, 1.0);
        assert!((s1 - 500.0).abs() < 1e-9);
    }

    #[test]
    fn blended_scores_keep_sigma_moderate() {
        // Normalized boundary score at the 80%-mass rank stays well above
        // zero when a baseline is present.
        let n = 2000;
        let scores: Vec<f64> = (0..n)
            .map(|r| blended_power_law_score(r, 10_000.0, 1.0, 0.25))
            .collect();
        let max = scores[0];
        let total: f64 = scores.iter().map(|v| v / max).sum();
        let mut cum = 0.0;
        let mut sigma = 1.0;
        for &v in &scores {
            cum += v / max;
            if cum >= 0.8 * total {
                sigma = v / max;
                break;
            }
        }
        assert!(sigma > 0.2, "sigma_r = {sigma}");
    }

    #[test]
    fn score_list_is_8020_shaped() {
        // The generated score lists must actually look like the paper's
        // 80/20 observation: top 20% of ranks hold well over half the mass.
        let n = 1000;
        let scores: Vec<f64> = (0..n).map(|r| power_law_score(r, 10_000.0, 1.0)).collect();
        let total: f64 = scores.iter().sum();
        let head: f64 = scores[..n / 5].iter().sum();
        assert!(head / total > 0.55, "head fraction {}", head / total);
    }
}
