//! The synthetic Twitter-style dataset (§4.2 dataset 2).
//!
//! Schema is exactly the paper's: triples `〈tweetID, hasTag, term〉`, one
//! triple per (tweet, term) pair, scored by the tweet's retweet count.
//! Tweets draw their 2–6 tags from topic-local term distributions, so terms
//! of the same topic co-occur — which is what gives the co-occurrence-mined
//! relaxation weights `w = #tweets(T₁∧T₂)/#tweets(T₁)` their structure.
//!
//! The workload mirrors the paper's 50 manually-built queries over
//! "combinations of most frequent tags and terms": 2–3 patterns per query,
//! built around witness tweets (non-empty original results), each pattern
//! with ≥5 mined relaxations.

use crate::spec::Dataset;
use crate::workload::Workload;
use crate::zipf::{blended_power_law_score, Zipf};
use kgstore::KnowledgeGraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relax::CooccurrenceMiner;
use sparql::{QueryBuilder, TriplePattern};
use specqp_common::TermId;

/// Knobs of the Twitter generator. `Default` is benchmark scale;
/// [`TwitterConfig::small`] is test scale.
#[derive(Clone, Debug)]
pub struct TwitterConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of tweets.
    pub tweets: usize,
    /// Vocabulary size (tags + terms).
    pub terms: usize,
    /// Number of topics.
    pub topics: usize,
    /// Terms sampled into each topic.
    pub terms_per_topic: usize,
    /// Tag-count range per tweet (inclusive).
    pub tags_per_tweet: (usize, usize),
    /// Zipf exponent of retweet counts.
    pub retweet_exponent: f64,
    /// Scale of the top retweet count.
    pub retweet_scale: f64,
    /// Baseline fraction of the top retweet count (see
    /// [`blended_power_law_score`]).
    pub retweet_floor: f64,
    /// Number of workload queries.
    pub queries: usize,
    /// Minimum mined relaxations per query pattern (paper: ≥5).
    pub min_relaxations: usize,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig {
            seed: 0x71177e4,
            tweets: 60_000,
            terms: 4_000,
            topics: 60,
            terms_per_topic: 30,
            tags_per_tweet: (2, 6),
            retweet_exponent: 1.0,
            retweet_scale: 50_000.0,
            retweet_floor: 0.25,
            queries: 50,
            min_relaxations: 5,
        }
    }
}

impl TwitterConfig {
    /// Small test-scale configuration.
    pub fn small(seed: u64) -> Self {
        TwitterConfig {
            seed,
            tweets: 5_000,
            terms: 600,
            topics: 20,
            terms_per_topic: 20,
            queries: 10,
            ..Self::default()
        }
    }
}

/// Generator state and entry point.
pub struct TwitterGenerator {
    config: TwitterConfig,
}

impl TwitterGenerator {
    /// Creates the generator.
    pub fn new(config: TwitterConfig) -> Self {
        TwitterGenerator { config }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut b = KnowledgeGraphBuilder::new();
        b.reserve(cfg.tweets * 4);

        let has_tag = b.intern("hasTag");
        let terms: Vec<TermId> = (0..cfg.terms)
            .map(|r| b.intern(&format!("tag{r}")))
            .collect();

        // Topics: overlapping subsets of globally Zipf-popular terms.
        let global_z = Zipf::new(cfg.terms, 1.05);
        let mut topics: Vec<Vec<usize>> = Vec::with_capacity(cfg.topics);
        for _ in 0..cfg.topics {
            let mut topic: Vec<usize> = Vec::with_capacity(cfg.terms_per_topic);
            while topic.len() < cfg.terms_per_topic {
                let t = global_z.sample(&mut rng);
                if !topic.contains(&t) {
                    topic.push(t);
                }
            }
            topics.push(topic);
        }

        // Tweets: topic-local Zipf draws; retweet counts power-law in the
        // tweet index.
        let topic_z = Zipf::new(cfg.topics, 0.8);
        let within_z = Zipf::new(cfg.terms_per_topic, 0.9);
        let mut tweet_tags: Vec<Vec<usize>> = Vec::with_capacity(cfg.tweets);
        for i in 0..cfg.tweets {
            let tweet = b.intern(&format!("tw{i}"));
            let retweets = blended_power_law_score(
                i,
                cfg.retweet_scale,
                cfg.retweet_exponent,
                cfg.retweet_floor,
            );
            let topic = &topics[topic_z.sample(&mut rng)];
            let n_tags = rng.gen_range(cfg.tags_per_tweet.0..=cfg.tags_per_tweet.1);
            let mut tags: Vec<usize> = Vec::with_capacity(n_tags);
            let mut guard = 0;
            while tags.len() < n_tags && guard < 50 {
                guard += 1;
                let term = if rng.gen_bool(0.1) {
                    global_z.sample(&mut rng) // off-topic noise tag
                } else {
                    topic[within_z.sample(&mut rng)]
                };
                if !tags.contains(&term) {
                    tags.push(term);
                }
            }
            for &t in &tags {
                b.add_ids(tweet, has_tag, terms[t], retweets.into());
            }
            tweet_tags.push(tags);
        }

        let graph = b.build();

        // Mining: the paper's exact co-occurrence weight formula.
        let mut miner = CooccurrenceMiner::new(has_tag);
        miner.min_weight = 0.02;
        miner.max_rules_per_term = 20;
        let registry = miner.mine(&graph);

        // Workload: witness-tweet queries over "combinations of most
        // frequent tags and terms" (§4.2). Query flavours alternate between
        // *frequent* tags (dense match lists — the original query can often
        // fill the top-k, so relaxations get pruned) and *mid-band* tags
        // (thin lists — most patterns require relaxation, the dominant
        // regime in the paper's Table 3 for Twitter).
        let mut queries = Vec::with_capacity(cfg.queries);
        let mut attempts = 0usize;
        let witness_z = Zipf::new(cfg.tweets, 0.5);
        while queries.len() < cfg.queries && attempts < cfg.queries * 600 {
            attempts += 1;
            let want_tp = 2 + queries.len() % 2; // alternate 2,3
            let frequent_flavour = (queries.len() / 2) % 2 == 0;
            let w = witness_z.sample(&mut rng);
            let tags = &tweet_tags[w];
            // Term index == global popularity rank; band-filter by flavour.
            let mut band: Vec<usize> = tags
                .iter()
                .copied()
                .filter(|&t| {
                    if frequent_flavour {
                        t < cfg.terms / 8
                    } else {
                        (cfg.terms / 20..cfg.terms / 2).contains(&t)
                    }
                })
                .collect();
            band.sort_unstable();
            band.dedup();
            if band.len() < want_tp {
                continue;
            }
            let chosen = &band[..want_tp];
            let mut ok = true;
            let mut qb = QueryBuilder::new();
            let s = qb.var("s");
            for &t in chosen {
                let pat = TriplePattern::new(s, has_tag, terms[t]);
                if registry.relaxation_count(&pat) < cfg.min_relaxations {
                    ok = false;
                    break;
                }
                qb.pattern(s, has_tag, terms[t]);
            }
            if !ok {
                continue;
            }
            qb.project(s);
            let q = qb.build().expect("generated query is valid");
            // Avoid duplicate queries.
            if queries
                .iter()
                .any(|existing: &sparql::Query| existing.patterns() == q.patterns())
            {
                continue;
            }
            queries.push(q);
        }
        assert_eq!(
            queries.len(),
            cfg.queries,
            "twitter workload generation exhausted attempts — enlarge the dataset"
        );

        Dataset {
            name: "twitter".into(),
            graph,
            registry,
            workload: Workload::new("twitter", queries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::PatternKey;
    use specqp_stats::CardinalityEstimator;

    fn small() -> Dataset {
        TwitterGenerator::new(TwitterConfig::small(3)).generate()
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(a.registry.len(), b.registry.len());
        for (qa, qb) in a.workload.queries.iter().zip(&b.workload.queries) {
            assert_eq!(qa.patterns(), qb.patterns());
        }
    }

    #[test]
    fn schema_is_single_predicate() {
        let d = small();
        let dict = d.graph.dictionary();
        let has_tag = dict.lookup("hasTag").unwrap();
        for st in d.graph.iter_scored() {
            assert_eq!(st.triple.p, has_tag);
        }
    }

    #[test]
    fn workload_shape_matches_paper() {
        let d = small();
        assert_eq!(d.workload.len(), 10);
        for q in &d.workload.queries {
            assert!((2..=3).contains(&q.len()));
            for p in q.patterns() {
                assert!(
                    d.registry.relaxation_count(p) >= 5,
                    "pattern with only {} relaxations",
                    d.registry.relaxation_count(p)
                );
            }
        }
    }

    #[test]
    fn queries_have_nonempty_original_results() {
        let d = small();
        let card = specqp_stats::ExactCardinality::new();
        for q in &d.workload.queries {
            let n = card.cardinality(&d.graph, q.patterns());
            assert!(n >= 1.0, "query with empty original result");
        }
    }

    #[test]
    fn retweet_scores_have_power_head_and_moderate_sigma() {
        let d = small();
        let dict = d.graph.dictionary();
        let has_tag = dict.lookup("hasTag").unwrap();
        let all = d.graph.matches(PatternKey::p_only(has_tag));
        // A real power-law head: the best tweet dwarfs the median one.
        let median = all.score_at(all.len() / 2).value();
        assert!(
            all.max_score().value() > 3.0 * median,
            "max {} vs median {median}",
            all.max_score().value()
        );
        // …but the baseline keeps the two-bucket boundary σ_r in the
        // mid-range the model needs (not degenerate near 0).
        let total = all.total_score().value();
        let mut cum = 0.0;
        let mut sigma = 1.0;
        for r in 0..all.len() {
            cum += all.score_at(r).value();
            if cum >= 0.8 * total {
                sigma = all.score_at(r).value() / all.max_score().value();
                break;
            }
        }
        assert!((0.05..0.95).contains(&sigma), "sigma_r = {sigma}");
    }
}
