//! Order-statistic score prediction (§3.1.3).
//!
//! For i.i.d. samples `X₁..X_n ~ F`, the expected value of the `i`-th order
//! statistic (i-th smallest) is approximately `F⁻¹(i/(n+1))` (David &
//! Nagaraja, *Order Statistics*, the paper's ref \[7\]). The rank-`k`
//! answer *from the top* is the `(n−k+1)`-th order statistic, so
//!
//! ```text
//! E[score at rank k] ≈ F⁻¹((n − k + 1)/(n + 1))
//! ```

use crate::piecewise::Distribution;

/// Expected score of the answer at `rank` (1-based from the top) among an
/// estimated `n` answers drawn from `dist`.
///
/// Returns `None` when the query is not expected to have `rank` answers at
/// all (`n < rank`) — the caller treats this as "the original query cannot
/// fill the top-k", which makes every relaxation potentially useful.
///
/// `n` is fractional because it comes from cardinality *estimates*.
pub fn expected_score_at_rank<D: Distribution + ?Sized>(
    dist: &D,
    n: f64,
    rank: usize,
) -> Option<f64> {
    assert!(rank >= 1, "ranks are 1-based");
    if !(n.is_finite()) || n < rank as f64 {
        return None;
    }
    let p = (n - rank as f64 + 1.0) / (n + 1.0);
    Some(dist.quantile(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::TwoBucketHistogram;
    use crate::piecewise::PiecewiseConstantPdf;

    #[test]
    fn uniform_order_statistics() {
        let u = PiecewiseConstantPdf::new(vec![0.0, 1.0], vec![1.0]);
        // Max of 9 uniforms ≈ 0.9, median rank ≈ 0.5.
        let top = expected_score_at_rank(&u, 9.0, 1).unwrap();
        assert!((top - 0.9).abs() < 1e-9);
        let mid = expected_score_at_rank(&u, 9.0, 5).unwrap();
        assert!((mid - 0.5).abs() < 1e-9);
        let last = expected_score_at_rank(&u, 9.0, 9).unwrap();
        assert!((last - 0.1).abs() < 1e-9);
    }

    #[test]
    fn rank_beyond_n_is_none() {
        let u = PiecewiseConstantPdf::new(vec![0.0, 1.0], vec![1.0]);
        assert!(expected_score_at_rank(&u, 3.0, 4).is_none());
        assert!(expected_score_at_rank(&u, 0.0, 1).is_none());
        assert!(expected_score_at_rank(&u, 2.9, 3).is_none());
        assert!(expected_score_at_rank(&u, 3.0, 3).is_some());
    }

    #[test]
    fn monotone_in_rank() {
        let h = TwoBucketHistogram::new(1.0, 0.3, 0.8);
        let s1 = expected_score_at_rank(&h, 100.0, 1).unwrap();
        let s10 = expected_score_at_rank(&h, 100.0, 10).unwrap();
        let s50 = expected_score_at_rank(&h, 100.0, 50).unwrap();
        assert!(s1 > s10);
        assert!(s10 > s50);
    }

    #[test]
    fn more_answers_raise_expected_top() {
        let h = TwoBucketHistogram::new(1.0, 0.3, 0.8);
        let few = expected_score_at_rank(&h, 5.0, 1).unwrap();
        let many = expected_score_at_rank(&h, 500.0, 1).unwrap();
        assert!(many > few);
        assert!(many <= 1.0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn rank_zero_panics() {
        let u = PiecewiseConstantPdf::new(vec![0.0, 1.0], vec![1.0]);
        let _ = expected_score_at_rank(&u, 5.0, 0);
    }

    #[test]
    fn non_finite_n_is_none() {
        // Cardinality estimates are arithmetic over floats — a degenerate
        // estimator can hand us NaN or ∞. Both must refuse to predict
        // rather than produce a garbage quantile argument.
        let u = PiecewiseConstantPdf::new(vec![0.0, 1.0], vec![1.0]);
        assert!(expected_score_at_rank(&u, f64::NAN, 1).is_none());
        assert!(expected_score_at_rank(&u, f64::INFINITY, 1).is_none());
        assert!(expected_score_at_rank(&u, f64::NEG_INFINITY, 1).is_none());
    }
}
