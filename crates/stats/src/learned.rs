//! Online learned score predictions from the speculation ledger
//! (ROADMAP item 3).
//!
//! PLANGEN's `E_Q(k)` / `E_{Q'}(1)` predictions come from static two-bucket
//! histograms. Every verified speculative run, however, *observes* the real
//! quantities those estimates try to predict: the k-th best score the query
//! actually produced, and the best answer score each relaxed pattern's
//! relaxations actually contributed. This module closes that loop:
//!
//! * [`FeatureVector`] — the per-query-shape features extracted at
//!   observation time (predicate selectivity, score skew, σᵣ, `k`, join
//!   arity, relaxation-rule fan-out);
//! * [`OnlineModel`] — an incremental ridge regression per shape bucket over
//!   the regressors `[1, ln(1+k)]`: within a bucket every other feature is
//!   constant (the bucket *is* the shape), so `k` is the one axis the model
//!   generalizes over, by interpolation only — predictions outside the
//!   observed `k` range are refused;
//! * a **confidence gate**: a bucket predicts only once it holds at least
//!   [`MIN_SAMPLES`] observations and its residual spread is within
//!   [`MAX_RELATIVE_SPREAD`] of the prediction. Below the gate the caller
//!   falls back to the static histogram estimate, byte-identically.
//!
//! [`LearnedModels`] holds two tables keyed by the canonical
//! [`QueryShapeKey`]: the k-th-score model per query shape, and the
//! relaxed-best model per (query shape, pattern). The
//! [`StatsCatalog`](crate::StatsCatalog) owns one `LearnedModels` behind a
//! lock, bumps its generation whenever an observation **materially revises**
//! a gated prediction (so the plan cache drops plans built on the since-
//! revised estimate), and clears the models on
//! [`invalidate_stats`](crate::StatsCatalog::invalidate_stats) — a new graph
//! epoch changes the score distributions the observations were drawn from.

use crate::histogram::PatternStats;
use sparql::StatsKey;
use specqp_common::FxHashMap;

/// Observations a bucket needs before its predictions pass the gate.
pub const MIN_SAMPLES: u64 = 3;

/// Maximum residual spread, relative to the prediction, the gate accepts:
/// `sqrt(RSS/n) / max(|prediction|, ε) ≤ 0.25`.
pub const MAX_RELATIVE_SPREAD: f64 = 0.25;

/// Relative movement of a gated prediction that counts as a **material
/// revision** (and therefore bumps the catalog generation): 5%.
pub const REVISION_THRESHOLD: f64 = 0.05;

/// Ridge regularizer — keeps the 2×2 solve well-conditioned when the bucket
/// has only seen one `k` value (the regressor matrix is then rank-1).
const RIDGE_LAMBDA: f64 = 1e-3;

/// Floor for relative comparisons near zero.
const EPS: f64 = 1e-9;

/// Per-query-shape features extracted from the statistics that were current
/// when the observation was made. Within one [`QueryShapeKey`] bucket every
/// component except `k` is constant, so the vector doubles as the bucket's
/// identity/drift record; `k` is the regression axis.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FeatureVector {
    /// Selectivity proxy: `Σ ln(1 + mᵢ)` over the query's patterns.
    pub selectivity: f64,
    /// Score skew: mean head-mass ratio `Sᵢᵣ / Sᵢₘ` over the patterns.
    pub skew: f64,
    /// Mean 80%-mass boundary `σᵢᵣ` over the patterns.
    pub sigma: f64,
    /// The requested rank `k`.
    pub k: f64,
    /// Join arity (number of triple patterns).
    pub arity: f64,
    /// Total relaxation-rule fan-out over the patterns.
    pub fanout: f64,
}

impl FeatureVector {
    /// Extracts the features from the per-pattern statistics of a query
    /// (entries are `None` for patterns with no matches), the requested `k`
    /// and the total relaxation-rule fan-out.
    pub fn from_stats(stats: &[Option<PatternStats>], k: usize, fanout: usize) -> Self {
        let arity = stats.len();
        let mut selectivity = 0.0;
        let mut skew = 0.0;
        let mut sigma = 0.0;
        let mut present = 0usize;
        for s in stats.iter().flatten() {
            selectivity += (1.0 + s.m as f64).ln();
            if s.s_m > EPS {
                skew += s.s_r / s.s_m;
            }
            sigma += s.sigma_r;
            present += 1;
        }
        if present > 0 {
            skew /= present as f64;
            sigma /= present as f64;
        }
        FeatureVector {
            selectivity,
            skew,
            sigma,
            k: k as f64,
            arity: arity as f64,
            fanout: fanout as f64,
        }
    }
}

/// Canonical identity of a query's pattern multiset: the patterns'
/// [`StatsKey`]s, sorted. Variable names and pattern order are erased, so
/// `{?x a b . ?x c d}` and `{?y c d . ?y a b}` share one learned bucket —
/// the same erasure the plan cache's `QueryShape` performs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct QueryShapeKey(Vec<StatsKey>);

impl QueryShapeKey {
    /// Builds the canonical key from the query's pattern stats keys.
    pub fn new(mut keys: Vec<StatsKey>) -> Self {
        keys.sort_unstable();
        QueryShapeKey(keys)
    }

    /// The sorted pattern keys.
    pub fn keys(&self) -> &[StatsKey] {
        &self.0
    }
}

/// One shape bucket: an incremental ridge regression of the observed score
/// on `x = ln(1+k)`, kept as sufficient statistics so observations stream in
/// O(1) and the 2×2 solve happens at predict time.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineModel {
    n: u64,
    sx: f64,
    sxx: f64,
    sy: f64,
    sxy: f64,
    syy: f64,
    x_min: f64,
    x_max: f64,
    /// Features of the first observation — the bucket's context record.
    features: FeatureVector,
}

impl OnlineModel {
    fn regressor(k: usize) -> f64 {
        (1.0 + k as f64).ln()
    }

    /// Number of observations absorbed.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// The features recorded with the bucket's first observation.
    pub fn features(&self) -> FeatureVector {
        self.features
    }

    /// Solves the ridge system and returns `(prediction_at_x, rms_residual)`.
    fn solve(&self, x: f64) -> (f64, f64) {
        let n = self.n as f64;
        let det = (n + RIDGE_LAMBDA) * (self.sxx + RIDGE_LAMBDA) - self.sx * self.sx;
        let w0 = ((self.sxx + RIDGE_LAMBDA) * self.sy - self.sx * self.sxy) / det;
        let w1 = ((n + RIDGE_LAMBDA) * self.sxy - self.sx * self.sy) / det;
        let pred = (w0 + w1 * x).max(0.0);
        let rss = (self.syy - w0 * self.sy - w1 * self.sxy).max(0.0);
        (pred, (rss / n).sqrt())
    }

    /// The gated prediction for rank `k`: `None` until the bucket holds
    /// [`MIN_SAMPLES`] observations, whenever `k` falls outside the observed
    /// range (no extrapolation — the residuals say nothing about it), or
    /// when the residual spread exceeds [`MAX_RELATIVE_SPREAD`] relative to
    /// the prediction.
    pub fn predict(&self, k: usize) -> Option<f64> {
        if self.n < MIN_SAMPLES {
            return None;
        }
        let x = Self::regressor(k);
        if x < self.x_min - EPS || x > self.x_max + EPS {
            return None;
        }
        let (pred, spread) = self.solve(x);
        if spread > MAX_RELATIVE_SPREAD * pred.abs().max(EPS) {
            return None;
        }
        Some(pred)
    }

    /// Absorbs one observation `(k, score)`. Returns `true` when the
    /// **gated** prediction at this `k` materially revised: the gate flipped
    /// (open↔closed) or a confident value moved by more than
    /// [`REVISION_THRESHOLD`] relative — the signals after which plans built
    /// on the old prediction must be dropped.
    pub fn observe(&mut self, features: FeatureVector, k: usize, score: f64) -> bool {
        let before = self.predict(k);
        let x = Self::regressor(k);
        if self.n == 0 {
            self.features = features;
            self.x_min = x;
            self.x_max = x;
        } else {
            self.x_min = self.x_min.min(x);
            self.x_max = self.x_max.max(x);
        }
        self.n += 1;
        self.sx += x;
        self.sxx += x * x;
        self.sy += score;
        self.sxy += x * score;
        self.syy += score * score;
        let after = self.predict(k);
        match (before, after) {
            (None, None) => false,
            (Some(b), Some(a)) => (a - b).abs() > REVISION_THRESHOLD * b.abs().max(EPS),
            _ => true,
        }
    }
}

/// One verified run's worth of learned evidence, recorded in a single
/// catalog write.
#[derive(Clone, Debug)]
pub struct LearnedObservation {
    /// The query's canonical shape.
    pub shape: QueryShapeKey,
    /// Features current at observation time.
    pub features: FeatureVector,
    /// The requested rank.
    pub k: usize,
    /// The observed k-th best score — only when the top-k actually filled
    /// (an under-filled run has no k-th score to learn from).
    pub kth_score: Option<f64>,
    /// Per relaxed pattern (with registered rules): the best final-answer
    /// score its relaxations contributed, `0.0` when they contributed
    /// nothing — the observation of `E_{Q'}(1)`.
    pub relaxed_best: Vec<(StatsKey, f64)>,
}

/// Cumulative counters for the learned layer (service/bench observability).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LearnedCounters {
    /// Observations absorbed ([`LearnedModels::record`] calls).
    pub observations: u64,
    /// Gated predictions served to the planner.
    pub predictions: u64,
    /// Material revisions (each bumped the catalog generation).
    pub revisions: u64,
}

/// The two learned tables: k-th-score models per query shape and
/// relaxed-best models per (query shape, pattern).
///
/// Predictions are `&self` (the catalog serves them under a read lock on
/// the planning hot path — the served-prediction counter is atomic for that
/// reason); observations are `&mut self` (one write lock per verified run).
#[derive(Debug, Default)]
pub struct LearnedModels {
    kth: FxHashMap<QueryShapeKey, OnlineModel>,
    relaxed: FxHashMap<QueryShapeKey, FxHashMap<StatsKey, OnlineModel>>,
    observations: u64,
    revisions: u64,
    predictions: std::sync::atomic::AtomicU64,
}

impl LearnedModels {
    /// Absorbs one run's observation; returns the number of material
    /// revisions (the caller bumps its generation once per revision).
    pub fn record(&mut self, obs: LearnedObservation) -> u64 {
        let mut revisions = 0u64;
        self.observations += 1;
        if let Some(score) = obs.kth_score {
            let model = self.kth.entry(obs.shape.clone()).or_default();
            if model.observe(obs.features, obs.k, score) {
                revisions += 1;
            }
        }
        if !obs.relaxed_best.is_empty() {
            let per_pattern = self.relaxed.entry(obs.shape).or_default();
            for (key, score) in obs.relaxed_best {
                let model = per_pattern.entry(key).or_default();
                if model.observe(obs.features, obs.k, score) {
                    revisions += 1;
                }
            }
        }
        self.revisions += revisions;
        revisions
    }

    fn count_prediction(&self) {
        self.predictions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Gated k-th-score prediction for a query shape.
    pub fn kth(&self, shape: &QueryShapeKey, k: usize) -> Option<f64> {
        let p = self.kth.get(shape)?.predict(k);
        if p.is_some() {
            self.count_prediction();
        }
        p
    }

    /// Gated relaxed-best prediction for one pattern of a query shape.
    pub fn relaxed_best(&self, shape: &QueryShapeKey, key: &StatsKey, k: usize) -> Option<f64> {
        let p = self.relaxed.get(shape)?.get(key)?.predict(k);
        if p.is_some() {
            self.count_prediction();
        }
        p
    }

    /// Number of (k-th, relaxed-best) buckets.
    pub fn len(&self) -> (usize, usize) {
        (self.kth.len(), self.relaxed.values().map(|m| m.len()).sum())
    }

    /// `true` when no bucket exists yet.
    pub fn is_empty(&self) -> bool {
        self.kth.is_empty() && self.relaxed.is_empty()
    }

    /// The cumulative counters.
    pub fn counters(&self) -> LearnedCounters {
        LearnedCounters {
            observations: self.observations,
            predictions: self.predictions.load(std::sync::atomic::Ordering::Relaxed),
            revisions: self.revisions,
        }
    }

    /// Drops every bucket (graph epoch changed — the distributions the
    /// observations came from no longer exist). Counters survive; they are
    /// lifetime totals.
    pub fn clear(&mut self) {
        self.kth.clear();
        self.relaxed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::{TriplePattern, Var};
    use specqp_common::TermId;

    fn key(o: u32) -> StatsKey {
        TriplePattern::new(Var(0), TermId(1), TermId(o)).stats_key()
    }

    fn shape(os: &[u32]) -> QueryShapeKey {
        QueryShapeKey::new(os.iter().map(|&o| key(o)).collect())
    }

    fn feats() -> FeatureVector {
        FeatureVector {
            selectivity: 3.0,
            skew: 0.8,
            sigma: 0.3,
            k: 10.0,
            arity: 2.0,
            fanout: 1.0,
        }
    }

    #[test]
    fn shape_key_erases_pattern_order() {
        assert_eq!(shape(&[2, 3]), shape(&[3, 2]));
        assert_ne!(shape(&[2, 3]), shape(&[2, 4]));
    }

    #[test]
    fn gate_stays_closed_under_min_samples() {
        let mut m = OnlineModel::default();
        assert!(!m.observe(feats(), 10, 1.5));
        assert!(!m.observe(feats(), 10, 1.5));
        assert_eq!(m.predict(10), None, "2 < MIN_SAMPLES");
        // The third consistent observation opens the gate — a revision.
        assert!(m.observe(feats(), 10, 1.5));
        let p = m.predict(10).expect("gate open");
        assert!(
            (p - 1.5).abs() < 0.01,
            "calibrated to the observations: {p}"
        );
    }

    #[test]
    fn stable_observations_do_not_keep_revising() {
        let mut m = OnlineModel::default();
        for _ in 0..2 {
            m.observe(feats(), 10, 2.0);
        }
        assert!(m.observe(feats(), 10, 2.0), "gate opens once");
        for _ in 0..10 {
            assert!(
                !m.observe(feats(), 10, 2.0),
                "identical evidence must not bump the generation forever"
            );
        }
    }

    #[test]
    fn noisy_bucket_never_passes_the_gate() {
        let mut m = OnlineModel::default();
        for (i, y) in [0.1, 3.0, 0.2, 2.5, 0.05].iter().enumerate() {
            m.observe(feats(), 10, *y);
            assert_eq!(m.predict(10), None, "spread too wide at obs {i}");
        }
    }

    #[test]
    fn no_extrapolation_outside_observed_k_range() {
        let mut m = OnlineModel::default();
        for k in [5, 10, 20] {
            m.observe(feats(), k, 1.0);
        }
        assert!(m.predict(10).is_some(), "interpolation is allowed");
        assert!(m.predict(5).is_some() && m.predict(20).is_some());
        assert_eq!(m.predict(3), None, "below the observed range");
        assert_eq!(m.predict(40), None, "above the observed range");
    }

    #[test]
    fn regression_tracks_k_dependence() {
        // Score falls with rank: y = 2 - 0.5·ln(1+k).
        let mut m = OnlineModel::default();
        for k in [1, 4, 9, 16, 25] {
            let y = 2.0 - 0.5 * (1.0 + k as f64).ln();
            m.observe(feats(), k, y);
        }
        let p9 = m.predict(9).expect("confident fit");
        assert!((p9 - (2.0 - 0.5 * 10.0_f64.ln())).abs() < 0.05, "{p9}");
        let p4 = m.predict(4).unwrap();
        assert!(p4 > p9, "shallower ranks predict higher scores");
    }

    #[test]
    fn zero_scores_are_confidently_zero() {
        // A futile relaxation contributes nothing, run after run: the model
        // must confidently predict 0 (which is what lets PLANGEN prune).
        let mut m = OnlineModel::default();
        for _ in 0..3 {
            m.observe(feats(), 10, 0.0);
        }
        assert_eq!(m.predict(10), Some(0.0));
    }

    #[test]
    fn material_value_move_is_a_revision() {
        let mut m = OnlineModel::default();
        for _ in 0..5 {
            m.observe(feats(), 10, 1.0);
        }
        assert!(m.predict(10).is_some());
        // A big swing either revises the value or closes the gate — both
        // are material.
        let revised = m.observe(feats(), 10, 3.0);
        assert!(revised);
    }

    #[test]
    fn models_route_to_separate_buckets() {
        let mut models = LearnedModels::default();
        let s = shape(&[2, 3]);
        for _ in 0..3 {
            models.record(LearnedObservation {
                shape: s.clone(),
                features: feats(),
                k: 10,
                kth_score: Some(1.2),
                relaxed_best: vec![(key(2), 0.0), (key(3), 0.7)],
            });
        }
        assert_eq!(models.len(), (1, 2));
        let kth = models.kth(&s, 10).expect("confident after 3 samples");
        assert!((kth - 1.2).abs() < 0.01, "{kth}");
        assert_eq!(models.relaxed_best(&s, &key(2), 10), Some(0.0));
        let rb = models.relaxed_best(&s, &key(3), 10).unwrap();
        assert!((rb - 0.7).abs() < 0.01);
        assert_eq!(models.kth(&shape(&[9]), 10), None, "unknown shape");
        let c = models.counters();
        assert_eq!(c.observations, 3);
        assert!(c.predictions >= 3);
        assert!(c.revisions >= 1, "the gate opened at least once");

        models.clear();
        assert!(models.is_empty());
        assert_eq!(models.kth(&s, 10), None, "cleared on epoch change");
        assert_eq!(models.counters().observations, 3, "counters are lifetime");
    }

    #[test]
    fn feature_extraction_from_stats() {
        let a = PatternStats {
            m: 99,
            sigma_r: 0.4,
            s_r: 8.0,
            s_m: 10.0,
        };
        let f = FeatureVector::from_stats(&[Some(a), None], 7, 3);
        assert!((f.selectivity - 100.0_f64.ln()).abs() < 1e-9);
        assert!((f.skew - 0.8).abs() < 1e-9);
        assert!((f.sigma - 0.4).abs() < 1e-9);
        assert_eq!(f.k, 7.0);
        assert_eq!(f.arity, 2.0);
        assert_eq!(f.fanout, 3.0);
    }
}
