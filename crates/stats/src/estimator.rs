//! The expected-score estimator (§3.1.2–§3.1.3): convolution of per-pattern
//! histograms, refit, and order-statistic score prediction.

use crate::cardinality::CardinalityEstimator;
use crate::catalog::StatsCatalog;
use crate::histogram::{TwoBucketHistogram, HEAD_FRACTION};
use crate::order_stats::expected_score_at_rank;
use crate::piecewise::{Distribution, PiecewiseConstantPdf, PiecewiseLinearPdf};
use kgstore::KnowledgeGraph;
use sparql::TriplePattern;

/// How the multi-piecewise-linear convolution result is compressed before
/// the next convolution step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RefitMode {
    /// Refit to the paper's two-bucket histogram after every convolution
    /// (§3.1.2: "This again results in a two-bucket histogram") — the
    /// default, cheapest mode.
    #[default]
    TwoBucket,
    /// Keep an `n`-bucket histogram instead — the "multi-bucket histograms"
    /// the paper names as the higher-accuracy, higher-planning-cost
    /// alternative (§4.5.2). Used by the `estimator` ablation bench.
    MultiBucket(usize),
}

/// The estimated score distribution of a query's answers together with the
/// estimated answer count.
#[derive(Clone, Debug)]
pub struct QueryEstimate {
    /// The final (possibly refit) score density; `None` when some pattern
    /// has no matches at all, i.e. the query provably has zero answers.
    pub dist: Option<PiecewiseConstantPdf>,
    /// Estimated number of answers `n` (0 when `dist` is `None`).
    pub n: f64,
}

impl QueryEstimate {
    /// Expected score at `rank` (1-based from the top): `E[X₍ₙ₋ᵣₐₙₖ₊₁₎] ≈
    /// F⁻¹((n−rank+1)/(n+1))`. `None` when fewer than `rank` answers are
    /// expected.
    pub fn expected_score_at_rank(&self, rank: usize) -> Option<f64> {
        let dist = self.dist.as_ref()?;
        expected_score_at_rank(dist, self.n, rank)
    }

    /// Expected best (rank-1) score.
    pub fn expected_top_score(&self) -> Option<f64> {
        self.expected_score_at_rank(1)
    }
}

/// Refits a convolution result to the two-bucket shape: the boundary σ is
/// the score below which [`1 − HEAD_FRACTION`] of the *score mass* lies, and
/// the head bucket gets [`HEAD_FRACTION`] of the probability mass — exactly
/// the structure [`PatternStats::histogram`](crate::PatternStats::histogram)
/// builds from raw data.
pub fn refit_two_bucket(pl: &PiecewiseLinearPdf) -> TwoBucketHistogram {
    let domain = pl.domain_max();
    let total_score = pl.score_mass();
    if total_score <= 0.0 || !total_score.is_finite() {
        return TwoBucketHistogram::new(domain.max(1e-9), domain / 2.0, 0.5);
    }
    let target_tail = (1.0 - HEAD_FRACTION) * total_score;
    // partial_score_mass(0, x) is continuous and increasing — bisect.
    let (mut lo, mut hi) = (0.0_f64, domain);
    for _ in 0..64 {
        let mid = (lo + hi) / 2.0;
        if pl.partial_score_mass(0.0, mid) < target_tail {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let sigma = (lo + hi) / 2.0;
    TwoBucketHistogram::new(domain, sigma, HEAD_FRACTION)
}

/// The expected-score estimator: combines the [`StatsCatalog`] (per-pattern
/// histograms) with a [`CardinalityEstimator`] (answer counts) to produce
/// [`QueryEstimate`]s for arbitrary weighted pattern sets.
pub struct ScoreEstimator<'a, C: CardinalityEstimator + ?Sized> {
    catalog: &'a StatsCatalog,
    cardinality: &'a C,
    mode: RefitMode,
}

impl<'a, C: CardinalityEstimator + ?Sized> ScoreEstimator<'a, C> {
    /// Creates an estimator with the paper-default two-bucket refit.
    pub fn new(catalog: &'a StatsCatalog, cardinality: &'a C) -> Self {
        ScoreEstimator {
            catalog,
            cardinality,
            mode: RefitMode::TwoBucket,
        }
    }

    /// Creates an estimator with an explicit refit mode.
    pub fn with_mode(catalog: &'a StatsCatalog, cardinality: &'a C, mode: RefitMode) -> Self {
        ScoreEstimator {
            catalog,
            cardinality,
            mode,
        }
    }

    /// The refit mode in use.
    pub fn mode(&self) -> RefitMode {
        self.mode
    }

    /// Estimates the score distribution and answer count of the query whose
    /// patterns (with per-pattern relaxation weights; 1.0 = not relaxed) are
    /// `weighted` (§3.1.2).
    ///
    /// The per-pattern pdfs come from the catalog; a pattern's pdf is scaled
    /// by its weight (`X′ = w·X`, Def. 8); pdfs are folded left-to-right by
    /// convolution with refit after each step; `n` comes from the
    /// cardinality estimator over the *un-weighted* pattern list.
    pub fn estimate(
        &self,
        graph: &KnowledgeGraph,
        weighted: &[(TriplePattern, f64)],
    ) -> QueryEstimate {
        if weighted.is_empty() {
            return QueryEstimate { dist: None, n: 0.0 };
        }
        let mut folded: Option<PiecewiseConstantPdf> = None;
        for (pattern, weight) in weighted {
            let Some(stats) = self.catalog.stats(graph, pattern) else {
                return QueryEstimate { dist: None, n: 0.0 };
            };
            debug_assert!(*weight > 0.0 && *weight <= 1.0, "weight {weight}");
            let hist = stats.histogram().scale(*weight).to_piecewise_constant();
            folded = Some(match folded {
                None => hist,
                Some(acc) => {
                    let pl = acc.convolve(&hist);
                    match self.mode {
                        RefitMode::TwoBucket => refit_two_bucket(&pl).to_piecewise_constant(),
                        RefitMode::MultiBucket(n) => pl.to_piecewise_constant(n),
                    }
                }
            });
        }
        let patterns: Vec<TriplePattern> = weighted.iter().map(|(p, _)| *p).collect();
        let n = self.cardinality.cardinality(graph, &patterns);
        if n <= 0.0 {
            return QueryEstimate { dist: None, n: 0.0 };
        }
        QueryEstimate { dist: folded, n }
    }

    /// Convenience: estimate for unweighted (original) patterns.
    pub fn estimate_original(
        &self,
        graph: &KnowledgeGraph,
        patterns: &[TriplePattern],
    ) -> QueryEstimate {
        let weighted: Vec<(TriplePattern, f64)> = patterns.iter().map(|p| (*p, 1.0)).collect();
        self.estimate(graph, &weighted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::ExactCardinality;
    use kgstore::{KnowledgeGraph, KnowledgeGraphBuilder};
    use sparql::Var;

    /// A graph where 100 entities are `big` with power-law scores and a
    /// subset is `small`.
    fn graph() -> KnowledgeGraph {
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..100 {
            let score = 1000.0 / (i as f64 + 1.0);
            b.add(&format!("e{i}"), "type", "big", score);
            if i % 2 == 0 {
                b.add(&format!("e{i}"), "type", "even", score * 0.7);
            }
        }
        b.build()
    }

    fn pat(g: &KnowledgeGraph, class: &str) -> TriplePattern {
        let d = g.dictionary();
        TriplePattern::new(Var(0), d.lookup("type").unwrap(), d.lookup(class).unwrap())
    }

    #[test]
    fn single_pattern_estimate() {
        let g = graph();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let est = ScoreEstimator::new(&catalog, &card);
        let e = est.estimate_original(&g, &[pat(&g, "big")]);
        assert_eq!(e.n, 100.0);
        let top = e.expected_top_score().unwrap();
        assert!(top > 0.8 && top <= 1.0, "top={top}");
        // Deep ranks land in the tail.
        let deep = e.expected_score_at_rank(90).unwrap();
        assert!(deep < 0.2, "deep={deep}");
    }

    #[test]
    fn two_pattern_estimate_domain_and_rank() {
        let g = graph();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let est = ScoreEstimator::new(&catalog, &card);
        let e = est.estimate_original(&g, &[pat(&g, "big"), pat(&g, "even")]);
        assert_eq!(e.n, 50.0);
        let top = e.expected_top_score().unwrap();
        assert!(top > 1.0 && top <= 2.0, "top={top}");
        assert!(e.expected_score_at_rank(51).is_none());
    }

    #[test]
    fn weighting_caps_the_top_score() {
        let g = graph();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let est = ScoreEstimator::new(&catalog, &card);
        let w = 0.6;
        let e = est.estimate(&g, &[(pat(&g, "big"), w)]);
        let top = e.expected_top_score().unwrap();
        assert!(top <= w + 1e-9, "top={top} must be ≤ weight {w}");
        assert!(top > w * 0.8);
    }

    #[test]
    fn empty_pattern_yields_no_distribution() {
        let g = graph();
        let d = g.dictionary();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let est = ScoreEstimator::new(&catalog, &card);
        let ghost = TriplePattern::new(Var(0), d.lookup("type").unwrap(), d.lookup("e0").unwrap());
        let e = est.estimate_original(&g, &[pat(&g, "big"), ghost]);
        assert!(e.dist.is_none());
        assert_eq!(e.n, 0.0);
        assert!(e.expected_top_score().is_none());
    }

    /// Pins the `None`-propagation contract of [`QueryEstimate`] across all
    /// degenerate inputs: a dead distribution or an unfillable rank must
    /// surface as `None` (never a panic, never a leaked `Some`), because
    /// PLANGEN reads `None` as "the original query cannot fill the top-k".
    #[test]
    fn degenerate_ranks_propagate_none() {
        let g = graph();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let est = ScoreEstimator::new(&catalog, &card);

        // An empty pattern list has no distribution and no answers.
        let empty = est.estimate(&g, &[]);
        assert!(empty.dist.is_none());
        assert_eq!(empty.n, 0.0);
        assert!(empty.expected_top_score().is_none());
        assert!(empty.expected_score_at_rank(1_000_000).is_none());

        // dist == None after a zero-match convolution: every rank is None,
        // including rank 1 and absurdly deep ranks.
        let none = QueryEstimate { dist: None, n: 0.0 };
        for rank in [1, 2, 50, usize::MAX] {
            assert!(none.expected_score_at_rank(rank).is_none());
        }

        // n == 0 with a live distribution (cannot arise from `estimate`,
        // which normalizes to dist=None, but the struct is public): rank 1
        // already exceeds the answer count.
        let hollow = QueryEstimate {
            dist: Some(PiecewiseConstantPdf::new(vec![0.0, 1.0], vec![1.0])),
            n: 0.0,
        };
        assert!(hollow.expected_score_at_rank(1).is_none());

        // rank > n on a healthy estimate.
        let e = est.estimate_original(&g, &[pat(&g, "big")]);
        assert_eq!(e.n, 100.0);
        assert!(e.expected_score_at_rank(100).is_some());
        assert!(e.expected_score_at_rank(101).is_none());
    }

    #[test]
    fn refit_two_bucket_preserves_shape() {
        let u = PiecewiseConstantPdf::new(vec![0.0, 1.0], vec![1.0]);
        let tri = u.convolve(&u);
        let h = refit_two_bucket(&tri);
        assert!((h.domain_max() - 2.0).abs() < 1e-9);
        // σ should sit where 20% of the score mass is below: for the
        // triangle, total score mass = 1 (mean), tail target = 0.2.
        let sigma = h.sigma();
        assert!((tri.partial_score_mass(0.0, sigma) - 0.2).abs() < 1e-6);
        // Refit keeps the mean in the right neighbourhood.
        assert!((h.mean() - 1.0).abs() < 0.25);
    }

    #[test]
    fn multibucket_mode_is_closer_to_exact_than_twobucket() {
        let g = graph();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let q = [pat(&g, "big"), pat(&g, "even")];

        // Ground truth: exact expected top score via a fine-grained fold
        // without lossy refit (512-bucket projection ≈ exact).
        let exact = ScoreEstimator::with_mode(&catalog, &card, RefitMode::MultiBucket(512));
        let e_exact = exact.estimate_original(&g, &q);
        let t_exact = e_exact.expected_top_score().unwrap();

        let two = ScoreEstimator::new(&catalog, &card);
        let t_two = two.estimate_original(&g, &q).expected_top_score().unwrap();
        let multi = ScoreEstimator::with_mode(&catalog, &card, RefitMode::MultiBucket(64));
        let t_multi = multi
            .estimate_original(&g, &q)
            .expected_top_score()
            .unwrap();

        assert!(
            (t_multi - t_exact).abs() <= (t_two - t_exact).abs() + 1e-9,
            "multi {t_multi} should be at least as close to {t_exact} as two-bucket {t_two}"
        );
    }

    #[test]
    fn three_pattern_fold_stays_bounded() {
        let g = graph();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let est = ScoreEstimator::new(&catalog, &card);
        let q = [pat(&g, "big"), pat(&g, "even"), pat(&g, "big")];
        let e = est.estimate_original(&g, &q);
        if let Some(top) = e.expected_top_score() {
            assert!(top <= 3.0 + 1e-9);
            assert!(top > 0.0);
        }
        let d = e.dist.unwrap();
        assert!((d.domain_max() - 3.0).abs() < 1e-6);
        assert!((d.mass() - 1.0).abs() < 1e-6);
    }
}
