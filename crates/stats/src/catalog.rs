//! The statistics catalog: cached per-pattern [`PatternStats`].
//!
//! The paper precomputes its four per-pattern values offline ("precomputed
//! statistics about the distribution of scores", §1). The catalog plays that
//! role: [`StatsCatalog::precompute`] builds entries ahead of time, and any
//! pattern not yet covered is computed on first use and cached. Entries are
//! keyed by [`StatsKey`], which erases variable names, so `?x type singer`
//! and `?y type singer` share one entry.

use crate::histogram::PatternStats;
use kgstore::{KnowledgeGraph, PatternKey};
use sparql::{StatsKey, TriplePattern};
use specqp_common::FxHashMap;
use std::sync::RwLock;

/// Cached map from pattern identity to statistics (`None` = pattern has no
/// matches).
///
/// The cache is guarded by an `RwLock` so a catalog can be shared across
/// query-service worker threads; concurrent misses on the same key both
/// compute and the second insert is a harmless overwrite of an identical
/// value (computation is deterministic).
#[derive(Default, Debug)]
pub struct StatsCatalog {
    cache: RwLock<FxHashMap<StatsKey, Option<PatternStats>>>,
}

impl StatsCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.cache.read().expect("stats cache poisoned").len()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.read().expect("stats cache poisoned").is_empty()
    }

    /// Statistics for `pattern` over `graph` (computed and cached on first
    /// use). `None` when the pattern matches nothing.
    pub fn stats(&self, graph: &KnowledgeGraph, pattern: &TriplePattern) -> Option<PatternStats> {
        let key = pattern.stats_key();
        if let Some(cached) = self.cache.read().expect("stats cache poisoned").get(&key) {
            return *cached;
        }
        let computed = Self::compute(graph, pattern);
        self.cache
            .write()
            .expect("stats cache poisoned")
            .insert(key, computed);
        computed
    }

    /// Precomputes statistics for every pattern in `patterns` (the paper's
    /// offline statistics-building pass).
    pub fn precompute<'p>(
        &self,
        graph: &KnowledgeGraph,
        patterns: impl IntoIterator<Item = &'p TriplePattern>,
    ) {
        for p in patterns {
            let _ = self.stats(graph, p);
        }
    }

    fn compute(graph: &KnowledgeGraph, pattern: &TriplePattern) -> Option<PatternStats> {
        let (s, p, o) = pattern.const_parts();
        let list = graph.matches(PatternKey { s, p, o });
        // Patterns with repeated variables filter their match list; the
        // statistics must reflect the filtered scores.
        match pattern.shape() {
            sparql::PatternShape::Distinct => PatternStats::from_match_list(&list),
            shape => {
                let mut scores: Vec<f64> = Vec::new();
                for (t, score) in list.iter_triples() {
                    let keep = match shape {
                        sparql::PatternShape::SpEqual => t.s == t.p,
                        sparql::PatternShape::SoEqual => t.s == t.o,
                        sparql::PatternShape::PoEqual => t.p == t.o,
                        sparql::PatternShape::AllEqual => t.s == t.p && t.p == t.o,
                        sparql::PatternShape::Distinct => true,
                    };
                    if keep {
                        scores.push(score.value());
                    }
                }
                if scores.is_empty() {
                    return None;
                }
                let local_max = scores[0];
                if local_max > 0.0 {
                    for s in &mut scores {
                        *s /= local_max;
                    }
                }
                PatternStats::from_sorted_scores(&scores)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;
    use sparql::Var;

    fn graph() -> KnowledgeGraph {
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..20 {
            b.add(
                &format!("e{i}"),
                "type",
                "singer",
                100.0 / (i as f64 + 1.0), // power-law-ish
            );
        }
        b.add("x", "self", "x", 5.0);
        b.add("y", "self", "z", 50.0);
        b.build()
    }

    #[test]
    fn stats_cached_across_var_renames() {
        let g = graph();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let singer = d.lookup("singer").unwrap();
        let c = StatsCatalog::new();
        let a = c
            .stats(&g, &TriplePattern::new(Var(0), ty, singer))
            .unwrap();
        assert_eq!(c.len(), 1);
        let b = c
            .stats(&g, &TriplePattern::new(Var(7), ty, singer))
            .unwrap();
        assert_eq!(c.len(), 1, "renamed variable must hit the cache");
        assert_eq!(a, b);
        assert_eq!(a.m, 20);
    }

    #[test]
    fn missing_pattern_is_cached_none() {
        let g = graph();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let ghost = d.lookup("x").unwrap(); // exists but not as a class
        let c = StatsCatalog::new();
        assert!(c
            .stats(&g, &TriplePattern::new(Var(0), ty, ghost))
            .is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn repeated_var_stats_filter() {
        let g = graph();
        let d = g.dictionary();
        let sf = d.lookup("self").unwrap();
        let c = StatsCatalog::new();
        // ?x self ?x matches only <x self x> even though <y self z> scores
        // higher.
        let st = c
            .stats(&g, &TriplePattern::new(Var(0), sf, Var(0)))
            .unwrap();
        assert_eq!(st.m, 1);
        // Distinct-var version sees both.
        let st2 = c
            .stats(&g, &TriplePattern::new(Var(0), sf, Var(1)))
            .unwrap();
        assert_eq!(st2.m, 2);
    }

    #[test]
    fn precompute_fills_cache() {
        let g = graph();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let singer = d.lookup("singer").unwrap();
        let sf = d.lookup("self").unwrap();
        let pats = [
            TriplePattern::new(Var(0), ty, singer),
            TriplePattern::new(Var(0), sf, Var(1)),
        ];
        let c = StatsCatalog::new();
        c.precompute(&g, pats.iter());
        assert_eq!(c.len(), 2);
    }
}
