//! The statistics catalog: cached per-pattern [`PatternStats`] plus the
//! speculation-outcome feedback ledger.
//!
//! The paper precomputes its four per-pattern values offline ("precomputed
//! statistics about the distribution of scores", §1). The catalog plays that
//! role: [`StatsCatalog::precompute`] builds entries ahead of time, and any
//! pattern not yet covered is computed on first use and cached. Entries are
//! keyed by [`StatsKey`], which erases variable names, so `?x type singer`
//! and `?y type singer` share one entry.
//!
//! # Speculation feedback
//!
//! The speculation lifecycle (core crate) reports, per pattern shape, how
//! pruning that pattern's relaxations worked out at runtime:
//! [`StatsCatalog::record_speculation`] with `mis_speculated = true` when a
//! pruned pattern had to be escalated by a fallback stage, `false` when a
//! pruned pattern survived verification. The ledger turns those verdicts
//! into a planning bias — [`StatsCatalog::repeat_offender`] — that PLANGEN
//! consults to relax patterns whose pruning keeps going wrong, regardless of
//! what the (evidently miscalibrated) histogram estimate says.
//!
//! Every verdict that *flips* a pattern's offender bias bumps the catalog
//! [`generation`](StatsCatalog::generation). The plan cache stamps each
//! cached plan with the generation it was planned under and treats plans
//! from older generations as stale, so a refit ledger can never serve a
//! plan that pre-dates what the catalog has since learned.

use crate::histogram::PatternStats;
use crate::learned::{LearnedCounters, LearnedModels, LearnedObservation, QueryShapeKey};
use kgstore::{KnowledgeGraph, PatternKey};
use sparql::{StatsKey, TriplePattern};
use specqp_common::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Per-pattern-shape speculation outcomes: how often pruning this pattern's
/// relaxations was flagged as a mis-speculation vs verified clean.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpeculationOutcome {
    /// Runs where the pruned pattern was escalated by a fallback stage (or
    /// flagged suspect in detect-only mode).
    pub mis_speculations: u64,
    /// Runs where the pattern was pruned and the result verified clean.
    pub clean_prunes: u64,
}

impl SpeculationOutcome {
    /// `true` when the recorded evidence says pruning this pattern is a
    /// repeat offense: strictly more mis-speculations than clean prunes.
    pub fn repeat_offender(&self) -> bool {
        self.mis_speculations > self.clean_prunes
    }

    /// `true` when the pattern has been probed (some verdict is on file) and
    /// the evidence says its pruning is fine: at least as many clean
    /// verdicts as offenses. The lifecycle suppresses re-flagging settled
    /// patterns — without this, a shape whose true result is genuinely
    /// smaller than `k` would re-trigger the full escalation ladder on
    /// every run (or, in detect mode, oscillate the offender bias and bump
    /// the catalog generation each run, continuously invalidating the plan
    /// cache).
    pub fn settled_clean(&self) -> bool {
        self.mis_speculations + self.clean_prunes > 0 && self.clean_prunes >= self.mis_speculations
    }
}

/// Cached map from pattern identity to statistics (`None` = pattern has no
/// matches), plus the speculation-feedback ledger.
///
/// Both maps are guarded by `RwLock`s so a catalog can be shared across
/// query-service worker threads; concurrent stat misses on the same key both
/// compute and the second insert is a harmless overwrite of an identical
/// value (computation is deterministic).
#[derive(Default, Debug)]
pub struct StatsCatalog {
    cache: RwLock<FxHashMap<StatsKey, Option<PatternStats>>>,
    ledger: RwLock<FxHashMap<StatsKey, SpeculationOutcome>>,
    learned: RwLock<LearnedModels>,
    generation: AtomicU64,
}

impl StatsCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The feedback generation: starts at 0 and increases monotonically,
    /// once per recorded verdict that flips some pattern's
    /// [`repeat_offender`](SpeculationOutcome::repeat_offender) bias (i.e.
    /// once per change that can alter PLANGEN's output). Plans cached under
    /// an older generation must be re-planned.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Records one speculation verdict for the pattern shape `key`:
    /// `mis_speculated = true` when pruning the pattern's relaxations was a
    /// mistake the fallback had to repair, `false` when the pruned run
    /// verified clean. Returns `true` when the verdict flipped the pattern's
    /// offender bias (and therefore bumped the catalog generation).
    pub fn record_speculation(&self, key: StatsKey, mis_speculated: bool) -> bool {
        self.record_speculations(std::iter::once((key, mis_speculated))) > 0
    }

    /// Records a whole run's verdicts under at most **one** ledger write-lock
    /// acquisition — the engine's lifecycle reports every pruned pattern of a
    /// query at once, so service workers contend on the lock once per query
    /// instead of once per pattern. Returns the number of verdicts that
    /// flipped a pattern's offender bias (each flip bumps the catalog
    /// generation).
    ///
    /// Hot-path optimization: clean verdicts for patterns the ledger has
    /// never seen are **no-ops** — the ledger tracks outcomes only for
    /// patterns that have been part of at least one mis-speculation, so the
    /// overwhelmingly common all-clean run touches only the shared read
    /// lock and never serializes service workers on the write lock. (The
    /// cost is that a pattern's *first* offense flips its bias immediately
    /// instead of being damped by earlier unrecorded cleans; the engine's
    /// exoneration audit flips it back if the offense proves spurious.)
    pub fn record_speculations(&self, verdicts: impl IntoIterator<Item = (StatsKey, bool)>) -> u64 {
        let verdicts: Vec<(StatsKey, bool)> = verdicts.into_iter().collect();
        if verdicts.is_empty() {
            return 0;
        }
        let needs_write = verdicts.iter().any(|(_, mis)| *mis) || {
            let ledger = self.ledger.read().expect("speculation ledger poisoned");
            verdicts.iter().any(|(key, _)| ledger.contains_key(key))
        };
        if !needs_write {
            return 0;
        }
        self.write_verdicts(verdicts, false)
    }

    /// Records **probe** outcomes — verdicts backed by an actual paid-for
    /// re-execution (a fallback escalation) or provenance audit. Unlike
    /// [`record_speculations`](StatsCatalog::record_speculations), clean
    /// verdicts are always recorded, even for never-seen patterns: a probe's
    /// clean result is the evidence that marks a pattern
    /// [`settled_clean`](SpeculationOutcome::settled_clean), which is what
    /// stops the lifecycle from re-escalating a proven-futile shape forever.
    pub fn record_probes(&self, verdicts: impl IntoIterator<Item = (StatsKey, bool)>) -> u64 {
        self.write_verdicts(verdicts, true)
    }

    fn write_verdicts(
        &self,
        verdicts: impl IntoIterator<Item = (StatsKey, bool)>,
        force_cleans: bool,
    ) -> u64 {
        let verdicts: Vec<(StatsKey, bool)> = verdicts.into_iter().collect();
        if verdicts.is_empty() {
            return 0;
        }
        let mut ledger = self.ledger.write().expect("speculation ledger poisoned");
        let mut flips = 0u64;
        for (key, mis_speculated) in verdicts {
            if !mis_speculated && !force_cleans && !ledger.contains_key(&key) {
                continue;
            }
            let entry = ledger.entry(key).or_default();
            let was_offender = entry.repeat_offender();
            if mis_speculated {
                entry.mis_speculations += 1;
            } else {
                entry.clean_prunes += 1;
            }
            if entry.repeat_offender() != was_offender {
                // Bump while still holding the ledger lock so a concurrent
                // planner never observes the new bias under the old
                // generation.
                self.generation.fetch_add(1, Ordering::AcqRel);
                flips += 1;
            }
        }
        flips
    }

    /// Absorbs one verified run's learned observation (see
    /// [`crate::learned`]): the observed k-th score teaches the query
    /// shape's k-th model, each relaxed pattern's observed contribution
    /// teaches its relaxed-best model. Every **material revision** of a
    /// gated prediction bumps the catalog generation — while still holding
    /// the learned write lock, so a concurrent planner never observes the
    /// revised prediction under the old generation (the same ordering
    /// contract [`write_verdicts`](Self::record_speculations) upholds for
    /// ledger bias flips). Returns the number of revisions.
    pub fn record_learned(&self, obs: LearnedObservation) -> u64 {
        let mut learned = self.learned.write().expect("learned models poisoned");
        let revisions = learned.record(obs);
        for _ in 0..revisions {
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
        revisions
    }

    /// The learned k-th-score prediction for a query shape, when its
    /// confidence gate is open (`None` ⇒ fall back to the histogram
    /// estimate).
    pub fn learned_kth(&self, shape: &QueryShapeKey, k: usize) -> Option<f64> {
        self.learned
            .read()
            .expect("learned models poisoned")
            .kth(shape, k)
    }

    /// The learned relaxed-best prediction for one pattern of a query
    /// shape, when its confidence gate is open.
    pub fn learned_relaxed_best(
        &self,
        shape: &QueryShapeKey,
        key: &StatsKey,
        k: usize,
    ) -> Option<f64> {
        self.learned
            .read()
            .expect("learned models poisoned")
            .relaxed_best(shape, key, k)
    }

    /// Cumulative learned-layer counters (observations, served predictions,
    /// material revisions).
    pub fn learned_counters(&self) -> LearnedCounters {
        self.learned
            .read()
            .expect("learned models poisoned")
            .counters()
    }

    /// Drops every cached [`PatternStats`] entry and bumps the generation.
    ///
    /// Called when the underlying graph *changes* — the engine invokes this
    /// on observing a new [`Epoch`](kgstore::Epoch) from a live graph — so
    /// cardinalities and score distributions are re-derived from the new
    /// version on next use, and the generation bump makes the plan cache
    /// drop plans estimated against the old version on sight. The
    /// speculation ledger is deliberately **kept**: offender evidence is
    /// about pattern shapes, not a particular version, and drift is exactly
    /// when that evidence earns its keep. The **learned models** are
    /// dropped: their observations were drawn from the old version's score
    /// distributions, which a write batch may have reshaped arbitrarily.
    pub fn invalidate_stats(&self) {
        let mut cache = self.cache.write().expect("stats cache poisoned");
        cache.clear();
        self.learned
            .write()
            .expect("learned models poisoned")
            .clear();
        // Bump while holding the cache lock so a concurrent planner never
        // observes stale stats under the new generation.
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// The recorded outcomes for a pattern shape (all-zero when the ledger
    /// has never seen it).
    pub fn speculation_outcome(&self, key: &StatsKey) -> SpeculationOutcome {
        self.ledger
            .read()
            .expect("speculation ledger poisoned")
            .get(key)
            .copied()
            .unwrap_or_default()
    }

    /// PLANGEN's bias query: `true` when the ledger says pruning this
    /// pattern's relaxations keeps going wrong, so the planner should keep
    /// them regardless of the histogram estimate.
    pub fn repeat_offender(&self, key: &StatsKey) -> bool {
        self.speculation_outcome(key).repeat_offender()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.cache.read().expect("stats cache poisoned").len()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.read().expect("stats cache poisoned").is_empty()
    }

    /// Statistics for `pattern` over `graph` (computed and cached on first
    /// use). `None` when the pattern matches nothing.
    pub fn stats(&self, graph: &KnowledgeGraph, pattern: &TriplePattern) -> Option<PatternStats> {
        let key = pattern.stats_key();
        if let Some(cached) = self.cache.read().expect("stats cache poisoned").get(&key) {
            return *cached;
        }
        let computed = Self::compute(graph, pattern);
        self.cache
            .write()
            .expect("stats cache poisoned")
            .insert(key, computed);
        computed
    }

    /// Precomputes statistics for every pattern in `patterns` (the paper's
    /// offline statistics-building pass).
    pub fn precompute<'p>(
        &self,
        graph: &KnowledgeGraph,
        patterns: impl IntoIterator<Item = &'p TriplePattern>,
    ) {
        for p in patterns {
            let _ = self.stats(graph, p);
        }
    }

    fn compute(graph: &KnowledgeGraph, pattern: &TriplePattern) -> Option<PatternStats> {
        let (s, p, o) = pattern.const_parts();
        let list = graph.matches(PatternKey { s, p, o });
        // Patterns with repeated variables filter their match list; the
        // statistics must reflect the filtered scores.
        match pattern.shape() {
            sparql::PatternShape::Distinct => PatternStats::from_match_list(&list),
            shape => {
                let mut scores: Vec<f64> = Vec::new();
                for (t, score) in list.iter_triples() {
                    let keep = match shape {
                        sparql::PatternShape::SpEqual => t.s == t.p,
                        sparql::PatternShape::SoEqual => t.s == t.o,
                        sparql::PatternShape::PoEqual => t.p == t.o,
                        sparql::PatternShape::AllEqual => t.s == t.p && t.p == t.o,
                        sparql::PatternShape::Distinct => true,
                    };
                    if keep {
                        scores.push(score.value());
                    }
                }
                if scores.is_empty() {
                    return None;
                }
                let local_max = scores[0];
                if local_max > 0.0 {
                    for s in &mut scores {
                        *s /= local_max;
                    }
                }
                PatternStats::from_sorted_scores(&scores)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;
    use sparql::Var;

    fn graph() -> KnowledgeGraph {
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..20 {
            b.add(
                &format!("e{i}"),
                "type",
                "singer",
                100.0 / (i as f64 + 1.0), // power-law-ish
            );
        }
        b.add("x", "self", "x", 5.0);
        b.add("y", "self", "z", 50.0);
        b.build()
    }

    #[test]
    fn stats_cached_across_var_renames() {
        let g = graph();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let singer = d.lookup("singer").unwrap();
        let c = StatsCatalog::new();
        let a = c
            .stats(&g, &TriplePattern::new(Var(0), ty, singer))
            .unwrap();
        assert_eq!(c.len(), 1);
        let b = c
            .stats(&g, &TriplePattern::new(Var(7), ty, singer))
            .unwrap();
        assert_eq!(c.len(), 1, "renamed variable must hit the cache");
        assert_eq!(a, b);
        assert_eq!(a.m, 20);
    }

    #[test]
    fn missing_pattern_is_cached_none() {
        let g = graph();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let ghost = d.lookup("x").unwrap(); // exists but not as a class
        let c = StatsCatalog::new();
        assert!(c
            .stats(&g, &TriplePattern::new(Var(0), ty, ghost))
            .is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn repeated_var_stats_filter() {
        let g = graph();
        let d = g.dictionary();
        let sf = d.lookup("self").unwrap();
        let c = StatsCatalog::new();
        // ?x self ?x matches only <x self x> even though <y self z> scores
        // higher.
        let st = c
            .stats(&g, &TriplePattern::new(Var(0), sf, Var(0)))
            .unwrap();
        assert_eq!(st.m, 1);
        // Distinct-var version sees both.
        let st2 = c
            .stats(&g, &TriplePattern::new(Var(0), sf, Var(1)))
            .unwrap();
        assert_eq!(st2.m, 2);
    }

    #[test]
    fn ledger_counts_and_offender_bias() {
        let c = StatsCatalog::new();
        let key = TriplePattern::new(Var(0), specqp_common::TermId(1), specqp_common::TermId(2))
            .stats_key();
        assert_eq!(c.speculation_outcome(&key), SpeculationOutcome::default());
        assert!(!c.repeat_offender(&key));
        assert_eq!(c.generation(), 0);

        // First mis-speculation flips 0>0 → 1>0 and bumps the generation.
        assert!(c.record_speculation(key, true));
        assert!(c.repeat_offender(&key));
        assert_eq!(c.generation(), 1);

        // A second mis-speculation changes counts but not the bias: no bump.
        assert!(!c.record_speculation(key, true));
        assert_eq!(c.generation(), 1);
        assert_eq!(
            c.speculation_outcome(&key),
            SpeculationOutcome {
                mis_speculations: 2,
                clean_prunes: 0
            }
        );

        // Clean verdicts accumulate until they outweigh the misses; the
        // flip back (2 > 2 is false) bumps again.
        assert!(!c.record_speculation(key, false));
        assert!(c.repeat_offender(&key), "2 mis > 1 clean");
        assert!(c.record_speculation(key, false));
        assert!(
            !c.repeat_offender(&key),
            "2 mis vs 2 clean is not an offender"
        );
        assert_eq!(c.generation(), 2);
    }

    #[test]
    fn probe_records_cleans_for_fresh_keys_and_settles_them() {
        let c = StatsCatalog::new();
        let key = TriplePattern::new(Var(0), specqp_common::TermId(8), specqp_common::TermId(9))
            .stats_key();
        // A passive clean on a never-seen key is a no-op…
        assert_eq!(c.record_speculations([(key, false)]), 0);
        assert_eq!(c.speculation_outcome(&key), SpeculationOutcome::default());
        assert!(
            !c.speculation_outcome(&key).settled_clean(),
            "no evidence yet"
        );

        // …but a probe's clean result always lands and settles the pattern.
        assert_eq!(c.record_probes([(key, false)]), 0, "no bias flip");
        let outcome = c.speculation_outcome(&key);
        assert_eq!(outcome.clean_prunes, 1);
        assert!(outcome.settled_clean());
        assert_eq!(c.generation(), 0, "clean probes never bump the generation");

        // Once on file, passive cleans accumulate too.
        assert_eq!(c.record_speculations([(key, false)]), 0);
        assert_eq!(c.speculation_outcome(&key).clean_prunes, 2);

        // An offense unsettles only once it outweighs the cleans.
        c.record_probes([(key, true), (key, true)]);
        assert!(
            c.speculation_outcome(&key).settled_clean(),
            "2 mis vs 2 clean"
        );
        assert!(c.record_speculation(key, true), "3 > 2 flips the bias");
        assert!(!c.speculation_outcome(&key).settled_clean());
    }

    #[test]
    fn ledger_keys_erase_variable_names() {
        let c = StatsCatalog::new();
        let ty = specqp_common::TermId(3);
        let o = specqp_common::TermId(4);
        let a = TriplePattern::new(Var(0), ty, o).stats_key();
        let b = TriplePattern::new(Var(9), ty, o).stats_key();
        c.record_speculation(a, true);
        assert!(c.repeat_offender(&b), "renamed variable shares the entry");
    }

    #[test]
    fn learned_revisions_bump_generation_and_epoch_clears_models() {
        use crate::learned::{FeatureVector, LearnedObservation, QueryShapeKey};

        let c = StatsCatalog::new();
        let key = TriplePattern::new(Var(0), specqp_common::TermId(1), specqp_common::TermId(2))
            .stats_key();
        let shape = QueryShapeKey::new(vec![key]);
        let obs = || LearnedObservation {
            shape: shape.clone(),
            features: FeatureVector::default(),
            k: 10,
            kth_score: Some(1.5),
            relaxed_best: vec![(key, 0.6)],
        };
        assert_eq!(c.learned_kth(&shape, 10), None);
        assert_eq!(c.record_learned(obs()), 0, "below the gate: no revision");
        assert_eq!(c.record_learned(obs()), 0);
        assert_eq!(c.generation(), 0, "closed gates never invalidate plans");
        // Third consistent observation opens both gates: two revisions, two
        // generation bumps.
        assert_eq!(c.record_learned(obs()), 2);
        assert_eq!(c.generation(), 2);
        let kth = c.learned_kth(&shape, 10).expect("gate open");
        assert!((kth - 1.5).abs() < 0.01);
        let rb = c.learned_relaxed_best(&shape, &key, 10).expect("gate open");
        assert!((rb - 0.6).abs() < 0.01);
        // Steady state: identical evidence revises nothing.
        assert_eq!(c.record_learned(obs()), 0);
        assert_eq!(c.generation(), 2);
        let counters = c.learned_counters();
        assert_eq!(counters.observations, 4);
        assert_eq!(counters.revisions, 2);
        assert!(counters.predictions >= 2);

        // An epoch change drops the models (their observations came from
        // the old version) and the predictions with them.
        c.invalidate_stats();
        assert_eq!(c.learned_kth(&shape, 10), None);
        assert_eq!(c.learned_relaxed_best(&shape, &key, 10), None);
    }

    /// Satellite stress test: a `settled_clean` verdict racing a
    /// `record_speculation` offense must never lose a generation bump — the
    /// plan cache relies on "bias visible ⇒ generation already bumped" to
    /// never serve a plan from the older generation.
    ///
    /// The test hammers one key from offense/clean writer threads while an
    /// observer snapshots the bias bracketed by two generation reads, then
    /// checks two invariants:
    /// * accounting: the sum of flip counts returned by all writers equals
    ///   the final generation (every flip paid exactly one bump, none lost);
    /// * ordering: whenever the observer sees the bias *change* between two
    ///   snapshots, a generation read *after* the new bias must exceed every
    ///   generation read *before* the old bias was last observed — the flip
    ///   happened after that earlier read, so its bump must be visible by
    ///   now. A changed bias that fails this is exactly the lost-bump bug.
    ///   (Comparing a *pre*-bias generation read against the new bias would
    ///   be a false positive: a writer can flip between the two reads, which
    ///   only makes a plan stamp conservatively old — the safe direction.)
    #[test]
    fn concurrent_verdicts_never_lose_a_generation_bump() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let c = Arc::new(StatsCatalog::new());
        let key = TriplePattern::new(Var(0), specqp_common::TermId(77), specqp_common::TermId(78))
            .stats_key();
        let stop = Arc::new(AtomicBool::new(false));
        const ROUNDS: usize = 400;

        let mut writers = Vec::new();
        for t in 0..4 {
            let c = Arc::clone(&c);
            writers.push(std::thread::spawn(move || {
                let mut flips = 0u64;
                for i in 0..ROUNDS {
                    // Two offense threads, two exoneration threads; mix the
                    // passive and probe paths so the read-lock fast path
                    // races the write path.
                    let mis = t < 2;
                    flips += if (i + t) % 2 == 0 {
                        c.record_speculations([(key, mis)])
                    } else {
                        c.record_probes([(key, mis)])
                    };
                }
                flips
            }));
        }
        let observer = {
            let c = Arc::clone(&c);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // `plan_on` reads the generation before consulting the bias,
                // so a plan's stamp is at most the pre-flip generation; the
                // cache drops the plan once the current generation passes the
                // stamp. The matching invariant observable here: once a new
                // bias is visible, the generation must have advanced past
                // anything read while the old bias was still current.
                let mut last_pre = c.generation();
                let mut last_bias = c.repeat_offender(&key);
                let mut violations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let pre = c.generation();
                    let bias = c.repeat_offender(&key);
                    let post = c.generation();
                    // Any flip producing `bias` happened after `last_bias`
                    // was read, hence after `last_pre` was read — so its
                    // bump must already be visible in `post`.
                    if bias != last_bias && post <= last_pre {
                        violations += 1;
                    }
                    last_pre = pre;
                    last_bias = bias;
                }
                violations
            })
        };

        let mut total_flips = 0u64;
        for w in writers {
            total_flips += w.join().expect("writer panicked");
        }
        stop.store(true, Ordering::Release);
        let violations = observer.join().expect("observer panicked");

        assert_eq!(
            c.generation(),
            total_flips,
            "every flip must pay exactly one generation bump — a lost bump \
             would let the plan cache serve a pre-flip plan"
        );
        assert_eq!(violations, 0, "bias changed without a generation bump");
        // Sanity: the counts add up to everything the writers sent.
        let outcome = c.speculation_outcome(&key);
        assert_eq!(
            outcome.mis_speculations + outcome.clean_prunes,
            (4 * ROUNDS) as u64
        );
    }

    #[test]
    fn precompute_fills_cache() {
        let g = graph();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let singer = d.lookup("singer").unwrap();
        let sf = d.lookup("self").unwrap();
        let pats = [
            TriplePattern::new(Var(0), ty, singer),
            TriplePattern::new(Var(0), sf, Var(1)),
        ];
        let c = StatsCatalog::new();
        c.precompute(&g, pats.iter());
        assert_eq!(c.len(), 2);
    }
}
