//! Join-cardinality estimation.
//!
//! The estimator of §3.1.2 needs the expected number of answers `n` of a
//! query (and of each singly-relaxed query): `m₁₂ = m·m′·φ₁₂` with join
//! selectivity `φ`. The paper sidesteps selectivity estimation: "we have
//! taken exact join selectivity values" (footnote 3). [`ExactCardinality`]
//! is that oracle — it evaluates the (unscored) join and caches the count.
//! [`IndependenceEstimator`] is the classic System-R–style approximation
//! (`φ = 1/max(V(L,v), V(R,v))` per shared variable) provided for the
//! ablation benches.

use kgstore::{KnowledgeGraph, PatternKey};
use sparql::{Term, TriplePattern, Var};
use specqp_common::{FxHashMap, FxHashSet, TermId};
use std::sync::RwLock;

/// Estimates the number of answers of a conjunctive triple-pattern query.
///
/// Implementations must be shareable across query-service worker threads
/// (`Send + Sync`); the built-in estimators guard their memo tables with
/// `RwLock`s.
pub trait CardinalityEstimator: Send + Sync {
    /// Expected (or exact) answer count of the join of `patterns`.
    fn cardinality(&self, graph: &KnowledgeGraph, patterns: &[TriplePattern]) -> f64;

    /// Drops any memoized counts. The engine calls this when the graph
    /// version changes (a new live-write [`Epoch`](kgstore::Epoch)), since
    /// counts memoized against an older version no longer describe the data.
    /// Stateless estimators can keep the default no-op.
    fn invalidate(&self) {}
}

/// One pattern's slot in a [`QueryKey`]: constant components plus the
/// canonical numbers of its variable positions (`u16::MAX` = constant; wide
/// enough that variable numbering can never collide with the sentinel).
type PatternKeySlot = (Option<TermId>, Option<TermId>, Option<TermId>, [u16; 3]);
/// Canonical identity of a pattern sequence for the cardinality cache.
type QueryKey = Vec<PatternKeySlot>;

/// Canonical cache key: constants plus variables renumbered in first-seen
/// order, so queries differing only in variable names share entries.
fn canonical_key(patterns: &[TriplePattern]) -> QueryKey {
    let mut var_map: FxHashMap<Var, u16> = FxHashMap::default();
    let mut key = Vec::with_capacity(patterns.len());
    for p in patterns {
        let mut slot = [u16::MAX; 3];
        for (i, t) in [p.s, p.p, p.o].into_iter().enumerate() {
            if let Term::Var(v) = t {
                let next = var_map.len();
                assert!(
                    next < usize::from(u16::MAX),
                    "pattern list exceeds {} distinct variables",
                    u16::MAX
                );
                slot[i] = *var_map.entry(v).or_insert(next as u16);
            }
        }
        let (s, pp, o) = p.const_parts();
        key.push((s, pp, o, slot));
    }
    key
}

/// A compact binding used only for counting: values of the variables seen so
/// far, in first-seen order.
type CountBinding = Box<[TermId]>;

/// Exact join-count oracle with memoization.
///
/// Evaluation folds the patterns left to right with hash joins over the
/// store's match lists, tracking bindings without scores. Intermediate
/// results are capped at [`ExactCardinality::DEFAULT_CAP`] rows to bound
/// planning-time memory; hitting the cap returns the count seen so far
/// (a documented lower bound — irrelevant for the scaled datasets in this
/// repository, which stay far below it).
#[derive(Debug)]
pub struct ExactCardinality {
    cache: RwLock<FxHashMap<QueryKey, f64>>,
    cap: usize,
}

impl Default for ExactCardinality {
    fn default() -> Self {
        ExactCardinality {
            cache: RwLock::new(FxHashMap::default()),
            cap: Self::DEFAULT_CAP,
        }
    }
}

impl ExactCardinality {
    /// Default intermediate-result cap.
    pub const DEFAULT_CAP: usize = 20_000_000;

    /// New oracle with the default cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// New oracle with an explicit intermediate-result cap.
    pub fn with_cap(cap: usize) -> Self {
        ExactCardinality {
            cache: RwLock::new(FxHashMap::default()),
            cap,
        }
    }

    /// Number of memoized query shapes.
    pub fn cached_queries(&self) -> usize {
        self.cache.read().expect("cardinality cache poisoned").len()
    }

    /// Evaluates the join count (uncached path).
    fn evaluate(&self, graph: &KnowledgeGraph, patterns: &[TriplePattern]) -> f64 {
        if patterns.is_empty() {
            return 0.0;
        }
        // Variable numbering in first-seen order defines binding layout.
        let mut var_index: FxHashMap<Var, usize> = FxHashMap::default();
        for p in patterns {
            for v in p.vars() {
                let next = var_index.len();
                var_index.entry(v).or_insert(next);
            }
        }

        // Seed with the first pattern's bindings.
        let mut acc: Vec<CountBinding> = Vec::new();
        let mut bound: Vec<bool> = vec![false; var_index.len()];
        {
            let p = &patterns[0];
            let (s, pp, o) = p.const_parts();
            let list = graph.matches(PatternKey { s, p: pp, o });
            for (t, _) in list.iter_triples() {
                if let Some(b) = bind_triple(p, &t, &var_index) {
                    acc.push(b);
                    if acc.len() >= self.cap {
                        break;
                    }
                }
            }
            for v in p.vars() {
                bound[var_index[&v]] = true;
            }
        }

        for p in &patterns[1..] {
            if acc.is_empty() {
                return 0.0;
            }
            // Shared variables = vars of p already bound.
            let shared: Vec<usize> = p
                .vars()
                .filter(|v| bound[var_index[v]])
                .map(|v| var_index[&v])
                .collect();
            // Hash the accumulated side on the shared variables.
            let mut table: FxHashMap<Box<[TermId]>, Vec<usize>> = FxHashMap::default();
            for (row, b) in acc.iter().enumerate() {
                let key: Box<[TermId]> = shared.iter().map(|&i| b[i]).collect();
                table.entry(key).or_default().push(row);
            }
            let (s, pp, o) = p.const_parts();
            let list = graph.matches(PatternKey { s, p: pp, o });
            let mut next_acc: Vec<CountBinding> = Vec::new();
            'outer: for (t, _) in list.iter_triples() {
                // Bindings contributed by this pattern alone.
                let Some(local) = bind_triple(p, &t, &var_index) else {
                    continue;
                };
                let key: Box<[TermId]> = p
                    .vars()
                    .filter(|v| bound[var_index[v]])
                    .map(|v| local[var_index[&v]])
                    .collect();
                if let Some(rows) = table.get(&key) {
                    for &row in rows {
                        let mut merged = acc[row].clone();
                        for v in p.vars() {
                            let i = var_index[&v];
                            merged[i] = local[i];
                        }
                        next_acc.push(merged);
                        if next_acc.len() >= self.cap {
                            break 'outer;
                        }
                    }
                }
            }
            for v in p.vars() {
                bound[var_index[&v]] = true;
            }
            acc = next_acc;
        }
        acc.len() as f64
    }
}

/// Builds the full-width binding for one triple against one pattern, or
/// `None` if a repeated variable is violated. Slots for unbound variables
/// hold `TermId::MAX`.
fn bind_triple(
    p: &TriplePattern,
    t: &kgstore::Triple,
    var_index: &FxHashMap<Var, usize>,
) -> Option<CountBinding> {
    let width = var_index.len();
    let mut b: Vec<TermId> = vec![TermId::MAX; width];
    let set = |term: Term, value: TermId, b: &mut Vec<TermId>| -> bool {
        if let Term::Var(v) = term {
            let i = var_index[&v];
            if b[i] != TermId::MAX && b[i] != value {
                return false;
            }
            b[i] = value;
        }
        true
    };
    if !set(p.s, t.s, &mut b) {
        return None;
    }
    if !set(p.p, t.p, &mut b) {
        return None;
    }
    if !set(p.o, t.o, &mut b) {
        return None;
    }
    Some(b.into_boxed_slice())
}

impl CardinalityEstimator for ExactCardinality {
    fn cardinality(&self, graph: &KnowledgeGraph, patterns: &[TriplePattern]) -> f64 {
        let key = canonical_key(patterns);
        if let Some(&n) = self
            .cache
            .read()
            .expect("cardinality cache poisoned")
            .get(&key)
        {
            return n;
        }
        let n = self.evaluate(graph, patterns);
        self.cache
            .write()
            .expect("cardinality cache poisoned")
            .insert(key, n);
        n
    }

    fn invalidate(&self) {
        self.cache
            .write()
            .expect("cardinality cache poisoned")
            .clear();
    }
}

/// Independence-assumption estimator: `n = Π mᵢ · Π φ`, with one selectivity
/// factor `φ = 1/max(V(prefix,v), V(qᵢ,v))` per newly shared variable
/// (`V(·,v)` = distinct values of `v`). Used by ablation benches.
#[derive(Default, Debug)]
pub struct IndependenceEstimator {
    distinct_cache: RwLock<FxHashMap<(sparql::StatsKey, u8), f64>>,
}

impl IndependenceEstimator {
    /// Creates the estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct count of the values that `var` takes among `pattern`'s
    /// matches.
    fn distinct_values(&self, graph: &KnowledgeGraph, pattern: &TriplePattern, var: Var) -> f64 {
        // Which position(s) does var occupy? 0=s,1=p,2=o (first occurrence).
        let pos: u8 = if pattern.s.as_var() == Some(var) {
            0
        } else if pattern.p.as_var() == Some(var) {
            1
        } else {
            2
        };
        let key = (pattern.stats_key(), pos);
        if let Some(&d) = self
            .distinct_cache
            .read()
            .expect("distinct cache poisoned")
            .get(&key)
        {
            return d;
        }
        let (s, p, o) = pattern.const_parts();
        let list = graph.matches(PatternKey { s, p, o });
        let mut seen: FxHashSet<TermId> = FxHashSet::default();
        for (t, _) in list.iter_triples() {
            let v = match pos {
                0 => t.s,
                1 => t.p,
                _ => t.o,
            };
            seen.insert(v);
        }
        let d = seen.len() as f64;
        self.distinct_cache
            .write()
            .expect("distinct cache poisoned")
            .insert(key, d);
        d
    }
}

impl CardinalityEstimator for IndependenceEstimator {
    fn cardinality(&self, graph: &KnowledgeGraph, patterns: &[TriplePattern]) -> f64 {
        if patterns.is_empty() {
            return 0.0;
        }
        let m = |p: &TriplePattern| {
            let (s, pp, o) = p.const_parts();
            graph.cardinality(PatternKey { s, p: pp, o }) as f64
        };
        let mut n = m(&patterns[0]);
        let mut seen_vars: Vec<(Var, f64)> = patterns[0]
            .vars()
            .map(|v| (v, self.distinct_values(graph, &patterns[0], v)))
            .collect();
        for p in &patterns[1..] {
            n *= m(p);
            for v in p.vars() {
                if let Some(&(_, d_prev)) = seen_vars.iter().find(|(sv, _)| *sv == v) {
                    let d_here = self.distinct_values(graph, p, v);
                    let denom = d_prev.max(d_here).max(1.0);
                    n /= denom;
                } else {
                    seen_vars.push((v, self.distinct_values(graph, p, v)));
                }
            }
        }
        n
    }

    fn invalidate(&self) {
        self.distinct_cache
            .write()
            .expect("distinct cache poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;

    fn graph() -> KnowledgeGraph {
        let mut b = KnowledgeGraphBuilder::new();
        // Entities e0..e9 are singers; e0..e4 are lyricists; e0..e1 guitarists.
        for i in 0..10 {
            b.add(&format!("e{i}"), "type", "singer", 10.0 - i as f64);
        }
        for i in 0..5 {
            b.add(&format!("e{i}"), "type", "lyricist", 5.0 - i as f64);
        }
        for i in 0..2 {
            b.add(&format!("e{i}"), "type", "guitarist", 2.0 - i as f64);
        }
        b.build()
    }

    fn pat(g: &KnowledgeGraph, class: &str, var: u32) -> TriplePattern {
        let d = g.dictionary();
        TriplePattern::new(
            Var(var),
            d.lookup("type").unwrap(),
            d.lookup(class).unwrap(),
        )
    }

    #[test]
    fn exact_single_pattern_is_match_count() {
        let g = graph();
        let e = ExactCardinality::new();
        assert_eq!(e.cardinality(&g, &[pat(&g, "singer", 0)]), 10.0);
        assert_eq!(e.cardinality(&g, &[pat(&g, "guitarist", 0)]), 2.0);
    }

    #[test]
    fn exact_star_join_counts_intersection() {
        let g = graph();
        let e = ExactCardinality::new();
        let q = [pat(&g, "singer", 0), pat(&g, "lyricist", 0)];
        assert_eq!(e.cardinality(&g, &q), 5.0);
        let q3 = [
            pat(&g, "singer", 0),
            pat(&g, "lyricist", 0),
            pat(&g, "guitarist", 0),
        ];
        assert_eq!(e.cardinality(&g, &q3), 2.0);
    }

    #[test]
    fn exact_disjoint_vars_cross_product() {
        let g = graph();
        let e = ExactCardinality::new();
        let q = [pat(&g, "singer", 0), pat(&g, "lyricist", 1)];
        assert_eq!(e.cardinality(&g, &q), 50.0);
    }

    #[test]
    fn exact_caches_by_shape() {
        let g = graph();
        let e = ExactCardinality::new();
        let _ = e.cardinality(&g, &[pat(&g, "singer", 0), pat(&g, "lyricist", 0)]);
        assert_eq!(e.cached_queries(), 1);
        // Renamed variables hit the same entry.
        let _ = e.cardinality(&g, &[pat(&g, "singer", 3), pat(&g, "lyricist", 3)]);
        assert_eq!(e.cached_queries(), 1);
        // Different join structure gets its own entry.
        let _ = e.cardinality(&g, &[pat(&g, "singer", 0), pat(&g, "lyricist", 1)]);
        assert_eq!(e.cached_queries(), 2);
    }

    #[test]
    fn exact_empty_pattern_gives_zero() {
        let g = graph();
        let d = g.dictionary();
        let e = ExactCardinality::new();
        let ghost = TriplePattern::new(Var(0), d.lookup("type").unwrap(), d.lookup("e0").unwrap());
        assert_eq!(e.cardinality(&g, &[pat(&g, "singer", 0), ghost]), 0.0);
        assert_eq!(e.cardinality(&g, &[]), 0.0);
    }

    #[test]
    fn independence_estimator_reasonable() {
        let g = graph();
        let est = IndependenceEstimator::new();
        // singer ⋈ lyricist on ?0: m=10·5, distinct(?0)=10 vs 5 → /10 = 5.
        let q = [pat(&g, "singer", 0), pat(&g, "lyricist", 0)];
        let n = est.cardinality(&g, &q);
        assert!((n - 5.0).abs() < 1e-9);
        // Cross product: no shared vars.
        let q = [pat(&g, "singer", 0), pat(&g, "lyricist", 1)];
        assert!((est.cardinality(&g, &q) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn cap_bounds_intermediate_blowup() {
        let g = graph();
        let e = ExactCardinality::with_cap(10);
        let q = [pat(&g, "singer", 0), pat(&g, "lyricist", 1)];
        let n = e.cardinality(&g, &q);
        assert!(n <= 10.0);
    }

    #[test]
    fn repeated_var_pattern_filters() {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("a", "knows", "a", 1.0);
        b.add("a", "knows", "b", 2.0);
        let g = b.build();
        let knows = g.dictionary().lookup("knows").unwrap();
        let e = ExactCardinality::new();
        let p = TriplePattern::new(Var(0), knows, Var(0));
        assert_eq!(e.cardinality(&g, &[p]), 1.0);
    }
}
