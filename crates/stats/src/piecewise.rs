//! Piecewise density algebra: constant (histogram) and linear pdfs,
//! cdfs, quantiles, and exact convolution.

/// Common interface of every score-distribution representation.
pub trait Distribution {
    /// Left edge of the support (always 0 in this workspace).
    fn domain_min(&self) -> f64 {
        0.0
    }
    /// Right edge of the support (1 for a single normalized pattern, `c` for
    /// a `c`-pattern query).
    fn domain_max(&self) -> f64;
    /// Total mass (≈1; kept explicit so float drift can be normalized away).
    fn mass(&self) -> f64;
    /// Unnormalized cumulative distribution at `x`.
    fn cdf(&self, x: f64) -> f64;
    /// Inverse cdf: the `p`-quantile for `p ∈ [0,1]` relative to the total
    /// mass (so the result is normalization-independent).
    fn quantile(&self, p: f64) -> f64;
    /// Mean of the distribution (normalized).
    fn mean(&self) -> f64;
}

/// A piecewise-constant pdf (an n-bucket histogram): `heights[i]` on
/// `[edges[i], edges[i+1])`.
#[derive(Clone, Debug, PartialEq)]
pub struct PiecewiseConstantPdf {
    edges: Vec<f64>,
    heights: Vec<f64>,
}

impl PiecewiseConstantPdf {
    /// Builds a histogram pdf. Edges must be strictly increasing and heights
    /// non-negative, with `heights.len() + 1 == edges.len()`.
    ///
    /// # Panics
    /// Panics on malformed input (internal construction bug).
    pub fn new(edges: Vec<f64>, heights: Vec<f64>) -> Self {
        assert_eq!(edges.len(), heights.len() + 1, "edges/heights mismatch");
        assert!(
            edges.windows(2).all(|w| w[1] > w[0]),
            "edges must be strictly increasing: {edges:?}"
        );
        assert!(
            heights.iter().all(|&h| h >= 0.0 && h.is_finite()),
            "heights must be non-negative and finite"
        );
        PiecewiseConstantPdf { edges, heights }
    }

    /// Bucket edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Bucket heights (densities).
    pub fn heights(&self) -> &[f64] {
        &self.heights
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.heights.len()
    }

    /// Scales the random variable by `w > 0`: if `X ~ f`, returns the pdf of
    /// `w·X` (domain stretches by `w`, heights shrink by `1/w` so mass is
    /// preserved). Used to weight a relaxed pattern's distribution (Def. 8).
    pub fn scale(&self, w: f64) -> PiecewiseConstantPdf {
        assert!(w > 0.0, "scale factor must be positive, got {w}");
        PiecewiseConstantPdf {
            edges: self.edges.iter().map(|e| e * w).collect(),
            heights: self.heights.iter().map(|h| h / w).collect(),
        }
    }

    /// ∫ x·f(x) dx over the whole support — the "score mass" used by the
    /// two-bucket refit.
    pub fn score_mass(&self) -> f64 {
        let mut total = 0.0;
        for i in 0..self.heights.len() {
            let (a, b) = (self.edges[i], self.edges[i + 1]);
            total += self.heights[i] * (b * b - a * a) / 2.0;
        }
        total
    }

    /// Exact convolution with another piecewise-constant pdf. The result is
    /// continuous piecewise-linear with knots at all pairwise edge sums:
    /// `f₁₂(t) = Σᵢ h₁ᵢ · (F₂(t−aᵢ) − F₂(t−bᵢ))`.
    pub fn convolve(&self, other: &PiecewiseConstantPdf) -> PiecewiseLinearPdf {
        let mut knots: Vec<f64> = Vec::with_capacity(self.edges.len() * other.edges.len());
        for &a in &self.edges {
            for &b in &other.edges {
                knots.push(a + b);
            }
        }
        knots.sort_by(|a, b| a.partial_cmp(b).expect("finite edges"));
        knots.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let values: Vec<f64> = knots
            .iter()
            .map(|&t| self.convolve_value_at(other, t))
            .collect();
        PiecewiseLinearPdf::new(knots, values)
    }

    fn convolve_value_at(&self, other: &PiecewiseConstantPdf, t: f64) -> f64 {
        let mut v = 0.0;
        for i in 0..self.heights.len() {
            let (a, b) = (self.edges[i], self.edges[i + 1]);
            if self.heights[i] > 0.0 {
                v += self.heights[i] * (other.cdf(t - a) - other.cdf(t - b));
            }
        }
        v.max(0.0)
    }
}

impl Distribution for PiecewiseConstantPdf {
    fn domain_max(&self) -> f64 {
        *self.edges.last().expect("non-empty edges")
    }

    fn mass(&self) -> f64 {
        let mut m = 0.0;
        for i in 0..self.heights.len() {
            m += self.heights[i] * (self.edges[i + 1] - self.edges[i]);
        }
        m
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.edges[0] {
            return 0.0;
        }
        let mut c = 0.0;
        for i in 0..self.heights.len() {
            let (a, b) = (self.edges[i], self.edges[i + 1]);
            if x >= b {
                c += self.heights[i] * (b - a);
            } else {
                c += self.heights[i] * (x - a);
                break;
            }
        }
        c
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let target = p * self.mass();
        let mut c = 0.0;
        for i in 0..self.heights.len() {
            let (a, b) = (self.edges[i], self.edges[i + 1]);
            let seg = self.heights[i] * (b - a);
            if c + seg >= target {
                if seg <= 0.0 {
                    return a;
                }
                return a + (target - c) / self.heights[i];
            }
            c += seg;
        }
        self.domain_max()
    }

    fn mean(&self) -> f64 {
        let m = self.mass();
        if m <= 0.0 {
            0.0
        } else {
            self.score_mass() / m
        }
    }
}

/// A continuous piecewise-linear pdf: `values[i]` at `knots[i]`, linear in
/// between. Produced by convolving two histograms.
#[derive(Clone, Debug, PartialEq)]
pub struct PiecewiseLinearPdf {
    knots: Vec<f64>,
    values: Vec<f64>,
    /// Cumulative mass at each knot (trapezoid-exact).
    cum: Vec<f64>,
}

impl PiecewiseLinearPdf {
    /// Builds a piecewise-linear pdf from `(knot, density)` samples.
    ///
    /// # Panics
    /// Panics if fewer than two knots, knots not increasing, or negative
    /// values.
    pub fn new(knots: Vec<f64>, values: Vec<f64>) -> Self {
        assert!(knots.len() >= 2, "need at least two knots");
        assert_eq!(knots.len(), values.len());
        assert!(knots.windows(2).all(|w| w[1] > w[0]), "knots must increase");
        assert!(values.iter().all(|&v| v >= 0.0 && v.is_finite()));
        let mut cum = Vec::with_capacity(knots.len());
        cum.push(0.0);
        for i in 1..knots.len() {
            let dx = knots[i] - knots[i - 1];
            let seg = (values[i - 1] + values[i]) * dx / 2.0;
            cum.push(cum[i - 1] + seg);
        }
        PiecewiseLinearPdf { knots, values, cum }
    }

    /// The knot positions.
    pub fn knots(&self) -> &[f64] {
        &self.knots
    }

    /// Density values at the knots.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    fn segment_of(&self, x: f64) -> usize {
        // Largest i with knots[i] <= x, clamped into segment range.
        match self
            .knots
            .binary_search_by(|k| k.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i.min(self.knots.len() - 2),
            Err(0) => 0,
            Err(i) => (i - 1).min(self.knots.len() - 2),
        }
    }

    /// Density at `x` (0 outside the support).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < self.knots[0] || x > *self.knots.last().expect("non-empty") {
            return 0.0;
        }
        let i = self.segment_of(x);
        let (x0, x1) = (self.knots[i], self.knots[i + 1]);
        let (y0, y1) = (self.values[i], self.values[i + 1]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// ∫ x·f(x) dx over `[a, b]` (clipped to the support) — closed-form per
    /// segment (cubic in the segment bounds).
    pub fn partial_score_mass(&self, a: f64, b: f64) -> f64 {
        let lo = a.max(self.knots[0]);
        let hi = b.min(*self.knots.last().expect("non-empty"));
        if hi <= lo {
            return 0.0;
        }
        let mut total = 0.0;
        for i in 0..self.knots.len() - 1 {
            let (x0, x1) = (self.knots[i], self.knots[i + 1]);
            let (s, e) = (lo.max(x0), hi.min(x1));
            if e <= s {
                continue;
            }
            let (y0, y1) = (self.values[i], self.values[i + 1]);
            let slope = (y1 - y0) / (x1 - x0);
            // f(x) = y0 + slope (x - x0) = c0 + slope x, c0 = y0 - slope x0
            let c0 = y0 - slope * x0;
            // ∫ x (c0 + slope x) dx = c0 x²/2 + slope x³/3
            let prim = |x: f64| c0 * x * x / 2.0 + slope * x * x * x / 3.0;
            total += prim(e) - prim(s);
        }
        total
    }

    /// Total ∫ x·f(x) dx.
    pub fn score_mass(&self) -> f64 {
        self.partial_score_mass(self.knots[0], *self.knots.last().expect("non-empty"))
    }

    /// Projects onto an `n`-bucket histogram over the same support,
    /// preserving per-bucket mass (used for iterated convolution in
    /// multi-bucket refit mode).
    pub fn to_piecewise_constant(&self, n: usize) -> PiecewiseConstantPdf {
        assert!(n >= 1);
        let (lo, hi) = (self.knots[0], *self.knots.last().expect("non-empty"));
        let width = (hi - lo) / n as f64;
        let mut edges = Vec::with_capacity(n + 1);
        for i in 0..=n {
            edges.push(lo + width * i as f64);
        }
        let mut heights = Vec::with_capacity(n);
        for i in 0..n {
            let m = self.cdf(edges[i + 1]) - self.cdf(edges[i]);
            heights.push((m / width).max(0.0));
        }
        PiecewiseConstantPdf::new(edges, heights)
    }
}

impl Distribution for PiecewiseLinearPdf {
    fn domain_max(&self) -> f64 {
        *self.knots.last().expect("non-empty")
    }

    fn mass(&self) -> f64 {
        *self.cum.last().expect("non-empty")
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.knots[0] {
            return 0.0;
        }
        if x >= *self.knots.last().expect("non-empty") {
            return self.mass();
        }
        let i = self.segment_of(x);
        let (x0, x1) = (self.knots[i], self.knots[i + 1]);
        let (y0, y1) = (self.values[i], self.values[i + 1]);
        let dx = x - x0;
        let slope = (y1 - y0) / (x1 - x0);
        self.cum[i] + y0 * dx + slope * dx * dx / 2.0
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let total = self.mass();
        if total <= 0.0 {
            return self.knots[0];
        }
        let target = p * total;
        // Find the segment containing the target cumulative mass.
        let mut i = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&target).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        i = i.min(self.knots.len() - 2);
        let (x0, x1) = (self.knots[i], self.knots[i + 1]);
        let (y0, y1) = (self.values[i], self.values[i + 1]);
        let rem = target - self.cum[i];
        let slope = (y1 - y0) / (x1 - x0);
        // Solve y0·d + slope·d²/2 = rem for d ∈ [0, x1-x0].
        let d = if slope.abs() < 1e-12 {
            if y0 <= 1e-15 {
                0.0
            } else {
                rem / y0
            }
        } else {
            // d = (-y0 + sqrt(y0² + 2·slope·rem)) / slope
            let disc = (y0 * y0 + 2.0 * slope * rem).max(0.0);
            (-y0 + disc.sqrt()) / slope
        };
        (x0 + d).clamp(x0, x1)
    }

    fn mean(&self) -> f64 {
        let m = self.mass();
        if m <= 0.0 {
            0.0
        } else {
            self.score_mass() / m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform01() -> PiecewiseConstantPdf {
        PiecewiseConstantPdf::new(vec![0.0, 1.0], vec![1.0])
    }

    #[test]
    fn pc_mass_cdf_quantile() {
        let h = PiecewiseConstantPdf::new(vec![0.0, 0.5, 1.0], vec![0.4, 1.6]);
        assert!((h.mass() - 1.0).abs() < 1e-12);
        assert!((h.cdf(0.5) - 0.2).abs() < 1e-12);
        assert!((h.cdf(1.0) - 1.0).abs() < 1e-12);
        assert!((h.quantile(0.2) - 0.5).abs() < 1e-12);
        assert!((h.quantile(0.6) - 0.75).abs() < 1e-12);
        assert!((h.quantile(0.0) - 0.0).abs() < 1e-12);
        assert!((h.quantile(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pc_mean_and_score_mass() {
        let u = uniform01();
        assert!((u.mean() - 0.5).abs() < 1e-12);
        assert!((u.score_mass() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pc_scale_preserves_mass() {
        let h = PiecewiseConstantPdf::new(vec![0.0, 0.5, 1.0], vec![0.4, 1.6]);
        let s = h.scale(0.8);
        assert!((s.mass() - 1.0).abs() < 1e-12);
        assert!((s.domain_max() - 0.8).abs() < 1e-12);
        assert!((s.mean() - 0.8 * h.mean()).abs() < 1e-12);
    }

    #[test]
    fn convolution_of_uniforms_is_triangle() {
        // U[0,1] * U[0,1] = triangle on [0,2] peaking at 1 with height 1.
        let tri = uniform01().convolve(&uniform01());
        assert!((tri.mass() - 1.0).abs() < 1e-9);
        assert!((tri.pdf(1.0) - 1.0).abs() < 1e-9);
        assert!((tri.pdf(0.5) - 0.5).abs() < 1e-9);
        assert!((tri.pdf(1.5) - 0.5).abs() < 1e-9);
        assert!(tri.pdf(0.0).abs() < 1e-9);
        assert!(tri.pdf(2.0).abs() < 1e-9);
        // cdf at the midpoint is exactly 1/2 by symmetry.
        assert!((tri.cdf(1.0) - 0.5).abs() < 1e-9);
        assert!((tri.quantile(0.5) - 1.0).abs() < 1e-9);
        // Mean of the sum is the sum of the means.
        assert!((tri.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn convolution_mass_is_product_of_masses() {
        let a = PiecewiseConstantPdf::new(vec![0.0, 0.3, 1.0], vec![0.5, 25.0 / 14.0]);
        let b = PiecewiseConstantPdf::new(vec![0.0, 0.6, 1.0], vec![1.0, 1.0]);
        let c = a.convolve(&b);
        assert!((c.mass() - a.mass() * b.mass()).abs() < 1e-9);
        // Mean adds.
        assert!((c.mean() - (a.mean() + b.mean())).abs() < 1e-9);
    }

    #[test]
    fn pl_quantile_inverts_cdf() {
        let tri = uniform01().convolve(&uniform01());
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = tri.quantile(p);
            assert!(
                (tri.cdf(x) / tri.mass() - p).abs() < 1e-9,
                "p={p}, x={x}, cdf={}",
                tri.cdf(x)
            );
        }
    }

    #[test]
    fn pl_partial_score_mass() {
        let tri = uniform01().convolve(&uniform01());
        // By symmetry, score mass of [0,1] + [1,2] = mean = 1.
        let lo = tri.partial_score_mass(0.0, 1.0);
        let hi = tri.partial_score_mass(1.0, 2.0);
        assert!((lo + hi - 1.0).abs() < 1e-9);
        assert!(hi > lo); // mass above the peak carries more score
    }

    #[test]
    fn pl_projection_preserves_mass() {
        let tri = uniform01().convolve(&uniform01());
        let pc = tri.to_piecewise_constant(16);
        assert!((pc.mass() - tri.mass()).abs() < 1e-9);
        // Means stay close (projection error only).
        assert!((pc.mean() - tri.mean()).abs() < 0.01);
    }

    #[test]
    fn degenerate_narrow_bucket() {
        // A spike bucket should still give sane quantiles.
        let h = PiecewiseConstantPdf::new(
            vec![0.0, 1.0 - 1e-9, 1.0],
            vec![0.2 / (1.0 - 1e-9), 0.8 / 1e-9],
        );
        assert!((h.mass() - 1.0).abs() < 1e-6);
        let q = h.quantile(0.9);
        assert!(q > 0.999);
    }

    #[test]
    fn triple_convolution_mean_adds() {
        let u = uniform01();
        let two = u.convolve(&u).to_piecewise_constant(64);
        let three = two.convolve(&u);
        assert!((three.mean() - 1.5).abs() < 0.01);
        assert!((three.mass() - 1.0).abs() < 1e-6);
        assert!((three.domain_max() - 3.0).abs() < 1e-9);
    }
}
