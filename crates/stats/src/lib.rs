//! Score-distribution statistics for speculative planning (§3.1 of the
//! paper).
//!
//! The Spec-QP planner never looks at actual answer scores — it reasons over
//! a compact *model* of each triple pattern's score distribution:
//!
//! 1. **Per-pattern statistics** ([`PatternStats`], §3.1.1): each pattern's
//!    normalized match scores are summarized by exactly four values —
//!    `m` (match count), `σᵣ` (score at the rank where 80% of the score mass
//!    is reached), `Sᵣ` (cumulative score up to that rank) and `S_m` (total
//!    score). These define a [`TwoBucketHistogram`]: a short, tall head
//!    bucket `[σᵣ, 1]` holding ~80% of the mass and a long tail `[0, σᵣ)`
//!    holding the rest — the 80/20 shape the authors observed empirically.
//! 2. **Query distributions** (§3.1.2): the score of a joined answer is the
//!    *sum* of its per-pattern scores, so the query's score pdf is the
//!    **convolution** of the per-pattern pdfs. Convolving two histograms
//!    yields a [`PiecewiseLinearPdf`]; following the paper it is refit to a
//!    two-bucket histogram before the next convolution
//!    ([`RefitMode::TwoBucket`]); [`RefitMode::MultiBucket`] keeps an
//!    n-bucket approximation instead (the "multi-bucket histograms"
//!    alternative the paper mentions, at higher planning cost).
//! 3. **Score prediction** (§3.1.3): with the final cdf `F_Q` and the
//!    estimated answer count `n`, the expected score at rank `i` is the
//!    order-statistic approximation `E[X₍ₙ₋ᵢ₊₁₎] ≈ F_Q⁻¹((n−i+1)/(n+1))`
//!    ([`order_stats`]).
//!
//! Join cardinalities come from a [`CardinalityEstimator`]; the default
//! [`ExactCardinality`] oracle evaluates and caches true join counts, which
//! is what the paper uses ("we have taken exact join selectivity values");
//! [`IndependenceEstimator`] provides the classic System-R-style
//! approximation for ablations.
//!
//! The catalog additionally keeps the **speculation feedback ledger**
//! ([`SpeculationOutcome`]): per-pattern-shape mis-speculation verdicts
//! reported back by the execution layer, which bias subsequent PLANGEN runs
//! away from repeat offenders and bump the catalog
//! [`generation`](StatsCatalog::generation) so stale cached plans are
//! re-planned.

pub mod cardinality;
pub mod catalog;
pub mod estimator;
pub mod histogram;
pub mod learned;
pub mod order_stats;
pub mod piecewise;

pub use cardinality::{CardinalityEstimator, ExactCardinality, IndependenceEstimator};
pub use catalog::{SpeculationOutcome, StatsCatalog};
pub use estimator::{refit_two_bucket, QueryEstimate, RefitMode, ScoreEstimator};
pub use histogram::{PatternStats, TwoBucketHistogram, HEAD_FRACTION};
pub use learned::{
    FeatureVector, LearnedCounters, LearnedModels, LearnedObservation, QueryShapeKey,
};
pub use order_stats::expected_score_at_rank;
pub use piecewise::{Distribution, PiecewiseConstantPdf, PiecewiseLinearPdf};
