//! Per-pattern statistics and the two-bucket histogram model (§3.1.1).

use crate::piecewise::{Distribution, PiecewiseConstantPdf};
use kgstore::MatchList;

/// The fraction of the *score mass* held by the head bucket. The paper uses
/// the 80/20 rule: "80% of the score mass lies in the 20% of the answers".
pub const HEAD_FRACTION: f64 = 0.8;

/// Width clamp so degenerate bucket boundaries (σ = 0 or σ = 1) keep both
/// buckets strictly positive-width.
const EPS: f64 = 1e-9;

/// The four precomputed values the paper stores per triple pattern
/// (§3.1.1), over the pattern's **normalized** scores (head of list = 1):
///
/// * `m` — number of matching triples,
/// * `sigma_r` — the normalized score at rank `r`, where `r` is the first
///   rank at which the cumulative score reaches [`HEAD_FRACTION`] of the
///   total,
/// * `s_r` — cumulative normalized score over ranks `1..=r`,
/// * `s_m` — total normalized score over all `m` ranks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PatternStats {
    /// Match count `mᵢ`.
    pub m: u64,
    /// Normalized score at the 80%-mass rank (`σᵢᵣ`).
    pub sigma_r: f64,
    /// Cumulative normalized score through rank `r` (`Sᵢᵣ`).
    pub s_r: f64,
    /// Total normalized score (`Sᵢₘ`).
    pub s_m: f64,
}

impl PatternStats {
    /// Computes the statistics from a score-descending match list.
    /// Returns `None` for empty lists (the pattern has no matches, hence no
    /// distribution).
    pub fn from_match_list(list: &MatchList<'_>) -> Option<Self> {
        let m = list.len();
        if m == 0 {
            return None;
        }
        let max = list.max_score().value();
        if max <= 0.0 {
            // All-zero scores: model as a degenerate uniform head.
            return Some(PatternStats {
                m: m as u64,
                sigma_r: 1.0,
                s_r: 0.0,
                s_m: 0.0,
            });
        }
        let mut total = 0.0;
        for rank in 0..m {
            total += list.score_at(rank).value() / max;
        }
        let target = HEAD_FRACTION * total;
        let mut cum = 0.0;
        let mut sigma_r = 1.0;
        let mut s_r = 0.0;
        for rank in 0..m {
            let s = list.score_at(rank).value() / max;
            cum += s;
            if cum >= target {
                sigma_r = s;
                s_r = cum;
                break;
            }
        }
        Some(PatternStats {
            m: m as u64,
            sigma_r,
            s_r,
            s_m: total,
        })
    }

    /// Computes the statistics from a plain slice of normalized scores
    /// sorted descending (used by tests and generators).
    pub fn from_sorted_scores(scores: &[f64]) -> Option<Self> {
        if scores.is_empty() {
            return None;
        }
        debug_assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        let max = scores[0];
        if max <= 0.0 {
            return Some(PatternStats {
                m: scores.len() as u64,
                sigma_r: 1.0,
                s_r: 0.0,
                s_m: 0.0,
            });
        }
        let total: f64 = scores.iter().map(|s| s / max).sum();
        let target = HEAD_FRACTION * total;
        let mut cum = 0.0;
        let mut sigma_r = 1.0;
        let mut s_r = 0.0;
        for &s in scores {
            let s = s / max;
            cum += s;
            if cum >= target {
                sigma_r = s;
                s_r = cum;
                break;
            }
        }
        Some(PatternStats {
            m: scores.len() as u64,
            sigma_r,
            s_r,
            s_m: total,
        })
    }

    /// The two-bucket histogram these statistics define (domain `[0,1]`).
    pub fn histogram(&self) -> TwoBucketHistogram {
        let head_mass = if self.s_m > 0.0 {
            (self.s_r / self.s_m).clamp(EPS, 1.0 - EPS)
        } else {
            // Degenerate: no score mass — put everything in the head so the
            // quantiles collapse to the top.
            1.0 - EPS
        };
        TwoBucketHistogram::new(1.0, self.sigma_r, head_mass)
    }
}

/// The paper's two-bucket score histogram over `[0, D]` (Fig. 3):
///
/// * tail bucket `[0, σ)` with probability mass `1 − head_mass`
///   (the "long tail" holding ~20% of the score mass),
/// * head bucket `[σ, D]` with probability mass `head_mass` (~80%).
///
/// The pdf is uniform inside each bucket, which reproduces §3.1.1's
///
/// ```text
/// f(x) = (S_m − S_r)/S_m · 1/σ        for 0 ≤ x < σ
///        S_r/S_m       · 1/(D − σ)    for σ ≤ x ≤ D
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoBucketHistogram {
    domain: f64,
    sigma: f64,
    head_mass: f64,
}

impl TwoBucketHistogram {
    /// Builds the histogram, clamping `sigma` into `(0, domain)` and
    /// `head_mass` into `(0, 1)` so both buckets keep positive width/mass.
    ///
    /// # Panics
    /// Panics if `domain ≤ 0` or inputs are non-finite.
    pub fn new(domain: f64, sigma: f64, head_mass: f64) -> Self {
        assert!(
            domain > 0.0 && domain.is_finite(),
            "domain must be positive, got {domain}"
        );
        assert!(sigma.is_finite() && head_mass.is_finite());
        let sigma = sigma.clamp(domain * EPS, domain * (1.0 - EPS));
        let head_mass = head_mass.clamp(EPS, 1.0 - EPS);
        TwoBucketHistogram {
            domain,
            sigma,
            head_mass,
        }
    }

    /// The bucket boundary σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The probability mass of the head bucket `[σ, D]`.
    pub fn head_mass(&self) -> f64 {
        self.head_mass
    }

    /// Density in the tail bucket.
    pub fn tail_height(&self) -> f64 {
        (1.0 - self.head_mass) / self.sigma
    }

    /// Density in the head bucket.
    pub fn head_height(&self) -> f64 {
        self.head_mass / (self.domain - self.sigma)
    }

    /// Scales the random variable by `w > 0` (Def. 8 relaxation weight):
    /// the histogram of `w·X`.
    pub fn scale(&self, w: f64) -> TwoBucketHistogram {
        assert!(w > 0.0);
        TwoBucketHistogram {
            domain: self.domain * w,
            sigma: self.sigma * w,
            head_mass: self.head_mass,
        }
    }

    /// Converts to the generic histogram representation for convolution.
    pub fn to_piecewise_constant(&self) -> PiecewiseConstantPdf {
        PiecewiseConstantPdf::new(
            vec![0.0, self.sigma, self.domain],
            vec![self.tail_height(), self.head_height()],
        )
    }
}

impl Distribution for TwoBucketHistogram {
    fn domain_max(&self) -> f64 {
        self.domain
    }

    fn mass(&self) -> f64 {
        1.0
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x < self.sigma {
            self.tail_height() * x
        } else if x < self.domain {
            (1.0 - self.head_mass) + self.head_height() * (x - self.sigma)
        } else {
            1.0
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let tail = 1.0 - self.head_mass;
        if p <= tail {
            p / self.tail_height()
        } else {
            self.sigma + (p - tail) / self.head_height()
        }
    }

    fn mean(&self) -> f64 {
        let tail = (1.0 - self.head_mass) * self.sigma / 2.0;
        let head = self.head_mass * (self.sigma + self.domain) / 2.0;
        tail + head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::{KnowledgeGraphBuilder, PatternKey};

    #[test]
    fn stats_from_power_law_scores() {
        // 10 scores, strong head: the 80% mass rank arrives early.
        let scores = [100.0, 50.0, 20.0, 5.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let norm: Vec<f64> = scores.iter().map(|s| s / 100.0).collect();
        let st = PatternStats::from_sorted_scores(&norm).unwrap();
        assert_eq!(st.m, 10);
        // total = 1.82; 80% = 1.456; cumulative: 1.0, 1.5 → rank 2 crosses.
        assert!((st.s_m - 1.82).abs() < 1e-9);
        assert!((st.sigma_r - 0.5).abs() < 1e-9);
        assert!((st.s_r - 1.5).abs() < 1e-9);
    }

    #[test]
    fn stats_from_match_list_matches_slice_path() {
        let mut b = KnowledgeGraphBuilder::new();
        for (i, s) in [100.0, 50.0, 20.0, 5.0, 2.0].iter().enumerate() {
            b.add(&format!("e{i}"), "type", "c", *s);
        }
        let kg = b.build();
        let p = kg.dictionary().lookup("type").unwrap();
        let c = kg.dictionary().lookup("c").unwrap();
        let list = kg.matches(PatternKey::po(p, c));
        let st = PatternStats::from_match_list(&list).unwrap();
        let st2 = PatternStats::from_sorted_scores(&[1.0, 0.5, 0.2, 0.05, 0.02]).unwrap();
        assert_eq!(st, st2);
    }

    #[test]
    fn empty_list_has_no_stats() {
        assert!(PatternStats::from_sorted_scores(&[]).is_none());
    }

    #[test]
    fn single_answer_stats() {
        let st = PatternStats::from_sorted_scores(&[1.0]).unwrap();
        assert_eq!(st.m, 1);
        assert_eq!(st.sigma_r, 1.0);
        let h = st.histogram();
        // Quantiles concentrate near 1.
        assert!(h.quantile(0.9) > 0.9);
    }

    #[test]
    fn histogram_cdf_quantile_roundtrip() {
        let h = TwoBucketHistogram::new(1.0, 0.5, 0.8);
        for p in [0.05, 0.1, 0.2, 0.5, 0.8, 0.95] {
            let x = h.quantile(p);
            assert!((h.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
        assert_eq!(h.cdf(-1.0), 0.0);
        assert_eq!(h.cdf(2.0), 1.0);
    }

    #[test]
    fn histogram_matches_paper_formulas() {
        // With S_m, S_r from stats, the pdf heights must equal §3.1.1.
        let st = PatternStats {
            m: 100,
            sigma_r: 0.4,
            s_r: 32.0,
            s_m: 40.0,
        };
        let h = st.histogram();
        let tail_expected = (40.0 - 32.0) / 40.0 / 0.4; // (S_m−S_r)/S_m · 1/σ
        let head_expected = 32.0 / 40.0 / (1.0 - 0.4); // S_r/S_m · 1/(1−σ)
        assert!((h.tail_height() - tail_expected).abs() < 1e-9);
        assert!((h.head_height() - head_expected).abs() < 1e-9);
        // Mass integrates to 1.
        let pc = h.to_piecewise_constant();
        assert!((pc.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_by_weight() {
        let h = TwoBucketHistogram::new(1.0, 0.5, 0.8);
        let s = h.scale(0.8);
        assert!((s.domain_max() - 0.8).abs() < 1e-12);
        assert!((s.sigma() - 0.4).abs() < 1e-12);
        // Top quantile approaches w.
        assert!(s.quantile(0.999) <= 0.8 + 1e-9);
        assert!((s.mean() - 0.8 * h.mean()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_sigma_clamped() {
        let h = TwoBucketHistogram::new(1.0, 0.0, 0.8);
        assert!(h.sigma() > 0.0);
        let h = TwoBucketHistogram::new(1.0, 1.0, 0.8);
        assert!(h.sigma() < 1.0);
        // cdf is still monotone.
        assert!(h.cdf(0.3) <= h.cdf(0.9));
    }

    #[test]
    fn all_equal_scores() {
        let st = PatternStats::from_sorted_scores(&[1.0; 10]).unwrap();
        // 80% of mass is reached at rank 8: sigma stays 1.0.
        assert_eq!(st.sigma_r, 1.0);
        assert_eq!(st.m, 10);
        let h = st.histogram();
        // Nearly all quantiles near the top.
        assert!(h.quantile(0.5) > 0.9);
    }

    #[test]
    fn zero_scores_degenerate() {
        let st = PatternStats::from_sorted_scores(&[0.0, 0.0]).unwrap();
        let h = st.histogram();
        let q = h.quantile(0.5);
        assert!(q.is_finite());
    }
}
