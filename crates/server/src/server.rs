//! The TCP front-end: acceptor, per-connection reader/writer threads, and
//! the admission pipeline (frame → decode → quota → parse → `try_submit`).
//!
//! Every connection gets two threads. The *reader* decodes frames and runs
//! admission control; accepted requests go through
//! [`QueryService::try_submit`] (never the blocking `submit` — a full
//! execution queue must become an explicit `RetryAfter` wire error, not a
//! stalled connection). The *writer* drains a per-connection channel in
//! submission order, waiting on each [`Ticket`] and encoding the response,
//! so responses arrive in request order per connection while the execution
//! pool reorders freely across connections.
//!
//! Rejections happen at the cheapest possible layer: frame errors before
//! decode, quota before query parsing, queue admission before execution,
//! and deadline shedding inside the service before the executor runs.

use crate::protocol::{
    decode_request, decode_write, encode_answers, encode_error, encode_request, encode_write_ok,
    read_frame, write_frame, ErrorCode, WireAnswer, WireError, WireRequest, WireWriteOp, OP_WRITE,
};
use crate::quota::{QuotaConfig, QuotaRegistry};
use specqp_service::{
    ExecMode, QueryService, Request, ServiceError, ServiceStats, Ticket, WriteBatch,
};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tunables.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerConfig {
    /// Per-client token-bucket quota; `None` admits every client (the
    /// execution queue is then the only backpressure).
    pub quota: Option<QuotaConfig>,
}

impl ServerConfig {
    /// Config enforcing `quota` per client id.
    pub fn with_quota(quota: QuotaConfig) -> Self {
        ServerConfig { quota: Some(quota) }
    }
}

/// Monotone counters for the server-side rejection layers (the service
/// counts its own queue/deadline sheds — see
/// [`QueryService::lifetime_stats`]).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    quota_rejected: AtomicU64,
    protocol_errors: AtomicU64,
}

/// Snapshot of the server's rejection counters plus the underlying
/// service's lifetime stats — everything the probe needs to report
/// accepted/shed behavior under load.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections: u64,
    /// Requests refused by per-client quota (`RetryAfter` sent).
    pub quota_rejected: u64,
    /// Frames that failed to decode or validate (`Protocol` sent).
    pub protocol_errors: u64,
    /// The shared service's cumulative counters (submitted, completed,
    /// queue-full rejections, deadline sheds, per-mode latency).
    pub service: ServiceStats,
}

#[derive(Debug)]
struct Shared {
    service: Arc<QueryService>,
    quotas: QuotaRegistry,
    counters: Counters,
    stopping: AtomicBool,
    /// Write halves of live connections, kept so shutdown can unblock their
    /// reader threads.
    conns: Mutex<Vec<TcpStream>>,
}

/// A running Spec-QP wire server bound to a local TCP address.
///
/// The server borrows the service through an `Arc` and never shuts it down:
/// the caller owns the service lifecycle (several servers — or a server and
/// in-process batch drivers — can share one warm engine).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop.
    pub fn bind(
        service: Arc<QueryService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            quotas: QuotaRegistry::new(config.quota),
            counters: Counters::default(),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("specqp-acceptor".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor: Mutex::new(Some(acceptor)),
        })
    }

    /// The bound address (resolves ephemeral ports for clients/tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current rejection counters plus the service's lifetime stats.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.shared.counters.connections.load(Ordering::Relaxed),
            quota_rejected: self.shared.counters.quota_rejected.load(Ordering::Relaxed),
            protocol_errors: self.shared.counters.protocol_errors.load(Ordering::Relaxed),
            service: self.shared.service.lifetime_stats(),
        }
    }

    /// Stops accepting, unblocks every connection and joins the acceptor.
    /// Idempotent; also runs on drop. In-flight requests already admitted
    /// to the service still execute (their connections close, so responses
    /// are discarded — the service-side drain contract is tested at the
    /// service layer).
    pub fn shutdown(&self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.acceptor.lock().expect("acceptor poisoned").take() {
            let _ = handle.join();
        }
        for conn in self
            .shared
            .conns
            .lock()
            .expect("conn list poisoned")
            .drain(..)
        {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conn list poisoned").push(clone);
        }
        let shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("specqp-conn".into())
            .spawn(move || handle_connection(stream, shared));
    }
}

/// What the reader hands the writer, in submission order.
enum Outgoing {
    /// A pre-encoded frame (rejections) — written immediately.
    Ready(Vec<u8>),
    /// An admitted request: the writer waits on the ticket, then encodes.
    Pending(u64, Ticket),
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<Outgoing>();
    let writer = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("specqp-conn-writer".into())
            .spawn(move || writer_loop(write_half, rx, shared))
            .expect("spawn connection writer")
    };
    reader_loop(stream, &shared, &tx);
    // Reader done (EOF, error or shutdown): close the channel so the writer
    // finishes the backlog and exits.
    drop(tx);
    let _ = writer.join();
}

fn reader_loop(stream: TcpStream, shared: &Shared, tx: &mpsc::Sender<Outgoing>) {
    let mut reader = BufReader::new(stream);
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut reader) {
            Ok(p) => p,
            Err(WireError::Eof) | Err(WireError::Io(_)) => return,
            Err(e @ WireError::TooLarge(_)) | Err(e @ WireError::Malformed(_)) => {
                // The stream is still framed (oversized payloads are
                // drained); report and keep serving the connection.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let frame = encode_error(0, ErrorCode::Protocol, 0, &e.to_string());
                if tx.send(Outgoing::Ready(frame)).is_err() {
                    return;
                }
                continue;
            }
        };
        let out = admit(shared, &payload);
        if tx.send(out).is_err() {
            return;
        }
    }
}

/// Converts a retry-hint [`Duration`] to whole wire milliseconds, rounding
/// **up** and clamping to `[1, u32::MAX]`.
///
/// `as_millis()` truncates: a 1.4 ms throttle window would go out as 1 ms,
/// and a compliant client retrying after exactly the advertised wait would
/// arrive still-throttled and be bounced again (each bounce re-advertising
/// a truncated hint). Ceiling the conversion makes the hint an upper bound
/// on the remaining wait, so honouring it always succeeds.
fn retry_after_ms(wait: Duration) -> u32 {
    wait.as_nanos()
        .div_ceil(1_000_000)
        .clamp(1, u128::from(u32::MAX)) as u32
}

/// The admission pipeline for one decoded frame: each rejection layer is
/// strictly cheaper than the next stage it guards.
///
/// The opcode byte routes before any decoding happens — `WRITE` frames take
/// the synchronous commit path (writes are cheap interning + publication,
/// not queued execution), everything else is treated as a query request so
/// unknown opcodes surface as the decoder's typed `Protocol` error.
fn admit(shared: &Shared, payload: &[u8]) -> Outgoing {
    if payload.first() == Some(&OP_WRITE) {
        return admit_write(shared, payload);
    }
    let reject = |id: u64, code: ErrorCode, retry_ms: u32, msg: &str| {
        Outgoing::Ready(encode_error(id, code, retry_ms, msg))
    };
    let wire = match decode_request(payload) {
        Ok(w) => w,
        Err(e) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return reject(0, ErrorCode::Protocol, 0, &e.to_string());
        }
    };
    let id = wire.request_id;
    let Some(mode) = ExecMode::from_index(wire.mode as usize) else {
        shared
            .counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        return reject(
            id,
            ErrorCode::Protocol,
            0,
            &format!("unknown mode byte {}", wire.mode),
        );
    };
    if wire.k == 0 {
        shared
            .counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        return reject(id, ErrorCode::Protocol, 0, "k must be >= 1");
    }
    // Quota before parsing: a throttled client must not spend parse cycles.
    if let Err(wait) = shared.quotas.try_acquire(wire.client_id) {
        shared
            .counters
            .quota_rejected
            .fetch_add(1, Ordering::Relaxed);
        let ms = retry_after_ms(wait);
        return reject(id, ErrorCode::RetryAfter, ms, "client quota exhausted");
    }
    // Pin the current graph version for parsing: term ids are append-only
    // across commits, so a query parsed against the newest dictionary
    // resolves identically on any version pinned later by the executor.
    let graph = shared.service.engine().graph();
    let query = match sparql::parse_query(&wire.query, graph.dictionary()) {
        Ok(q) => q,
        Err(e) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return reject(
                id,
                ErrorCode::Protocol,
                0,
                &format!("query parse error: {e}"),
            );
        }
    };
    let mut request = Request::new(query, wire.k as usize)
        .with_mode(mode)
        .with_client(wire.client_id);
    if wire.deadline_ms > 0 {
        request = request.with_deadline_in(Duration::from_millis(u64::from(wire.deadline_ms)));
    }
    match shared.service.try_submit(request) {
        Ok(ticket) => Outgoing::Pending(id, ticket),
        Err(ServiceError::QueueFull { retry_after }) => {
            let ms = retry_after_ms(retry_after);
            reject(id, ErrorCode::RetryAfter, ms, "execution queue full")
        }
        Err(ServiceError::ShuttingDown) => {
            reject(id, ErrorCode::ShuttingDown, 0, "service is shutting down")
        }
        Err(e) => reject(id, ErrorCode::Internal, 0, &e.to_string()),
    }
}

/// Admission for a `WRITE` frame: decode, quota, then commit through
/// [`QueryService::apply_writes`]. Commits are synchronous — by the time
/// `WRITE_OK` reaches the client, the new epoch is published and every
/// *later* query on any connection sees it (already-pinned queries keep
/// their version; see the service docs on epoch-pinned reads).
fn admit_write(shared: &Shared, payload: &[u8]) -> Outgoing {
    let reject = |id: u64, code: ErrorCode, retry_ms: u32, msg: &str| {
        Outgoing::Ready(encode_error(id, code, retry_ms, msg))
    };
    let wire = match decode_write(payload) {
        Ok(w) => w,
        Err(e) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return reject(0, ErrorCode::Protocol, 0, &e.to_string());
        }
    };
    let id = wire.request_id;
    // Writes draw from the same per-client token bucket as queries: a
    // write-hot client cannot starve read admission for everyone else.
    if let Err(wait) = shared.quotas.try_acquire(wire.client_id) {
        shared
            .counters
            .quota_rejected
            .fetch_add(1, Ordering::Relaxed);
        let ms = retry_after_ms(wait);
        return reject(id, ErrorCode::RetryAfter, ms, "client quota exhausted");
    }
    let mut batch = WriteBatch::new();
    for op in &wire.ops {
        match op {
            WireWriteOp::Assert { s, p, o, score } => {
                batch.assert(s, p, o, *score);
            }
            WireWriteOp::Retract { s, p, o } => {
                batch.retract(s, p, o);
            }
        }
    }
    match shared.service.apply_writes(&batch) {
        Ok(epoch) => Outgoing::Ready(encode_write_ok(id, epoch.value())),
        Err(ServiceError::ShuttingDown) => {
            reject(id, ErrorCode::ShuttingDown, 0, "service is shutting down")
        }
        Err(e @ ServiceError::ReadOnly) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            reject(id, ErrorCode::Protocol, 0, &e.to_string())
        }
        Err(ServiceError::Protocol(msg)) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            reject(id, ErrorCode::Protocol, 0, &msg)
        }
        Err(e) => reject(id, ErrorCode::Internal, 0, &e.to_string()),
    }
}

fn writer_loop(stream: TcpStream, rx: mpsc::Receiver<Outgoing>, shared: Arc<Shared>) {
    let mut writer = BufWriter::new(stream);
    for out in rx {
        let frame = match out {
            Outgoing::Ready(frame) => frame,
            Outgoing::Pending(id, ticket) => {
                let response = ticket.wait();
                encode_response_frame(id, response, &shared)
            }
        };
        if write_frame(&mut writer, &frame).is_err() {
            return;
        }
    }
    let _ = writer.flush();
}

/// Encodes an executed (or shed) service response as a wire frame.
fn encode_response_frame(id: u64, response: specqp_service::Response, shared: &Shared) -> Vec<u8> {
    match response.outcome {
        Ok(outcome) => {
            let graph = shared.service.engine().graph();
            let dict = graph.dictionary();
            let answers: Vec<WireAnswer> = outcome
                .answers
                .iter()
                .map(|a| WireAnswer {
                    score: a.score.value(),
                    bindings: a
                        .binding
                        .iter()
                        .map(|(var, term)| (var.0, dict.name_or_unknown(term).to_string()))
                        .collect(),
                })
                .collect();
            let frame = encode_answers(id, &answers);
            if frame.len() > crate::protocol::MAX_FRAME {
                encode_error(id, ErrorCode::Internal, 0, "response exceeds frame ceiling")
            } else {
                frame
            }
        }
        Err(ServiceError::DeadlineExceeded) => encode_error(
            id,
            ErrorCode::DeadlineExceeded,
            0,
            "deadline expired while queued",
        ),
        Err(ServiceError::ShuttingDown) => {
            encode_error(id, ErrorCode::ShuttingDown, 0, "service is shutting down")
        }
        Err(e) => encode_error(id, ErrorCode::Internal, 0, &e.to_string()),
    }
}

/// Convenience for tests and the bench driver: encodes a [`WireRequest`]
/// as a ready-to-send frame payload.
pub fn request_frame(req: &WireRequest) -> Vec<u8> {
    encode_request(req)
}

#[cfg(test)]
mod tests {
    use super::retry_after_ms;
    use std::time::Duration;

    #[test]
    fn retry_after_rounds_fractional_millis_up() {
        // The truncation bug this pins: 1.4 ms must advertise 2 ms, not 1.
        assert_eq!(retry_after_ms(Duration::from_micros(1_400)), 2);
        assert_eq!(retry_after_ms(Duration::from_nanos(1_000_001)), 2);
        assert_eq!(retry_after_ms(Duration::from_micros(2_999)), 3);
    }

    #[test]
    fn retry_after_exact_millis_pass_through() {
        assert_eq!(retry_after_ms(Duration::from_millis(1)), 1);
        assert_eq!(retry_after_ms(Duration::from_millis(250)), 250);
        assert_eq!(retry_after_ms(Duration::from_secs(2)), 2_000);
    }

    #[test]
    fn retry_after_never_advertises_zero() {
        // A zero hint would mean "retry immediately" — guaranteed bounce.
        assert_eq!(retry_after_ms(Duration::ZERO), 1);
        assert_eq!(retry_after_ms(Duration::from_nanos(1)), 1);
        assert_eq!(retry_after_ms(Duration::from_micros(999)), 1);
    }

    #[test]
    fn retry_after_saturates_at_u32_max() {
        assert_eq!(retry_after_ms(Duration::from_secs(u64::MAX / 2)), u32::MAX);
        let exactly_max = Duration::from_millis(u64::from(u32::MAX));
        assert_eq!(retry_after_ms(exactly_max), u32::MAX);
    }
}
