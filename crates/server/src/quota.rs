//! Per-client token-bucket quotas.
//!
//! Each client id gets a bucket holding up to `burst` tokens, refilled
//! continuously at `rate_per_sec`. Admitting a request costs one token; an
//! empty bucket yields a retry-after hint (the time until one token
//! accrues) that the server forwards as a `RetryAfter` wire error, so a
//! greedy client is throttled *explicitly* instead of starving everyone
//! else inside the shared execution queue.
//!
//! Time is injected (`try_acquire_at`) so the refill math is testable
//! without sleeping.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Token-bucket parameters applied to every client id.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Steady-state admitted requests per second per client.
    pub rate_per_sec: f64,
    /// Bucket capacity: the burst a client can spend instantly after idling.
    pub burst: f64,
}

impl QuotaConfig {
    /// A quota of `rate_per_sec` with a burst of the same size (1 second of
    /// accrual), the common default.
    pub fn per_sec(rate_per_sec: f64) -> Self {
        QuotaConfig {
            rate_per_sec,
            burst: rate_per_sec.max(1.0),
        }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// Lazily-populated per-client buckets behind one mutex. Quota checks are
/// O(1) hash operations on the admission path — three orders of magnitude
/// cheaper than query execution, so one lock is not a bottleneck here.
#[derive(Debug)]
pub struct QuotaRegistry {
    config: Option<QuotaConfig>,
    buckets: Mutex<HashMap<u64, Bucket>>,
}

impl QuotaRegistry {
    /// A registry enforcing `config`, or admitting everything when `None`.
    pub fn new(config: Option<QuotaConfig>) -> Self {
        QuotaRegistry {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// `true` when no quota is configured (every request admits).
    pub fn is_unlimited(&self) -> bool {
        self.config.is_none()
    }

    /// Spends one token from `client_id`'s bucket, or returns how long the
    /// client should back off before one token will have accrued.
    pub fn try_acquire(&self, client_id: u64) -> Result<(), Duration> {
        self.try_acquire_at(client_id, Instant::now())
    }

    /// [`try_acquire`](QuotaRegistry::try_acquire) with an injected clock.
    /// `now` must be monotone per client; a stale `now` is treated as "no
    /// time passed".
    pub fn try_acquire_at(&self, client_id: u64, now: Instant) -> Result<(), Duration> {
        let Some(cfg) = self.config else {
            return Ok(());
        };
        let mut buckets = self.buckets.lock().expect("quota registry poisoned");
        let bucket = buckets.entry(client_id).or_insert(Bucket {
            tokens: cfg.burst,
            refilled: now,
        });
        // Credit only *whole* tokens, and advance the refill clock by
        // exactly the time those tokens took to accrue — the fractional
        // remainder stays in the clock, not in the balance. Crediting
        // fractions on every call (`tokens += elapsed * rate`) lets float
        // rounding drift the balance when a throttled client polls at
        // sub-token intervals; keeping the balance integral makes every
        // refill boundary exact. At the burst cap the clock snaps to `now`:
        // surplus idle time is forfeited, never banked.
        let elapsed = now.saturating_duration_since(bucket.refilled);
        let accrued = (elapsed.as_secs_f64() * cfg.rate_per_sec).floor();
        if accrued >= 1.0 {
            if bucket.tokens + accrued >= cfg.burst {
                bucket.tokens = cfg.burst;
                bucket.refilled = now;
            } else {
                bucket.tokens += accrued;
                bucket.refilled += Duration::from_secs_f64(accrued / cfg.rate_per_sec);
            }
        }
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            // Time already sitting in the refill clock counts toward the
            // next token, so the hint shrinks as the wait progresses.
            let since_refill = now.saturating_duration_since(bucket.refilled).as_secs_f64();
            let deficit = 1.0 - bucket.tokens;
            let wait = deficit / cfg.rate_per_sec.max(f64::MIN_POSITIVE) - since_refill;
            Err(Duration::from_secs_f64(wait.max(1e-9)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_registry_admits_everything() {
        let q = QuotaRegistry::new(None);
        assert!(q.is_unlimited());
        let now = Instant::now();
        for i in 0..10_000 {
            assert!(q.try_acquire_at(i % 3, now).is_ok());
        }
    }

    #[test]
    fn burst_then_throttle_then_refill() {
        let q = QuotaRegistry::new(Some(QuotaConfig {
            rate_per_sec: 10.0,
            burst: 5.0,
        }));
        let t0 = Instant::now();
        // The full burst admits instantly.
        for _ in 0..5 {
            assert!(q.try_acquire_at(1, t0).is_ok());
        }
        // The 6th is refused with a hint of ~1/rate.
        let hint = q.try_acquire_at(1, t0).unwrap_err();
        assert!(hint > Duration::ZERO);
        assert!(hint <= Duration::from_millis(100), "hint {hint:?}");
        // After the hinted wait, exactly one more token has accrued.
        let t1 = t0 + hint;
        assert!(q.try_acquire_at(1, t1).is_ok());
        assert!(q.try_acquire_at(1, t1).is_err(), "only one token accrued");
        // A long idle refills to the burst cap, not beyond.
        let t2 = t1 + Duration::from_secs(60);
        for _ in 0..5 {
            assert!(q.try_acquire_at(1, t2).is_ok());
        }
        assert!(q.try_acquire_at(1, t2).is_err());
    }

    #[test]
    fn clients_have_independent_buckets() {
        let q = QuotaRegistry::new(Some(QuotaConfig::per_sec(2.0)));
        let t0 = Instant::now();
        assert!(q.try_acquire_at(1, t0).is_ok());
        assert!(q.try_acquire_at(1, t0).is_ok());
        assert!(q.try_acquire_at(1, t0).is_err(), "client 1 exhausted");
        // Client 2 is untouched by client 1's spending.
        assert!(q.try_acquire_at(2, t0).is_ok());
    }

    #[test]
    fn sub_token_polls_do_not_drift_the_refill_clock() {
        // One token per millisecond. A throttled client hammering the
        // endpoint inside one refill period must see the token appear at
        // the exact boundary — failed polls never nudge the clock.
        let q = QuotaRegistry::new(Some(QuotaConfig {
            rate_per_sec: 1000.0,
            burst: 1.0,
        }));
        let t0 = Instant::now();
        assert!(q.try_acquire_at(1, t0).is_ok());
        for us in [100, 400, 900] {
            assert!(
                q.try_acquire_at(1, t0 + Duration::from_micros(us)).is_err(),
                "{us}µs: no whole token has accrued yet"
            );
        }
        assert!(q.try_acquire_at(1, t0 + Duration::from_millis(1)).is_ok());
        assert!(q
            .try_acquire_at(1, t0 + Duration::from_micros(1900))
            .is_err());
        assert!(q.try_acquire_at(1, t0 + Duration::from_millis(2)).is_ok());
    }

    #[test]
    fn retry_hint_credits_partial_accrual() {
        let q = QuotaRegistry::new(Some(QuotaConfig {
            rate_per_sec: 10.0,
            burst: 1.0,
        }));
        let t0 = Instant::now();
        assert!(q.try_acquire_at(3, t0).is_ok());
        // 60 ms into the 100 ms refill period, ~40 ms remain.
        let hint = q
            .try_acquire_at(3, t0 + Duration::from_millis(60))
            .unwrap_err();
        assert!(hint >= Duration::from_millis(39), "hint {hint:?}");
        assert!(hint <= Duration::from_millis(41), "hint {hint:?}");
        // Honouring the hint admits.
        assert!(q
            .try_acquire_at(3, t0 + Duration::from_millis(60) + hint)
            .is_ok());
    }

    #[test]
    fn long_idle_snaps_clock_to_now_at_burst_cap() {
        let q = QuotaRegistry::new(Some(QuotaConfig {
            rate_per_sec: 1.0,
            burst: 2.0,
        }));
        let t0 = Instant::now();
        assert!(q.try_acquire_at(9, t0).is_ok());
        let t1 = t0 + Duration::from_secs(3600);
        assert!(q.try_acquire_at(9, t1).is_ok());
        assert!(q.try_acquire_at(9, t1).is_ok());
        // The hour of surplus idle time was forfeited, not banked: the next
        // token is a full second away.
        let hint = q.try_acquire_at(9, t1).unwrap_err();
        assert!(hint >= Duration::from_millis(999), "hint {hint:?}");
    }

    #[test]
    fn stale_clock_does_not_mint_tokens() {
        let q = QuotaRegistry::new(Some(QuotaConfig::per_sec(1.0)));
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_secs(5);
        assert!(q.try_acquire_at(7, t1).is_ok());
        // A clock that runs backwards must not refill the bucket.
        assert!(q.try_acquire_at(7, t0).is_err());
    }
}
