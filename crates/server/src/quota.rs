//! Per-client token-bucket quotas.
//!
//! Each client id gets a bucket holding up to `burst` tokens, refilled
//! continuously at `rate_per_sec`. Admitting a request costs one token; an
//! empty bucket yields a retry-after hint (the time until one token
//! accrues) that the server forwards as a `RetryAfter` wire error, so a
//! greedy client is throttled *explicitly* instead of starving everyone
//! else inside the shared execution queue.
//!
//! Time is injected (`try_acquire_at`) so the refill math is testable
//! without sleeping.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Token-bucket parameters applied to every client id.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Steady-state admitted requests per second per client.
    pub rate_per_sec: f64,
    /// Bucket capacity: the burst a client can spend instantly after idling.
    pub burst: f64,
}

impl QuotaConfig {
    /// A quota of `rate_per_sec` with a burst of the same size (1 second of
    /// accrual), the common default.
    pub fn per_sec(rate_per_sec: f64) -> Self {
        QuotaConfig {
            rate_per_sec,
            burst: rate_per_sec.max(1.0),
        }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// Lazily-populated per-client buckets behind one mutex. Quota checks are
/// O(1) hash operations on the admission path — three orders of magnitude
/// cheaper than query execution, so one lock is not a bottleneck here.
#[derive(Debug)]
pub struct QuotaRegistry {
    config: Option<QuotaConfig>,
    buckets: Mutex<HashMap<u64, Bucket>>,
}

impl QuotaRegistry {
    /// A registry enforcing `config`, or admitting everything when `None`.
    pub fn new(config: Option<QuotaConfig>) -> Self {
        QuotaRegistry {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// `true` when no quota is configured (every request admits).
    pub fn is_unlimited(&self) -> bool {
        self.config.is_none()
    }

    /// Spends one token from `client_id`'s bucket, or returns how long the
    /// client should back off before one token will have accrued.
    pub fn try_acquire(&self, client_id: u64) -> Result<(), Duration> {
        self.try_acquire_at(client_id, Instant::now())
    }

    /// [`try_acquire`](QuotaRegistry::try_acquire) with an injected clock.
    /// `now` must be monotone per client; a stale `now` is treated as "no
    /// time passed".
    pub fn try_acquire_at(&self, client_id: u64, now: Instant) -> Result<(), Duration> {
        let Some(cfg) = self.config else {
            return Ok(());
        };
        let mut buckets = self.buckets.lock().expect("quota registry poisoned");
        let bucket = buckets.entry(client_id).or_insert(Bucket {
            tokens: cfg.burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled);
        bucket.tokens = (bucket.tokens + elapsed.as_secs_f64() * cfg.rate_per_sec).min(cfg.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            Err(Duration::from_secs_f64(
                deficit / cfg.rate_per_sec.max(f64::MIN_POSITIVE),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_registry_admits_everything() {
        let q = QuotaRegistry::new(None);
        assert!(q.is_unlimited());
        let now = Instant::now();
        for i in 0..10_000 {
            assert!(q.try_acquire_at(i % 3, now).is_ok());
        }
    }

    #[test]
    fn burst_then_throttle_then_refill() {
        let q = QuotaRegistry::new(Some(QuotaConfig {
            rate_per_sec: 10.0,
            burst: 5.0,
        }));
        let t0 = Instant::now();
        // The full burst admits instantly.
        for _ in 0..5 {
            assert!(q.try_acquire_at(1, t0).is_ok());
        }
        // The 6th is refused with a hint of ~1/rate.
        let hint = q.try_acquire_at(1, t0).unwrap_err();
        assert!(hint > Duration::ZERO);
        assert!(hint <= Duration::from_millis(100), "hint {hint:?}");
        // After the hinted wait, exactly one more token has accrued.
        let t1 = t0 + hint;
        assert!(q.try_acquire_at(1, t1).is_ok());
        assert!(q.try_acquire_at(1, t1).is_err(), "only one token accrued");
        // A long idle refills to the burst cap, not beyond.
        let t2 = t1 + Duration::from_secs(60);
        for _ in 0..5 {
            assert!(q.try_acquire_at(1, t2).is_ok());
        }
        assert!(q.try_acquire_at(1, t2).is_err());
    }

    #[test]
    fn clients_have_independent_buckets() {
        let q = QuotaRegistry::new(Some(QuotaConfig::per_sec(2.0)));
        let t0 = Instant::now();
        assert!(q.try_acquire_at(1, t0).is_ok());
        assert!(q.try_acquire_at(1, t0).is_ok());
        assert!(q.try_acquire_at(1, t0).is_err(), "client 1 exhausted");
        // Client 2 is untouched by client 1's spending.
        assert!(q.try_acquire_at(2, t0).is_ok());
    }

    #[test]
    fn stale_clock_does_not_mint_tokens() {
        let q = QuotaRegistry::new(Some(QuotaConfig::per_sec(1.0)));
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_secs(5);
        assert!(q.try_acquire_at(7, t1).is_ok());
        // A clock that runs backwards must not refill the bucket.
        assert!(q.try_acquire_at(7, t0).is_err());
    }
}
