//! # specqp_server — the wire front-end for the Spec-QP query service
//!
//! Serving is where speculative planning earns its keep, and serving
//! means open-loop arrival: clients connect over TCP, requests arrive
//! whether or not the engine is ready, and the server's job under overload
//! is to *reject explicitly* rather than queue unboundedly. This crate is
//! that front door:
//!
//! * [`protocol`] — the length-prefixed binary codec (pure bytes ⇄ structs),
//! * [`quota`] — per-client token buckets,
//! * [`Server`] — acceptor + per-connection reader/writer threads feeding
//!   [`QueryService::try_submit`](specqp_service::QueryService::try_submit),
//! * [`SpecQpClient`] — a minimal blocking client for tests and benches.
//!
//! Rejection layers, cheapest first: unreadable frames → `Protocol`;
//! exhausted client quota → `RetryAfter(ms)`; full execution queue →
//! `RetryAfter(ms)`; deadline expired while queued → `DeadlineExceeded`
//! (shed inside the service, never executed).
//!
//! ```
//! use std::sync::Arc;
//! use kgstore::KnowledgeGraphBuilder;
//! use relax::RelaxationRegistry;
//! use specqp_server::{Server, ServerConfig, SpecQpClient, WireResponse};
//! use specqp_service::{ExecMode, QueryService, ServiceConfig};
//!
//! let mut b = KnowledgeGraphBuilder::new();
//! b.add("shakira", "rdf:type", "singer", 100.0);
//! b.add("adele", "rdf:type", "singer", 90.0);
//! let service = Arc::new(QueryService::new(
//!     Arc::new(b.build()),
//!     Arc::new(RelaxationRegistry::new()),
//!     ServiceConfig::with_threads(2),
//! ));
//!
//! let server = Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = SpecQpClient::connect(server.local_addr()).unwrap();
//! let reply = client
//!     .roundtrip("SELECT ?s WHERE { ?s <rdf:type> <singer> }", ExecMode::SpecQp, 5, 0, 1)
//!     .unwrap();
//! match reply {
//!     WireResponse::Answers { answers, .. } => assert_eq!(answers.len(), 2),
//!     other => panic!("unexpected reply: {other:?}"),
//! }
//! server.shutdown();
//! ```

pub mod client;
pub mod protocol;
pub mod quota;
mod server;

pub use client::SpecQpClient;
pub use protocol::{
    ErrorCode, WireAnswer, WireError, WireRequest, WireResponse, WireWrite, WireWriteOp, MAX_FRAME,
    OP_ANSWERS, OP_ERROR, OP_QUERY, OP_WRITE, OP_WRITE_OK,
};
pub use quota::{QuotaConfig, QuotaRegistry};
pub use server::{request_frame, Server, ServerConfig, ServerStats};
