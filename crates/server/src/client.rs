//! A minimal blocking client for the wire protocol, used by the loopback
//! integration tests and the open-loop bench driver.
//!
//! The client is split-safe: [`SpecQpClient::try_clone`] yields a second
//! handle over the same TCP connection, so an open-loop driver can send
//! from one thread while another drains responses (responses arrive in
//! request order per connection; correlate via `request_id`).

use crate::protocol::{
    decode_response, encode_request, encode_write, read_frame, write_frame, WireError, WireRequest,
    WireResponse, WireWrite, WireWriteOp,
};
use specqp_service::ExecMode;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a Spec-QP wire server.
#[derive(Debug)]
pub struct SpecQpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl SpecQpClient {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<SpecQpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(SpecQpClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Bounds blocking reads on this handle (`None` blocks forever). Lets
    /// open-loop drivers fail instead of hanging if the server wedges.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// A second handle over the same connection (shared socket, independent
    /// buffers) for split send/receive threads.
    pub fn try_clone(&self) -> io::Result<SpecQpClient> {
        let stream = self.writer.try_clone()?;
        let writer = stream.try_clone()?;
        Ok(SpecQpClient {
            reader: BufReader::new(stream),
            writer,
            // Clones used for receiving should not send; ids spaced far
            // apart keep accidental overlap visible in tests.
            next_id: self.next_id.wrapping_add(1 << 32),
        })
    }

    /// Sends one query request; returns the request id to correlate the
    /// response with.
    pub fn send(
        &mut self,
        query: &str,
        mode: ExecMode,
        k: u32,
        deadline_ms: u32,
        client_id: u64,
    ) -> Result<u64, WireError> {
        let request_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let req = WireRequest {
            request_id,
            client_id,
            mode: mode.index() as u8,
            k,
            deadline_ms,
            query: query.to_string(),
        };
        write_frame(&mut self.writer, &encode_request(&req))?;
        Ok(request_id)
    }

    /// Sends one write batch; returns the request id to correlate the
    /// `WriteOk` (or error) response with. Ops are applied atomically
    /// server-side under a single new epoch.
    pub fn send_writes(&mut self, ops: Vec<WireWriteOp>, client_id: u64) -> Result<u64, WireError> {
        let request_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let write = WireWrite {
            request_id,
            client_id,
            ops,
        };
        write_frame(&mut self.writer, &encode_write(&write))?;
        Ok(request_id)
    }

    /// Send a write batch + receive its response in one call. Returns the
    /// published epoch on success; any other response (an error frame, or a
    /// mis-ordered answers frame) comes back as [`WireError::Malformed`]
    /// carrying the rendered response.
    pub fn apply_writes(
        &mut self,
        ops: Vec<WireWriteOp>,
        client_id: u64,
    ) -> Result<u64, WireError> {
        let id = self.send_writes(ops, client_id)?;
        match self.recv()? {
            WireResponse::WriteOk { request_id, epoch } if request_id == id => Ok(epoch),
            other => Err(WireError::Malformed(format!(
                "expected WriteOk for request {id}, got {other:?}"
            ))),
        }
    }

    /// Sends a raw, possibly malformed payload (tests of the server's
    /// protocol-error path).
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), WireError> {
        write_frame(&mut self.writer, payload)
    }

    /// Receives the next response frame.
    pub fn recv(&mut self) -> Result<WireResponse, WireError> {
        let payload = read_frame(&mut self.reader)?;
        decode_response(&payload)
    }

    /// Send + receive in one call (closed-loop usage).
    pub fn roundtrip(
        &mut self,
        query: &str,
        mode: ExecMode,
        k: u32,
        deadline_ms: u32,
        client_id: u64,
    ) -> Result<WireResponse, WireError> {
        self.send(query, mode, k, deadline_ms, client_id)?;
        self.recv()
    }
}
