//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every message is one *frame*: a `u32` big-endian payload length followed
//! by that many payload bytes. The first payload byte is the opcode. All
//! integers are big-endian; strings are UTF-8 with a length prefix.
//!
//! ```text
//! frame      := len:u32 payload[len]                     (len ≤ MAX_FRAME)
//!
//! QUERY      := 0x01 request_id:u64 client_id:u64 mode:u8 k:u32
//!               deadline_ms:u32 query_len:u32 query[query_len]
//!
//! WRITE      := 0x02 request_id:u64 client_id:u64 count:u32 op[count]
//! op         := kind:u8 term term term (score:f64 when kind = 0)
//! term       := len:u16 bytes[len]
//!
//! ANSWERS    := 0x81 request_id:u64 count:u32 answer[count]
//! answer     := score:f64 arity:u16 binding[arity]
//! binding    := var:u32 term_len:u16 term[term_len]
//!
//! ERROR      := 0x82 request_id:u64 code:u8 retry_after_ms:u32
//!               msg_len:u16 msg[msg_len]
//!
//! WRITE_OK   := 0x83 request_id:u64 epoch:u64
//! ```
//!
//! A `WRITE` op's `kind` is 0 for an assert (upsert of the 〈s,p,o〉 triple at
//! the given score) and 1 for a retract. The terms travel as raw strings —
//! the server interns them against the live dictionary on commit. A
//! successful write answers with `WRITE_OK` carrying the epoch the batch
//! published; failures reuse `ERROR` (a read-only server answers
//! [`ErrorCode::Protocol`] since retrying cannot succeed).
//!
//! `mode` is [`ExecMode::index`](specqp_service::ExecMode::index) as a byte
//! (0 = specqp, 1 = trinit, 2 = naive). `deadline_ms == 0` means no
//! deadline. Scores travel as IEEE-754 bit patterns (`f64::to_bits`), so
//! answers survive the round-trip bit-exactly.
//!
//! This module is pure bytes ⇄ structs — no sockets — so every encoder has
//! a decoder and the codec is unit-testable without a listener.

use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on frame payload size (64 KiB). Oversized inbound frames
/// are drained and rejected with [`WireError::TooLarge`] so the stream
/// stays framed; oversized outbound responses become [`ErrorCode::Internal`].
pub const MAX_FRAME: usize = 64 * 1024;

/// Client → server query submission.
pub const OP_QUERY: u8 = 0x01;
/// Client → server write-batch submission.
pub const OP_WRITE: u8 = 0x02;
/// Server → client successful answer set.
pub const OP_ANSWERS: u8 = 0x81;
/// Server → client typed error.
pub const OP_ERROR: u8 = 0x82;
/// Server → client write acknowledgement carrying the published epoch.
pub const OP_WRITE_OK: u8 = 0x83;

/// Typed error codes carried by `ERROR` frames — the wire projection of
/// [`specqp_service::ServiceError`] plus quota rejection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Load shed (full queue or exhausted quota): back off for
    /// `retry_after_ms` and retry the identical request.
    RetryAfter = 1,
    /// The deadline expired while the request was queued; it never ran.
    DeadlineExceeded = 2,
    /// The server is draining; open a new connection elsewhere.
    ShuttingDown = 3,
    /// The request was malformed (bad frame, unknown opcode/mode, zero `k`,
    /// unparseable query). Retrying the identical bytes cannot succeed.
    Protocol = 4,
    /// The query panicked or the response could not be encoded.
    Internal = 5,
}

impl ErrorCode {
    /// Decodes the wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::RetryAfter),
            2 => Some(ErrorCode::DeadlineExceeded),
            3 => Some(ErrorCode::ShuttingDown),
            4 => Some(ErrorCode::Protocol),
            5 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Eof,
    /// Socket-level failure (including EOF mid-frame).
    Io(io::Error),
    /// The declared payload length exceeded the frame ceiling; the payload
    /// was drained so the next frame can still be read.
    TooLarge(usize),
    /// The payload bytes did not decode as a valid message.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            WireError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A decoded `QUERY` frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireRequest {
    /// Client-chosen correlation id echoed on the response.
    pub request_id: u64,
    /// Quota accounting identity (0 = anonymous).
    pub client_id: u64,
    /// Executor mode byte ([`specqp_service::ExecMode::index`]).
    pub mode: u8,
    /// Top-k budget (must be ≥ 1; enforced by the server, not the codec).
    pub k: u32,
    /// Shed-by budget in milliseconds from arrival; 0 = no deadline.
    pub deadline_ms: u32,
    /// The SPARQL-subset query text.
    pub query: String,
}

/// One operation inside a `WRITE` frame.
#[derive(Clone, Debug, PartialEq)]
pub enum WireWriteOp {
    /// Upsert 〈s,p,o〉 at `score` (kind byte 0).
    Assert {
        /// Subject term.
        s: String,
        /// Predicate term.
        p: String,
        /// Object term.
        o: String,
        /// Triple score (bit-exact across the wire).
        score: f64,
    },
    /// Remove 〈s,p,o〉 if present (kind byte 1).
    Retract {
        /// Subject term.
        s: String,
        /// Predicate term.
        p: String,
        /// Object term.
        o: String,
    },
}

/// A decoded `WRITE` frame: one batch of operations committed atomically
/// under a single epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct WireWrite {
    /// Client-chosen correlation id echoed on the response.
    pub request_id: u64,
    /// Quota accounting identity (0 = anonymous).
    pub client_id: u64,
    /// The operations, applied in order.
    pub ops: Vec<WireWriteOp>,
}

/// One answer inside an `ANSWERS` frame: the score plus resolved
/// `(variable, term name)` bindings.
#[derive(Clone, Debug, PartialEq)]
pub struct WireAnswer {
    /// Accumulated answer score (bit-exact across the wire).
    pub score: f64,
    /// `(variable id, term name)` pairs in binding order.
    pub bindings: Vec<(u32, String)>,
}

/// A decoded server → client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum WireResponse {
    /// The query executed; top-k answers in rank order.
    Answers {
        /// Echo of [`WireRequest::request_id`].
        request_id: u64,
        /// The ranked answer set.
        answers: Vec<WireAnswer>,
    },
    /// A write batch committed; `epoch` is the version it published.
    WriteOk {
        /// Echo of [`WireWrite::request_id`].
        request_id: u64,
        /// The epoch the batch published (`Epoch::value` on the server
        /// side).
        epoch: u64,
    },
    /// The request was rejected, shed or failed.
    Error {
        /// Echo of the request id (0 when the frame was too broken to
        /// recover one).
        request_id: u64,
        /// The typed cause.
        code: ErrorCode,
        /// Back-off hint in milliseconds (meaningful for
        /// [`ErrorCode::RetryAfter`], 0 otherwise).
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
}

impl WireResponse {
    /// The correlation id this response answers.
    pub fn request_id(&self) -> u64 {
        match self {
            WireResponse::Answers { request_id, .. } => *request_id,
            WireResponse::WriteOk { request_id, .. } => *request_id,
            WireResponse::Error { request_id, .. } => *request_id,
        }
    }
}

/// Writes one frame (length prefix + payload). Fails with
/// [`WireError::TooLarge`] instead of writing a frame the peer would
/// reject.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::TooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame payload. Returns [`WireError::Eof`] on a clean close at
/// a frame boundary; an oversized frame is drained (keeping the stream
/// framed) and reported as [`WireError::TooLarge`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no bytes of the next frame) from truncation.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Err(WireError::Eof),
        Ok(_) => {}
        Err(e) => return Err(WireError::Io(e)),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        // Drain the oversized payload so the next frame parses.
        io::copy(&mut r.take(len as u64), &mut io::sink())?;
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Encodes a `QUERY` payload.
pub fn encode_request(req: &WireRequest) -> Vec<u8> {
    let q = req.query.as_bytes();
    let mut out = Vec::with_capacity(30 + q.len());
    out.push(OP_QUERY);
    out.extend_from_slice(&req.request_id.to_be_bytes());
    out.extend_from_slice(&req.client_id.to_be_bytes());
    out.push(req.mode);
    out.extend_from_slice(&req.k.to_be_bytes());
    out.extend_from_slice(&req.deadline_ms.to_be_bytes());
    out.extend_from_slice(&(q.len() as u32).to_be_bytes());
    out.extend_from_slice(q);
    out
}

/// Appends one length-prefixed term (truncated to `u16` length).
fn push_term(out: &mut Vec<u8>, term: &str) {
    let t = &term.as_bytes()[..term.len().min(u16::MAX as usize)];
    out.extend_from_slice(&(t.len() as u16).to_be_bytes());
    out.extend_from_slice(t);
}

/// Encodes a `WRITE` payload.
pub fn encode_write(write: &WireWrite) -> Vec<u8> {
    let mut out = Vec::with_capacity(21 + write.ops.len() * 32);
    out.push(OP_WRITE);
    out.extend_from_slice(&write.request_id.to_be_bytes());
    out.extend_from_slice(&write.client_id.to_be_bytes());
    out.extend_from_slice(&(write.ops.len() as u32).to_be_bytes());
    for op in &write.ops {
        match op {
            WireWriteOp::Assert { s, p, o, score } => {
                out.push(0);
                push_term(&mut out, s);
                push_term(&mut out, p);
                push_term(&mut out, o);
                out.extend_from_slice(&score.to_bits().to_be_bytes());
            }
            WireWriteOp::Retract { s, p, o } => {
                out.push(1);
                push_term(&mut out, s);
                push_term(&mut out, p);
                push_term(&mut out, o);
            }
        }
    }
    out
}

/// Decodes a `WRITE` payload (opcode included).
pub fn decode_write(payload: &[u8]) -> Result<WireWrite, WireError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    if op != OP_WRITE {
        return Err(WireError::Malformed(format!("unknown opcode 0x{op:02x}")));
    }
    let request_id = c.u64()?;
    let client_id = c.u64()?;
    let count = c.u32()? as usize;
    // An op is ≥ 7 bytes (kind + three empty terms); reject counts the
    // payload cannot hold.
    if count > payload.len() / 7 {
        return Err(WireError::Malformed(format!("op count {count} too large")));
    }
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let kind = c.u8()?;
        let term = |c: &mut Cursor<'_>| -> Result<String, WireError> {
            let len = c.u16()? as usize;
            c.string(len)
        };
        let s = term(&mut c)?;
        let p = term(&mut c)?;
        let o = term(&mut c)?;
        ops.push(match kind {
            0 => WireWriteOp::Assert {
                s,
                p,
                o,
                score: f64::from_bits(c.u64()?),
            },
            1 => WireWriteOp::Retract { s, p, o },
            other => {
                return Err(WireError::Malformed(format!(
                    "unknown write-op kind {other}"
                )))
            }
        });
    }
    c.finish()?;
    Ok(WireWrite {
        request_id,
        client_id,
        ops,
    })
}

/// Encodes a `WRITE_OK` payload.
pub fn encode_write_ok(request_id: u64, epoch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    out.push(OP_WRITE_OK);
    out.extend_from_slice(&request_id.to_be_bytes());
    out.extend_from_slice(&epoch.to_be_bytes());
    out
}

/// Encodes an `ANSWERS` payload.
pub fn encode_answers(request_id: u64, answers: &[WireAnswer]) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + answers.len() * 32);
    out.push(OP_ANSWERS);
    out.extend_from_slice(&request_id.to_be_bytes());
    out.extend_from_slice(&(answers.len() as u32).to_be_bytes());
    for a in answers {
        out.extend_from_slice(&a.score.to_bits().to_be_bytes());
        out.extend_from_slice(&(a.bindings.len() as u16).to_be_bytes());
        for (var, term) in &a.bindings {
            out.extend_from_slice(&var.to_be_bytes());
            let t = term.as_bytes();
            out.extend_from_slice(&(t.len() as u16).to_be_bytes());
            out.extend_from_slice(t);
        }
    }
    out
}

/// Encodes an `ERROR` payload. The message is truncated to `u16` length.
pub fn encode_error(
    request_id: u64,
    code: ErrorCode,
    retry_after_ms: u32,
    message: &str,
) -> Vec<u8> {
    let msg = &message.as_bytes()[..message.len().min(u16::MAX as usize)];
    let mut out = Vec::with_capacity(16 + msg.len());
    out.push(OP_ERROR);
    out.extend_from_slice(&request_id.to_be_bytes());
    out.push(code as u8);
    out.extend_from_slice(&retry_after_ms.to_be_bytes());
    out.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    out.extend_from_slice(msg);
    out
}

/// Bounds-checked big-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                WireError::Malformed(format!(
                    "truncated: wanted {n} bytes at offset {}, payload is {}",
                    self.off,
                    self.buf.len()
                ))
            })?;
        let s = &self.buf[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self, len: usize) -> Result<String, WireError> {
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.off == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.off
            )))
        }
    }
}

/// Decodes a `QUERY` payload (opcode included).
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, WireError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    if op != OP_QUERY {
        return Err(WireError::Malformed(format!("unknown opcode 0x{op:02x}")));
    }
    let request_id = c.u64()?;
    let client_id = c.u64()?;
    let mode = c.u8()?;
    let k = c.u32()?;
    let deadline_ms = c.u32()?;
    let qlen = c.u32()? as usize;
    let query = c.string(qlen)?;
    c.finish()?;
    Ok(WireRequest {
        request_id,
        client_id,
        mode,
        k,
        deadline_ms,
        query,
    })
}

/// Decodes an `ANSWERS` or `ERROR` payload (opcode included).
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, WireError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    match op {
        OP_ANSWERS => {
            let request_id = c.u64()?;
            let count = c.u32()? as usize;
            // An answer is ≥ 10 bytes; reject counts the payload can't hold.
            if count > payload.len() / 10 {
                return Err(WireError::Malformed(format!(
                    "answer count {count} too large"
                )));
            }
            let mut answers = Vec::with_capacity(count);
            for _ in 0..count {
                let score = f64::from_bits(c.u64()?);
                let arity = c.u16()? as usize;
                let mut bindings = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let var = c.u32()?;
                    let tlen = c.u16()? as usize;
                    bindings.push((var, c.string(tlen)?));
                }
                answers.push(WireAnswer { score, bindings });
            }
            c.finish()?;
            Ok(WireResponse::Answers {
                request_id,
                answers,
            })
        }
        OP_WRITE_OK => {
            let request_id = c.u64()?;
            let epoch = c.u64()?;
            c.finish()?;
            Ok(WireResponse::WriteOk { request_id, epoch })
        }
        OP_ERROR => {
            let request_id = c.u64()?;
            let code_byte = c.u8()?;
            let code = ErrorCode::from_u8(code_byte)
                .ok_or_else(|| WireError::Malformed(format!("unknown error code {code_byte}")))?;
            let retry_after_ms = c.u32()?;
            let mlen = c.u16()? as usize;
            let message = c.string(mlen)?;
            c.finish()?;
            Ok(WireResponse::Error {
                request_id,
                code,
                retry_after_ms,
                message,
            })
        }
        other => Err(WireError::Malformed(format!(
            "unknown opcode 0x{other:02x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> WireRequest {
        WireRequest {
            request_id: 0x0102_0304_0506_0708,
            client_id: 42,
            mode: 0,
            k: 10,
            deadline_ms: 250,
            query: "SELECT ?s WHERE { ?s <type> <singer> }".into(),
        }
    }

    #[test]
    fn request_roundtrip() {
        let r = req();
        let payload = encode_request(&r);
        assert_eq!(payload[0], OP_QUERY);
        assert_eq!(decode_request(&payload).unwrap(), r);
    }

    #[test]
    fn answers_roundtrip_bit_exact_scores() {
        let answers = vec![
            WireAnswer {
                score: 100.0,
                bindings: vec![(0, "shakira".into()), (1, "singer".into())],
            },
            WireAnswer {
                // A score with no short decimal form: must survive bit-exact.
                score: 0.1 + 0.2,
                bindings: vec![(0, "adele".into())],
            },
            WireAnswer {
                score: f64::MIN_POSITIVE,
                bindings: vec![],
            },
        ];
        let payload = encode_answers(7, &answers);
        match decode_response(&payload).unwrap() {
            WireResponse::Answers {
                request_id,
                answers: got,
            } => {
                assert_eq!(request_id, 7);
                assert_eq!(got.len(), 3);
                for (a, b) in answers.iter().zip(&got) {
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "bit-exact");
                    assert_eq!(a.bindings, b.bindings);
                }
            }
            other => panic!("expected answers, got {other:?}"),
        }
    }

    #[test]
    fn write_roundtrip_bit_exact_scores() {
        let w = WireWrite {
            request_id: 11,
            client_id: 3,
            ops: vec![
                WireWriteOp::Assert {
                    s: "shakira".into(),
                    p: "rdf:type".into(),
                    o: "singer".into(),
                    score: 0.1 + 0.2,
                },
                WireWriteOp::Retract {
                    s: "adele".into(),
                    p: "rdf:type".into(),
                    o: "singer".into(),
                },
                WireWriteOp::Assert {
                    s: "".into(),
                    p: "".into(),
                    o: "".into(),
                    score: f64::MIN_POSITIVE,
                },
            ],
        };
        let payload = encode_write(&w);
        assert_eq!(payload[0], OP_WRITE);
        let got = decode_write(&payload).unwrap();
        assert_eq!(got, w);
        match (&got.ops[0], &w.ops[0]) {
            (WireWriteOp::Assert { score: a, .. }, WireWriteOp::Assert { score: b, .. }) => {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-exact");
            }
            _ => unreachable!(),
        }
        // An empty batch round-trips too (the server treats it as a no-op).
        let empty = WireWrite {
            request_id: 1,
            client_id: 0,
            ops: vec![],
        };
        assert_eq!(decode_write(&encode_write(&empty)).unwrap(), empty);
    }

    #[test]
    fn write_ok_roundtrip() {
        let payload = encode_write_ok(11, 7);
        assert_eq!(payload[0], OP_WRITE_OK);
        assert_eq!(
            decode_response(&payload).unwrap(),
            WireResponse::WriteOk {
                request_id: 11,
                epoch: 7
            }
        );
    }

    #[test]
    fn malformed_write_payloads_are_typed_errors() {
        let w = WireWrite {
            request_id: 1,
            client_id: 0,
            ops: vec![WireWriteOp::Retract {
                s: "a".into(),
                p: "b".into(),
                o: "c".into(),
            }],
        };
        // Wrong opcode.
        let mut payload = encode_write(&w);
        payload[0] = OP_QUERY;
        assert!(matches!(
            decode_write(&payload),
            Err(WireError::Malformed(_))
        ));
        // Unknown op kind.
        let mut payload = encode_write(&w);
        payload[21] = 9;
        assert!(matches!(
            decode_write(&payload),
            Err(WireError::Malformed(_))
        ));
        // Truncated mid-op.
        let mut payload = encode_write(&w);
        payload.truncate(24);
        assert!(matches!(
            decode_write(&payload),
            Err(WireError::Malformed(_))
        ));
        // Absurd op count.
        let mut payload = encode_write(&w);
        payload[17..21].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decode_write(&payload),
            Err(WireError::Malformed(_))
        ));
        // Trailing garbage.
        let mut payload = encode_write(&w);
        payload.push(0);
        assert!(matches!(
            decode_write(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn error_roundtrip() {
        let payload = encode_error(9, ErrorCode::RetryAfter, 125, "queue full");
        match decode_response(&payload).unwrap() {
            WireResponse::Error {
                request_id,
                code,
                retry_after_ms,
                message,
            } => {
                assert_eq!(request_id, 9);
                assert_eq!(code, ErrorCode::RetryAfter);
                assert_eq!(retry_after_ms, 125);
                assert_eq!(message, "queue full");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Unknown opcode.
        assert!(matches!(
            decode_request(&[0x7f]),
            Err(WireError::Malformed(_))
        ));
        // Truncated request.
        let mut payload = encode_request(&req());
        payload.truncate(12);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::Malformed(_))
        ));
        // Trailing garbage.
        let mut payload = encode_request(&req());
        payload.push(0xff);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::Malformed(_))
        ));
        // Query length pointing past the payload.
        let mut payload = encode_request(&req());
        let qlen_off = 1 + 8 + 8 + 1 + 4 + 4;
        payload[qlen_off..qlen_off + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::Malformed(_))
        ));
        // Non-UTF-8 query bytes.
        let mut bad = WireRequest {
            query: String::new(),
            ..req()
        };
        bad.query.clear();
        let mut payload = encode_request(&bad);
        let qlen_off = 1 + 8 + 8 + 1 + 4 + 4;
        payload[qlen_off..qlen_off + 4].copy_from_slice(&1u32.to_be_bytes());
        payload.push(0xff);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::Malformed(_))
        ));
        // Absurd answer count.
        let mut payload = encode_answers(1, &[]);
        let count_off = 1 + 8;
        payload[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decode_response(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn frame_roundtrip_over_a_byte_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&req())).unwrap();
        write_frame(&mut wire, &encode_error(2, ErrorCode::Protocol, 0, "bad")).unwrap();
        let mut r = &wire[..];
        let p1 = read_frame(&mut r).unwrap();
        assert_eq!(decode_request(&p1).unwrap(), req());
        let p2 = read_frame(&mut r).unwrap();
        assert!(matches!(
            decode_response(&p2).unwrap(),
            WireResponse::Error { request_id: 2, .. }
        ));
        assert!(matches!(read_frame(&mut r), Err(WireError::Eof)));
    }

    #[test]
    fn oversized_frame_is_drained_not_fatal() {
        let mut wire = Vec::new();
        // A frame claiming MAX_FRAME + 1 bytes, followed by a valid frame.
        wire.extend_from_slice(&((MAX_FRAME + 1) as u32).to_be_bytes());
        wire.extend(std::iter::repeat_n(0u8, MAX_FRAME + 1));
        write_frame(&mut wire, &encode_error(3, ErrorCode::Internal, 0, "x")).unwrap();
        let mut r = &wire[..];
        assert!(matches!(read_frame(&mut r), Err(WireError::TooLarge(_))));
        // The stream stayed framed: the next frame still parses.
        let p = read_frame(&mut r).unwrap();
        assert_eq!(decode_response(&p).unwrap().request_id(), 3);
        // And writers refuse to produce such frames at all.
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &vec![0u8; MAX_FRAME + 1]),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn truncated_length_prefix_is_io_not_eof() {
        // One byte of a length prefix, then the peer vanishes.
        let mut r: &[u8] = &[0x00];
        assert!(matches!(read_frame(&mut r), Err(WireError::Io(_))));
        // Zero bytes: clean EOF.
        let mut r: &[u8] = &[];
        assert!(matches!(read_frame(&mut r), Err(WireError::Eof)));
    }

    #[test]
    fn error_code_bytes_are_stable() {
        // The wire contract: these byte values are frozen.
        assert_eq!(ErrorCode::RetryAfter as u8, 1);
        assert_eq!(ErrorCode::DeadlineExceeded as u8, 2);
        assert_eq!(ErrorCode::ShuttingDown as u8, 3);
        assert_eq!(ErrorCode::Protocol as u8, 4);
        assert_eq!(ErrorCode::Internal as u8, 5);
        for b in 1..=5u8 {
            assert_eq!(ErrorCode::from_u8(b).unwrap() as u8, b);
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(6), None);
    }
}
