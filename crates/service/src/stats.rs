//! Service-lifetime statistics: atomic counters that survive across batches
//! and connections.
//!
//! [`BatchStats`](crate::BatchStats) aggregates exactly one `run_batch`
//! call; a server that admits requests one at a time over many connections
//! needs numbers that accumulate for the whole life of the service. The
//! counters here are plain atomics updated on the worker threads' hot path
//! (one `fetch_add` per event, a handful per completed query) and read via
//! [`LifetimeCounters::snapshot`], which materializes the same shape the
//! batch path reports: per-[`ExecMode`] latency breakdowns plus
//! admission/shedding totals.
//!
//! Latency percentiles cannot be kept exactly without storing every sample,
//! so each mode keeps a fixed 64-bucket power-of-two histogram of
//! microsecond latencies: bucket *i* counts samples in `[2^(i-1), 2^i) µs`.
//! Reported p50/p99 are the upper bound of the bucket holding the rank —
//! at most 2x off, stable under concurrency, and allocation-free.

use crate::ExecMode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (covers > 5 hours in µs).
const BUCKETS: usize = 64;

/// Lock-free log2 histogram of microsecond latencies.
#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        // Bucket 0 holds 0µs; bucket i holds [2^(i-1), 2^i).
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound of the bucket containing rank `⌈q·n⌉` (nearest-rank over
    /// the bucketed sample). `Duration::ZERO` when empty.
    fn percentile(&self, counts: &[u64; BUCKETS], q: f64) -> Duration {
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper_us = if i == 0 { 0 } else { 1u64 << i };
                return Duration::from_micros(upper_us);
            }
        }
        Duration::ZERO
    }

    fn load(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Per-mode accumulation: counts, latency sum/max and the histogram.
#[derive(Debug)]
struct ModeCounters {
    queries: AtomicU64,
    total_latency_us: AtomicU64,
    max_latency_us: AtomicU64,
    histogram: Histogram,
}

impl ModeCounters {
    fn new() -> Self {
        ModeCounters {
            queries: AtomicU64::new(0),
            total_latency_us: AtomicU64::new(0),
            max_latency_us: AtomicU64::new(0),
            histogram: Histogram::new(),
        }
    }

    fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.total_latency_us.fetch_add(us, Ordering::Relaxed);
        self.max_latency_us.fetch_max(us, Ordering::Relaxed);
        self.histogram.record(latency);
    }
}

/// Lifetime totals for one [`ExecMode`] — the cumulative analogue of
/// [`ModeLatency`](crate::ModeLatency): same shape (count, mean, p50, tail,
/// max), accumulated since service construction rather than per batch.
#[derive(Clone, Copy, Debug)]
pub struct ModeTotals {
    /// The mode these numbers describe.
    pub mode: ExecMode,
    /// Queries of this mode completed (successfully executed; shed requests
    /// never reach a mode).
    pub queries: u64,
    /// Mean per-query latency over the service lifetime.
    pub mean_latency: Duration,
    /// Approximate median latency (log2-bucket upper bound).
    pub p50_latency: Duration,
    /// Approximate 99th-percentile latency (log2-bucket upper bound).
    pub p99_latency: Duration,
    /// Worst per-query latency.
    pub max_latency: Duration,
}

/// A point-in-time copy of the service-lifetime counters.
///
/// All counts are monotonically non-decreasing across snapshots of the same
/// service. `submitted = completed + shed_deadline + in-flight`; rejected
/// requests (`rejected_queue_full` / `rejected_shutdown`) were never
/// admitted and are *not* part of `submitted`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests admitted into the execution queue.
    pub submitted: u64,
    /// Requests fully executed (including ones whose execution panicked).
    pub completed: u64,
    /// Requests shed unexecuted because their deadline expired in-queue.
    pub shed_deadline: u64,
    /// Non-blocking submissions refused because the queue was full.
    pub rejected_queue_full: u64,
    /// Submissions refused because the service was shutting down.
    pub rejected_shutdown: u64,
    /// Executions that panicked (caught; surfaced as
    /// [`ServiceError::Panicked`](crate::ServiceError::Panicked)).
    pub panicked: u64,
    /// Write batches committed through
    /// [`apply_writes`](crate::QueryService::apply_writes).
    pub write_batches: u64,
    /// Individual write operations across all committed batches.
    pub write_ops: u64,
    /// Write batches refused by admission control (read-only service,
    /// shutdown, or an over-ceiling batch).
    pub rejected_writes: u64,
    /// Per-mode lifetime latency breakdown, indexed by
    /// [`ExecMode::index`] (`None` for modes never executed).
    pub per_mode: [Option<ModeTotals>; 3],
}

impl ServiceStats {
    /// Total executed queries across all modes.
    pub fn executed(&self) -> u64 {
        self.per_mode.iter().flatten().map(|m| m.queries).sum()
    }
}

/// The live atomic counters owned by the service (shared with its workers).
#[derive(Debug)]
pub struct LifetimeCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed_deadline: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    panicked: AtomicU64,
    write_batches: AtomicU64,
    write_ops: AtomicU64,
    rejected_writes: AtomicU64,
    per_mode: [ModeCounters; 3],
}

impl Default for LifetimeCounters {
    fn default() -> Self {
        LifetimeCounters::new()
    }
}

impl LifetimeCounters {
    /// Fresh all-zero counters.
    pub fn new() -> Self {
        LifetimeCounters {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            write_batches: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
            rejected_writes: AtomicU64::new(0),
            per_mode: [
                ModeCounters::new(),
                ModeCounters::new(),
                ModeCounters::new(),
            ],
        }
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_deadline(&self) {
        self.shed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_queue_full(&self) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_shutdown(&self) {
        self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_writes(&self, ops: u64) {
        self.write_batches.fetch_add(1, Ordering::Relaxed);
        self.write_ops.fetch_add(ops, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_write(&self) {
        self.rejected_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_panicked(&self) {
        self.panicked.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, mode: ExecMode, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.per_mode[mode.index()].record(latency);
    }

    /// Mean executed latency across all modes — the service-time estimate
    /// feeding the `retry_after` hint. `None` until something has executed.
    pub(crate) fn mean_executed_latency(&self) -> Option<Duration> {
        let (mut n, mut total_us) = (0u64, 0u64);
        for m in &self.per_mode {
            n += m.queries.load(Ordering::Relaxed);
            total_us += m.total_latency_us.load(Ordering::Relaxed);
        }
        (n > 0).then(|| Duration::from_micros(total_us / n))
    }

    /// Materializes a consistent-enough snapshot (individual counters are
    /// read relaxed; cross-counter identities may be off by in-flight
    /// requests, as documented on [`ServiceStats`]).
    pub fn snapshot(&self) -> ServiceStats {
        let mut per_mode = [None; 3];
        for mode in ExecMode::ALL {
            let m = &self.per_mode[mode.index()];
            let queries = m.queries.load(Ordering::Relaxed);
            if queries == 0 {
                continue;
            }
            let total_us = m.total_latency_us.load(Ordering::Relaxed);
            let counts = m.histogram.load();
            per_mode[mode.index()] = Some(ModeTotals {
                mode,
                queries,
                mean_latency: Duration::from_micros(total_us / queries),
                p50_latency: m.histogram.percentile(&counts, 0.50),
                p99_latency: m.histogram.percentile(&counts, 0.99),
                max_latency: Duration::from_micros(m.max_latency_us.load(Ordering::Relaxed)),
            });
        }
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            write_batches: self.write_batches.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            rejected_writes: self.rejected_writes.load(Ordering::Relaxed),
            per_mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_recordings() {
        let c = LifetimeCounters::new();
        c.record_submitted();
        c.record_submitted();
        c.record_completed(ExecMode::SpecQp, Duration::from_micros(100));
        c.record_completed(ExecMode::SpecQp, Duration::from_micros(300));
        c.record_submitted();
        c.record_shed_deadline();
        c.record_rejected_queue_full();
        let s = c.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.shed_deadline, 1);
        assert_eq!(s.rejected_queue_full, 1);
        assert_eq!(s.executed(), 2);
        let spec = s.per_mode[ExecMode::SpecQp.index()].expect("specqp totals");
        assert_eq!(spec.queries, 2);
        assert_eq!(spec.mean_latency, Duration::from_micros(200));
        assert_eq!(spec.max_latency, Duration::from_micros(300));
        assert!(s.per_mode[ExecMode::Naive.index()].is_none());
    }

    #[test]
    fn histogram_percentiles_bound_the_sample() {
        let c = LifetimeCounters::new();
        // 99 fast queries and one slow outlier.
        for _ in 0..99 {
            c.record_completed(ExecMode::TriniT, Duration::from_micros(100));
        }
        c.record_completed(ExecMode::TriniT, Duration::from_millis(80));
        let t = c.snapshot().per_mode[ExecMode::TriniT.index()].unwrap();
        // p50 lands in the 100µs bucket: upper bound 128µs, lower 64µs.
        assert!(t.p50_latency >= Duration::from_micros(100));
        assert!(t.p50_latency <= Duration::from_micros(256));
        // p99 still within the fast mass (rank 99 of 100), p-max catches
        // the outlier via max_latency.
        assert!(t.p99_latency <= Duration::from_micros(256));
        assert_eq!(t.max_latency, Duration::from_millis(80));
    }

    #[test]
    fn histogram_percentile_monotone_in_q() {
        let c = LifetimeCounters::new();
        for us in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            for _ in 0..10 {
                c.record_completed(ExecMode::Naive, Duration::from_micros(us));
            }
        }
        let t = c.snapshot().per_mode[ExecMode::Naive.index()].unwrap();
        assert!(t.p50_latency <= t.p99_latency);
        assert!(t.p99_latency <= t.max_latency.max(t.p99_latency));
        assert!(t.p99_latency >= Duration::from_micros(100_000));
    }

    /// Pins the exact bucket boundaries of the log2 histogram: bucket 0
    /// holds only 0µs, bucket `i` holds `[2^(i-1), 2^i)` — every power of
    /// two *opens* a new bucket rather than closing the previous one, and
    /// the top bucket absorbs everything from `2^62` up without overflow.
    #[test]
    fn histogram_buckets_pin_power_of_two_boundaries() {
        let bucket_of = |us: u64| -> usize {
            let h = Histogram::new();
            h.record(Duration::from_micros(us));
            h.load().iter().position(|&c| c == 1).unwrap()
        };
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2, "2^1 opens bucket 2");
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1023), 10, "2^10 - 1 closes bucket 10");
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of((1 << 62) - 1), 62);
        assert_eq!(
            bucket_of(1 << 62),
            63,
            "top bucket is clamped, not [..2^63)"
        );
        assert_eq!(bucket_of(u64::MAX), 63);
        // A Duration whose microseconds exceed u64 saturates into the top
        // bucket instead of wrapping.
        let h = Histogram::new();
        h.record(Duration::MAX);
        assert_eq!(h.load()[63], 1);
    }

    /// Percentiles report the *upper* edge of the rank's bucket, so the
    /// estimate always bounds the true sample from above (within 2x).
    #[test]
    fn percentile_upper_bounds_are_exact_bucket_edges() {
        let h = Histogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.percentile(&h.load(), 0.5), Duration::ZERO);

        let h = Histogram::new();
        h.record(Duration::from_micros(1));
        assert_eq!(h.percentile(&h.load(), 0.5), Duration::from_micros(2));

        // A sample at an exact power of two reports the *next* power — the
        // half-open bucketing keeps the bound ≥ the sample.
        let h = Histogram::new();
        h.record(Duration::from_micros(64));
        assert_eq!(h.percentile(&h.load(), 0.99), Duration::from_micros(128));
    }

    #[test]
    fn percentile_rank_is_nearest_rank_clamped() {
        let h = Histogram::new();
        // 10 samples in bucket 1 (1µs), 10 in bucket 5 (16..32µs).
        for _ in 0..10 {
            h.record(Duration::from_micros(1));
            h.record(Duration::from_micros(20));
        }
        let counts = h.load();
        // q→0 clamps to rank 1; q=0.5 is rank 10, the last fast sample;
        // one rank further crosses into the slow bucket.
        assert_eq!(h.percentile(&counts, 0.0), Duration::from_micros(2));
        assert_eq!(h.percentile(&counts, 0.5), Duration::from_micros(2));
        assert_eq!(h.percentile(&counts, 0.51), Duration::from_micros(32));
        assert_eq!(h.percentile(&counts, 1.0), Duration::from_micros(32));
        // Empty histogram: zero, not a bucket edge.
        let empty = Histogram::new();
        assert_eq!(empty.percentile(&empty.load(), 0.99), Duration::ZERO);
    }

    #[test]
    fn mean_executed_latency_feeds_retry_hint() {
        let c = LifetimeCounters::new();
        assert_eq!(c.mean_executed_latency(), None);
        c.record_completed(ExecMode::SpecQp, Duration::from_micros(100));
        c.record_completed(ExecMode::TriniT, Duration::from_micros(300));
        assert_eq!(c.mean_executed_latency(), Some(Duration::from_micros(200)));
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = LifetimeCounters::new().snapshot();
        assert_eq!(s.submitted, 0);
        assert_eq!(s.executed(), 0);
        assert!(s.per_mode.iter().all(Option::is_none));
    }
}
