//! # specqp_service — a concurrent query service over one shared engine
//!
//! The Spec-QP paper's premise is that speculative planning amortizes
//! optimization effort across a *workload*. This crate supplies the serving
//! layer that premise assumes: one [`Engine`] co-owning its graph and
//! relaxation registry through `Arc`s, shared read-only by a fixed-size pool
//! of worker threads that drain a bounded MPMC request queue.
//!
//! The entry point is per-request: build a [`Request`] (query, mode, top-k
//! budget, optional deadline, client id), hand it to
//! [`QueryService::submit`] (blocking backpressure) or
//! [`QueryService::try_submit`] (non-blocking admission control — a full
//! queue is an explicit [`ServiceError::QueueFull`] with a retry-after hint,
//! never an unbounded wait), and redeem the returned [`Ticket`] for a
//! [`Response`]. Requests whose deadline expires while queued are shed
//! before execution and complete with [`ServiceError::DeadlineExceeded`].
//! [`QueryService::run_batch`] remains as a thin batch wrapper over the same
//! path, returning outcomes in submission order with aggregate
//! throughput/latency statistics; [`QueryService::lifetime_stats`] reports
//! cumulative counters across all batches and connections.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use kgstore::KnowledgeGraphBuilder;
//! use relax::RelaxationRegistry;
//! use sparql::parse_query;
//! use specqp_service::{ExecMode, QueryJob, QueryService, ServiceConfig};
//!
//! let mut b = KnowledgeGraphBuilder::new();
//! b.add("shakira", "rdf:type", "singer", 100.0);
//! b.add("adele", "rdf:type", "singer", 90.0);
//! let graph = Arc::new(b.build());
//! let registry = Arc::new(RelaxationRegistry::new());
//!
//! let q = parse_query("SELECT ?s WHERE { ?s <rdf:type> <singer> }", graph.dictionary()).unwrap();
//! let service = QueryService::new(graph, registry, ServiceConfig::with_threads(2));
//! let jobs: Vec<QueryJob> = (0..8).map(|_| QueryJob::specqp(q.clone(), 5)).collect();
//! let report = service.run_batch(&jobs);
//!
//! assert_eq!(report.outcomes.len(), 8);
//! assert!(report.outcomes.iter().all(|o| o.answers.len() == 2));
//! assert!(report.stats.queries_per_sec > 0.0);
//! // The 8 identical shapes share one cached plan; at most one racing
//! // miss per worker thread before the first insert lands.
//! assert!(report.stats.cache.hits >= 6);
//! ```

pub mod error;
pub mod queue;
pub mod stats;

pub use error::ServiceError;
pub use queue::{BoundedQueue, TryPushError};
pub use stats::{LifetimeCounters, ModeTotals, ServiceStats};

// The write-path vocabulary, re-exported so front-ends can accept batches
// and report epochs without depending on `kgstore` directly.
pub use kgstore::{Epoch, LiveGraph, WriteBatch, WriteOp};

use kgstore::KnowledgeGraph;
use relax::RelaxationRegistry;
use sparql::Query;
use specqp::{Engine, EngineConfig, QueryOutcome};
use specqp_common::Result;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which executor a job runs through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Speculative planning + execution (the paper's Spec-QP), including
    /// the engine's speculation lifecycle when a policy is configured.
    SpecQp,
    /// The TriniT baseline: every pattern relaxed, no planning.
    TriniT,
    /// The brute-force ground-truth executor (tests / validation).
    Naive,
}

impl ExecMode {
    /// Every mode, in the order used by [`BatchStats::per_mode`].
    pub const ALL: [ExecMode; 3] = [ExecMode::SpecQp, ExecMode::TriniT, ExecMode::Naive];

    /// Stable index of this mode inside [`ExecMode::ALL`].
    pub fn index(self) -> usize {
        match self {
            ExecMode::SpecQp => 0,
            ExecMode::TriniT => 1,
            ExecMode::Naive => 2,
        }
    }

    /// Short lowercase label (`specqp` / `trinit` / `naive`) used by probe
    /// reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::SpecQp => "specqp",
            ExecMode::TriniT => "trinit",
            ExecMode::Naive => "naive",
        }
    }

    /// Inverse of [`ExecMode::index`] — the wire protocol sends modes as
    /// this byte.
    pub fn from_index(i: usize) -> Option<ExecMode> {
        ExecMode::ALL.get(i).copied()
    }
}

/// One unit of work: a query, the answer budget `k` and the executor mode.
#[derive(Clone, Debug)]
pub struct QueryJob {
    /// The query to answer.
    pub query: Query,
    /// Top-k budget.
    pub k: usize,
    /// Executor selection.
    pub mode: ExecMode,
}

impl QueryJob {
    /// A Spec-QP job.
    pub fn specqp(query: Query, k: usize) -> Self {
        QueryJob {
            query,
            k,
            mode: ExecMode::SpecQp,
        }
    }

    /// A TriniT-baseline job.
    pub fn trinit(query: Query, k: usize) -> Self {
        QueryJob {
            query,
            k,
            mode: ExecMode::TriniT,
        }
    }

    /// A naive ground-truth job.
    pub fn naive(query: Query, k: usize) -> Self {
        QueryJob {
            query,
            k,
            mode: ExecMode::Naive,
        }
    }
}

/// One request through the per-request service API: everything the service
/// needs to admit, schedule, shed or execute a query.
///
/// Built with [`Request::new`] and refined with the `with_*` builders:
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use kgstore::KnowledgeGraphBuilder;
/// use relax::RelaxationRegistry;
/// use sparql::parse_query;
/// use specqp_service::{ExecMode, QueryService, Request, ServiceConfig};
///
/// let mut b = KnowledgeGraphBuilder::new();
/// b.add("shakira", "rdf:type", "singer", 100.0);
/// b.add("adele", "rdf:type", "singer", 90.0);
/// let graph = Arc::new(b.build());
/// let q = parse_query("SELECT ?s WHERE { ?s <rdf:type> <singer> }", graph.dictionary()).unwrap();
///
/// let service = QueryService::new(
///     graph,
///     Arc::new(RelaxationRegistry::new()),
///     ServiceConfig::with_threads(2),
/// );
/// let request = Request::new(q, 5)
///     .with_mode(ExecMode::SpecQp)
///     .with_client(42)
///     .with_deadline_in(Duration::from_secs(5));
/// let ticket = service.submit(request).unwrap();
/// let response = ticket.wait();
/// assert_eq!(response.outcome.unwrap().answers.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Request {
    /// The query to answer.
    pub query: Query,
    /// Executor selection (defaults to [`ExecMode::SpecQp`]).
    pub mode: ExecMode,
    /// Top-k budget.
    pub k: usize,
    /// Shed-by time: if the request is still queued at this instant it is
    /// dropped unexecuted with [`ServiceError::DeadlineExceeded`]. `None`
    /// means the request waits as long as backpressure demands.
    pub deadline: Option<Instant>,
    /// Originating client, for per-client quota accounting in front-ends
    /// (the service itself treats it as an opaque label; `0` = anonymous).
    pub client_id: u64,
}

impl Request {
    /// A Spec-QP request with no deadline, from the anonymous client.
    pub fn new(query: Query, k: usize) -> Self {
        Request {
            query,
            mode: ExecMode::SpecQp,
            k,
            deadline: None,
            client_id: 0,
        }
    }

    /// Selects the executor.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets an absolute shed-by deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `budget` from now.
    pub fn with_deadline_in(self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }

    /// Labels the originating client.
    pub fn with_client(mut self, client_id: u64) -> Self {
        self.client_id = client_id;
        self
    }

    /// The batch-API equivalent of this request (mode + k + query).
    pub fn from_job(job: &QueryJob) -> Self {
        Request::new(job.query.clone(), job.k).with_mode(job.mode)
    }
}

impl From<QueryJob> for Request {
    fn from(job: QueryJob) -> Self {
        Request::new(job.query, job.k).with_mode(job.mode)
    }
}

/// The service's answer envelope for one [`Request`].
#[derive(Debug)]
pub struct Response {
    /// The executed outcome, or the typed reason the request produced none.
    pub outcome: std::result::Result<QueryOutcome, ServiceError>,
    /// Time the request spent queued before a worker picked it up.
    pub queued: Duration,
    /// Execution time on the worker (zero for shed requests).
    pub execution: Duration,
}

impl Response {
    /// Queue wait plus execution — the in-service latency a client observes
    /// on top of network transfer.
    pub fn total(&self) -> Duration {
        self.queued + self.execution
    }

    /// `true` if the request was shed unexecuted for deadline expiry.
    pub fn is_shed(&self) -> bool {
        matches!(self.outcome, Err(ServiceError::DeadlineExceeded))
    }
}

/// One-shot completion slot a worker fills and a client waits on.
#[derive(Debug)]
struct TicketState {
    slot: Mutex<Option<Response>>,
    ready: Condvar,
}

impl TicketState {
    fn complete(&self, response: Response) {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        debug_assert!(slot.is_none(), "ticket completed twice");
        *slot = Some(response);
        self.ready.notify_all();
    }
}

/// A claim on one submitted request's [`Response`].
///
/// Redeem with [`Ticket::wait`] (blocking) or poll with
/// [`Ticket::wait_timeout`]. Dropping a ticket abandons the request: it
/// still executes (admission was already granted) but the response is
/// discarded.
#[derive(Debug)]
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    fn new() -> (Ticket, Arc<TicketState>) {
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        (
            Ticket {
                state: Arc::clone(&state),
            },
            state,
        )
    }

    /// `true` once the response is available (then [`Ticket::wait`] returns
    /// without blocking).
    pub fn is_ready(&self) -> bool {
        self.state.slot.lock().expect("ticket poisoned").is_some()
    }

    /// Blocks until the worker completes the request and returns the
    /// response.
    pub fn wait(self) -> Response {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(response) = slot.take() {
                return response;
            }
            slot = self.state.ready.wait(slot).expect("ticket poisoned");
        }
    }

    /// Waits up to `timeout`; hands the ticket back on expiry so the caller
    /// can keep waiting later.
    pub fn wait_timeout(self, timeout: Duration) -> std::result::Result<Response, Ticket> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(response) = slot.take() {
                return Ok(response);
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                drop(slot);
                return Err(self);
            };
            let (next, timed_out) = self
                .state
                .ready
                .wait_timeout(slot, left)
                .expect("ticket poisoned");
            slot = next;
            if timed_out.timed_out() && slot.is_none() {
                drop(slot);
                return Err(self);
            }
        }
    }
}

/// Upper bound on operations per [`QueryService::apply_writes`] batch.
/// Write admission control: larger batches are refused with
/// [`ServiceError::Protocol`] instead of wedging the single-writer lock.
pub const MAX_WRITE_BATCH: usize = 4096;

/// What travels through the execution queue.
#[derive(Debug)]
struct WorkItem {
    request: Request,
    ticket: Arc<TicketState>,
    accepted: Instant,
}

/// Service tunables.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads (minimum 1).
    pub threads: usize,
    /// Bounded job-queue depth; defaults to `4 × threads`.
    pub queue_depth: usize,
    /// Engine configuration used by [`QueryService::new`].
    pub engine: EngineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::with_threads(4)
    }
}

impl ServiceConfig {
    /// Config with `threads` workers and the default queue depth/engine.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        ServiceConfig {
            threads,
            queue_depth: threads * 4,
            engine: EngineConfig::default(),
        }
    }

    /// Overrides the bounded queue depth (minimum 1) — smaller queues shed
    /// earlier under overload, larger ones absorb bigger bursts at the cost
    /// of queueing latency.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }
}

/// Snapshot of the engine's plan-cache counters at the end of a batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheSnapshot {
    /// Total lookups (`hits + misses`).
    pub lookups: u64,
    /// Lookups answered from the cache (PLANGEN skipped).
    pub hits: u64,
    /// Lookups that had to run PLANGEN.
    pub misses: u64,
    /// Plans inserted.
    pub insertions: u64,
    /// Plans evicted by capacity pressure.
    pub evictions: u64,
    /// Entries dropped (or refreshed) because a statistics feedback refit
    /// bumped the catalog generation after they were planned.
    pub stale: u64,
    /// `hits / lookups` in `[0, 1]`.
    pub hit_rate: f64,
}

/// Latency breakdown for the jobs of one [`ExecMode`] within a batch.
#[derive(Clone, Copy, Debug)]
pub struct ModeLatency {
    /// The mode these numbers describe.
    pub mode: ExecMode,
    /// Jobs of this mode in the batch.
    pub queries: usize,
    /// Mean per-query latency.
    pub mean_latency: Duration,
    /// Median per-query latency.
    pub p50_latency: Duration,
    /// 95th-percentile per-query latency.
    pub p95_latency: Duration,
    /// Worst per-query latency.
    pub max_latency: Duration,
}

/// Speculation-lifecycle totals over one batch, aggregated from the
/// per-query [`specqp::RunReport`]s (all zeros under
/// `SpeculationPolicy::Off` or when the batch held no Spec-QP jobs).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpeculationTotals {
    /// Spec-QP jobs in the batch (the runs the lifecycle applies to).
    pub speculative_runs: u64,
    /// Runs the verifier classified as mis-speculated.
    pub mis_speculations: u64,
    /// Runs that took at least one fallback re-execution.
    pub fallback_runs: u64,
    /// Total fallback stages across the batch.
    pub fallback_stages: u64,
    /// Total answer objects discarded by abandoned executions.
    pub wasted_answers: u64,
    /// Total time spent in the verifier.
    pub verify: Duration,
}

impl SpeculationTotals {
    /// `mis_speculations / speculative_runs` in `[0, 1]` (0 when the batch
    /// held no speculative runs).
    pub fn mis_speculation_rate(&self) -> f64 {
        if self.speculative_runs == 0 {
            0.0
        } else {
            self.mis_speculations as f64 / self.speculative_runs as f64
        }
    }

    /// `fallback_runs / speculative_runs` in `[0, 1]`.
    pub fn fallback_rate(&self) -> f64 {
        if self.speculative_runs == 0 {
            0.0
        } else {
            self.fallback_runs as f64 / self.speculative_runs as f64
        }
    }
}

/// Aggregate accounting for one batch run.
#[derive(Clone, Copy, Debug)]
pub struct BatchStats {
    /// Queries executed.
    pub queries: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// `queries / wall` (the BENCH throughput headline).
    pub queries_per_sec: f64,
    /// Mean per-query latency.
    pub mean_latency: Duration,
    /// Median per-query latency.
    pub p50_latency: Duration,
    /// 95th-percentile per-query latency.
    pub p95_latency: Duration,
    /// 99th-percentile per-query latency.
    pub p99_latency: Duration,
    /// Worst per-query latency.
    pub max_latency: Duration,
    /// Per-[`ExecMode`] latency breakdown, indexed by [`ExecMode::index`]
    /// (`None` for modes absent from the batch).
    pub per_mode: [Option<ModeLatency>; 3],
    /// Speculation-lifecycle totals (mis-speculation/fallback counters).
    pub speculation: SpeculationTotals,
    /// Plan-cache counters accumulated on the engine (lifetime totals, not
    /// per-batch deltas, when the service is reused).
    pub cache: CacheSnapshot,
}

/// One batch's results: per-query outcomes in submission order plus
/// aggregate statistics.
#[derive(Debug)]
pub struct BatchReport {
    /// `outcomes[i]` answers `jobs[i]`.
    pub outcomes: Vec<QueryOutcome>,
    /// Throughput/latency/cache accounting.
    pub stats: BatchStats,
}

/// Renders a caught panic payload for re-raising on the driver thread.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// State shared between the service handle and its worker threads.
#[derive(Debug)]
struct Core {
    engine: Arc<Engine<'static>>,
    queue: BoundedQueue<WorkItem>,
    counters: LifetimeCounters,
    threads: usize,
}

impl Core {
    /// Executes one request on the shared engine (also the sequential
    /// reference path).
    fn run_one(&self, query: &Query, mode: ExecMode, k: usize) -> QueryOutcome {
        match mode {
            ExecMode::SpecQp => self.engine.run_specqp(query, k),
            ExecMode::TriniT => self.engine.run_trinit(query, k),
            ExecMode::Naive => self.engine.run_naive(query, k),
        }
    }

    /// The worker loop: drain the queue until close-and-empty, shedding
    /// deadline-expired requests (counted, never run) and completing every
    /// ticket exactly once — panics included, so one poisoned query never
    /// kills the pool.
    fn worker_loop(&self) {
        while let Some(item) = self.queue.pop() {
            let queued = item.accepted.elapsed();
            if let Some(deadline) = item.request.deadline {
                if Instant::now() >= deadline {
                    self.counters.record_shed_deadline();
                    item.ticket.complete(Response {
                        outcome: Err(ServiceError::DeadlineExceeded),
                        queued,
                        execution: Duration::ZERO,
                    });
                    continue;
                }
            }
            let started = Instant::now();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.run_one(&item.request.query, item.request.mode, item.request.k)
            }));
            let execution = started.elapsed();
            let outcome = match result {
                Ok(outcome) => {
                    self.counters.record_completed(item.request.mode, execution);
                    Ok(outcome)
                }
                Err(payload) => {
                    self.counters.record_panicked();
                    Err(ServiceError::Panicked(panic_message(payload.as_ref())))
                }
            };
            item.ticket.complete(Response {
                outcome,
                queued,
                execution,
            });
        }
    }

    /// Back-off estimate for a rejected submission: roughly how long until a
    /// queue slot frees, from the observed mean service time and the current
    /// backlog, clamped to `[1ms, 5s]`.
    fn retry_after_hint(&self) -> Duration {
        let per_query = self
            .counters
            .mean_executed_latency()
            .unwrap_or(Duration::from_millis(1));
        let backlog = (self.queue.len() as u64).max(1);
        let us = per_query.as_micros() as u64 * backlog / self.threads.max(1) as u64;
        Duration::from_micros(us).clamp(Duration::from_millis(1), Duration::from_secs(5))
    }
}

/// A concurrent query service: an `Arc`-shared engine plus a persistent
/// worker pool draining a bounded MPMC queue.
///
/// The service is `Send + Sync`; all entry points take `&self`, so one
/// service serves many clients/batches concurrently (the plan cache and
/// statistics catalog stay warm throughout). Workers live for the life of
/// the service and are drained + joined by [`QueryService::shutdown`] (also
/// called on drop).
#[derive(Debug)]
pub struct QueryService {
    core: Arc<Core>,
    config: ServiceConfig,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl QueryService {
    /// Builds a service around a fresh engine co-owning `graph` and
    /// `registry`, and starts its worker pool.
    pub fn new(
        graph: Arc<KnowledgeGraph>,
        registry: Arc<RelaxationRegistry>,
        config: ServiceConfig,
    ) -> Self {
        let engine = Engine::shared_with_config(graph, registry, config.engine);
        QueryService::with_engine(Arc::new(engine), config)
    }

    /// Builds a service around an existing `'static` engine (custom
    /// cardinality estimator, chain rules, …).
    pub fn with_engine(engine: Arc<Engine<'static>>, config: ServiceConfig) -> Self {
        let core = Arc::new(Core {
            engine,
            queue: BoundedQueue::new(config.queue_depth),
            counters: LifetimeCounters::new(),
            threads: config.threads,
        });
        let workers = (0..config.threads)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("specqp-worker-{i}"))
                    .spawn(move || core.worker_loop())
                    .expect("spawn worker thread")
            })
            .collect();
        QueryService {
            core,
            config,
            workers: Mutex::new(workers),
        }
    }

    /// Builds a service over a [`LiveGraph`] accepting concurrent writes,
    /// and starts its worker pool. Queries pin the version current when
    /// they start (epoch-consistent reads, see [`specqp::PinnedGraph`]);
    /// writers go through [`QueryService::apply_writes`], which commits a
    /// batch and bumps the epoch while in-flight queries keep serving from
    /// the version they pinned.
    pub fn live(
        live: Arc<LiveGraph>,
        registry: Arc<RelaxationRegistry>,
        config: ServiceConfig,
    ) -> Self {
        let engine = Engine::live_with_config(live, registry, config.engine);
        QueryService::with_engine(Arc::new(engine), config)
    }

    /// Boots a service directly from a binary KG snapshot file: the graph is
    /// deserialized with its posting lists intact (no TSV parse, no index
    /// rebuild — see [`kgstore::snapshot`]), wrapped in an `Arc` and shared
    /// by the worker pool. This is the restart-fast path: a service replica
    /// comes up without repeating any of the build work the snapshot froze.
    ///
    /// Returns the typed [`specqp_common::SnapshotError`] (wrapped in
    /// [`specqp_common::Error::Snapshot`]) if the file is missing, truncated
    /// or corrupt.
    pub fn from_snapshot(
        path: impl AsRef<Path>,
        registry: Arc<RelaxationRegistry>,
        config: ServiceConfig,
    ) -> Result<Self> {
        let graph = Arc::new(kgstore::snapshot::load_snapshot(path)?);
        Ok(QueryService::new(graph, registry, config))
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine<'static>> {
        &self.core.engine
    }

    /// The service configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Current plan-cache counters.
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        let m = self.core.engine.plan_cache_metrics();
        CacheSnapshot {
            lookups: m.lookups(),
            hits: m.hits(),
            misses: m.misses(),
            insertions: m.insertions(),
            evictions: m.evictions(),
            stale: m.stale(),
            hit_rate: m.hit_rate(),
        }
    }

    /// Cumulative service-lifetime counters: submissions, sheds, rejections
    /// and per-mode latency totals across every batch and connection served
    /// since construction.
    pub fn lifetime_stats(&self) -> ServiceStats {
        self.core.counters.snapshot()
    }

    /// Current learned-predictor counters on the engine's catalog:
    /// observations fed back by verified runs, confident predictions served
    /// to PLANGEN, and material revisions (each of which bumped the catalog
    /// generation). All zeros unless the engine runs with
    /// [`specqp::EngineConfig::learned`] (`SPECQP_LEARNED=1`).
    pub fn learned_snapshot(&self) -> specqp::LearnedCounters {
        self.core.engine.catalog().learned_counters()
    }

    /// Commits one write batch to the live graph and returns the epoch it
    /// published — the write-path analogue of [`QueryService::try_submit`],
    /// with its own admission control:
    ///
    /// * a service built over an immutable graph (any constructor but
    ///   [`QueryService::live`]) refuses with [`ServiceError::ReadOnly`];
    /// * after [`QueryService::shutdown`] has closed admission, writes are
    ///   refused with [`ServiceError::ShuttingDown`] — queries already
    ///   admitted drain against the epochs they pinned, never against a
    ///   version committed during teardown;
    /// * batches larger than [`MAX_WRITE_BATCH`] are refused with
    ///   [`ServiceError::Protocol`] so one runaway client cannot wedge the
    ///   single-writer lock for an unbounded stretch;
    /// * an empty batch is a no-op returning the current epoch (no bump, no
    ///   plan-cache invalidation).
    ///
    /// The commit itself runs on the caller's thread (writers serialize on
    /// the live graph's writer lock); in-flight queries keep serving from
    /// their pinned versions and the *next* query picks up the new epoch.
    pub fn apply_writes(&self, batch: &WriteBatch) -> std::result::Result<Epoch, ServiceError> {
        let Some(live) = self.core.engine.live_graph() else {
            self.core.counters.record_rejected_write();
            return Err(ServiceError::ReadOnly);
        };
        if self.core.queue.is_closed() {
            self.core.counters.record_rejected_write();
            return Err(ServiceError::ShuttingDown);
        }
        if batch.len() > MAX_WRITE_BATCH {
            self.core.counters.record_rejected_write();
            return Err(ServiceError::Protocol(format!(
                "write batch of {} ops exceeds the {MAX_WRITE_BATCH}-op ceiling",
                batch.len()
            )));
        }
        if batch.is_empty() {
            return Ok(live.epoch());
        }
        let epoch = live.commit(batch);
        self.core.counters.record_writes(batch.len() as u64);
        Ok(epoch)
    }

    /// Forces a compaction of the live graph's delta overlay into a fresh
    /// flat base (see [`LiveGraph::compact`]) and returns the epoch that
    /// published it. Errors mirror [`QueryService::apply_writes`].
    pub fn compact(&self) -> std::result::Result<Epoch, ServiceError> {
        let Some(live) = self.core.engine.live_graph() else {
            return Err(ServiceError::ReadOnly);
        };
        if self.core.queue.is_closed() {
            return Err(ServiceError::ShuttingDown);
        }
        Ok(live.compact())
    }

    /// Submits one request, blocking while the queue is full (backpressure).
    ///
    /// Returns a [`Ticket`] redeemable for the [`Response`]. Fails only
    /// with [`ServiceError::ShuttingDown`] once [`QueryService::shutdown`]
    /// has closed admission.
    pub fn submit(&self, request: Request) -> std::result::Result<Ticket, ServiceError> {
        let (ticket, state) = Ticket::new();
        let item = WorkItem {
            request,
            ticket: state,
            accepted: Instant::now(),
        };
        match self.core.queue.push(item) {
            Ok(()) => {
                self.core.counters.record_submitted();
                Ok(ticket)
            }
            Err(_rejected) => {
                self.core.counters.record_rejected_shutdown();
                Err(ServiceError::ShuttingDown)
            }
        }
    }

    /// Non-blocking admission control: submits only if a queue slot is free
    /// *right now*.
    ///
    /// A full queue is [`ServiceError::QueueFull`] carrying a retry-after
    /// hint derived from the observed mean service time and the backlog —
    /// the wire front-end forwards it as `RetryAfter(ms)` instead of letting
    /// latency grow without bound.
    pub fn try_submit(&self, request: Request) -> std::result::Result<Ticket, ServiceError> {
        let (ticket, state) = Ticket::new();
        let item = WorkItem {
            request,
            ticket: state,
            accepted: Instant::now(),
        };
        match self.core.queue.try_push(item) {
            Ok(()) => {
                self.core.counters.record_submitted();
                Ok(ticket)
            }
            Err(TryPushError::Full(_rejected)) => {
                self.core.counters.record_rejected_queue_full();
                Err(ServiceError::QueueFull {
                    retry_after: self.core.retry_after_hint(),
                })
            }
            Err(TryPushError::Closed(_rejected)) => {
                self.core.counters.record_rejected_shutdown();
                Err(ServiceError::ShuttingDown)
            }
        }
    }

    /// Graceful shutdown: closes admission (subsequent submits fail with
    /// [`ServiceError::ShuttingDown`]), lets the workers drain every
    /// already-admitted request (the queue's drain-on-close contract), and
    /// joins the pool. Idempotent; also called on drop.
    ///
    /// Must not be called from a worker thread (it would join itself).
    pub fn shutdown(&self) {
        self.core.queue.close();
        let handles = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Runs every job through the worker pool and returns outcomes in
    /// submission order — a thin batch wrapper over [`QueryService::submit`].
    ///
    /// The driver thread feeds requests into the bounded queue (blocking
    /// backpressure when workers fall behind), workers execute against the
    /// shared engine, and the driver redeems the tickets in submission
    /// order. Execution is deterministic per job, so the answer sets are
    /// identical to a sequential loop over the same jobs.
    ///
    /// # Panics
    /// If a job's execution panics, the worker catches it and keeps
    /// draining the queue (so the driver never deadlocks pushing into a
    /// full queue with dead consumers), and `run_batch` re-panics with the
    /// job index when it redeems that job's ticket.
    pub fn run_batch(&self, jobs: &[QueryJob]) -> BatchReport {
        let t0 = Instant::now();
        let tickets: Vec<Ticket> = jobs
            .iter()
            .map(|job| {
                self.submit(Request::from_job(job))
                    .expect("queue closed while feeding")
            })
            .collect();
        let mut outcomes = Vec::with_capacity(jobs.len());
        let mut latencies = Vec::with_capacity(jobs.len());
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait();
            match response.outcome {
                Ok(outcome) => {
                    outcomes.push(outcome);
                    latencies.push(response.execution);
                }
                Err(ServiceError::Panicked(msg)) => panic!("query job {i} panicked: {msg}"),
                Err(e) => panic!("query job {i} failed: {e}"),
            }
        }
        let wall = t0.elapsed();
        let mut stats = self.stats_for(&latencies, wall);
        stats.per_mode = mode_breakdown(jobs, &latencies);
        stats.speculation = speculation_totals(jobs, &outcomes);
        BatchReport { outcomes, stats }
    }

    /// Sequential reference run: the same jobs, one at a time, on this
    /// service's *shared* engine — warm plan cache and statistics included,
    /// bypassing the queue and worker pool entirely. Used by the
    /// determinism tests (parallel vs sequential answer sets must match).
    /// For a cold-cache sequential baseline, build a separate
    /// [`QueryService`] over the same `Arc`s instead.
    pub fn run_sequential(&self, jobs: &[QueryJob]) -> Vec<QueryOutcome> {
        jobs.iter()
            .map(|job| self.core.run_one(&job.query, job.mode, job.k))
            .collect()
    }

    fn stats_for(&self, latencies: &[Duration], wall: Duration) -> BatchStats {
        batch_stats(latencies, wall, self.config.threads, self.cache_snapshot())
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Nearest-rank percentile over a **sorted** sample: the smallest value with
/// at least `q·n` of the sample at or below it, i.e. `sorted[⌈q·n⌉ − 1]`.
///
/// The previous implementation used `round((n−1)·q)`, which for even-sized
/// samples picked the element *above* the median (e.g. the 11th of 20 for
/// p50) — one rank too high at every percentile boundary. `Duration::ZERO`
/// for an empty sample.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    debug_assert!((0.0..=1.0).contains(&q), "percentile out of range: {q}");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// `total / queries` without the old `queries as u32` truncation: a lifetime
/// counter past `u32::MAX` used to wrap the divisor — producing a wildly
/// wrong mean or, on an exact multiple of 2³², a division by zero. The
/// division is done in `u128` nanoseconds, which cannot overflow
/// (`Duration::MAX` is < 2¹⁵⁰ ns) and loses no precision.
pub fn mean_latency(total: Duration, queries: u64) -> Duration {
    if queries == 0 {
        return Duration::ZERO;
    }
    let nanos = total.as_nanos() / queries as u128;
    // A mean cannot exceed the u64::MAX-second total it came from, but
    // saturate rather than panic on absurd inputs.
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

/// Aggregates per-query latencies into a [`BatchStats`] — factored out of
/// the service so the percentile math is unit-testable on hand-built
/// samples. The per-mode breakdown and speculation totals start empty; the
/// batch driver fills them via [`mode_breakdown`] / [`speculation_totals`].
pub fn batch_stats(
    latencies: &[Duration],
    wall: Duration,
    threads: usize,
    cache: CacheSnapshot,
) -> BatchStats {
    let queries = latencies.len();
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let total: Duration = latencies.iter().sum();
    BatchStats {
        queries,
        threads,
        wall,
        queries_per_sec: if wall.is_zero() {
            0.0
        } else {
            queries as f64 / wall.as_secs_f64()
        },
        mean_latency: mean_latency(total, queries as u64),
        p50_latency: percentile(&sorted, 0.50),
        p95_latency: percentile(&sorted, 0.95),
        p99_latency: percentile(&sorted, 0.99),
        max_latency: sorted.last().copied().unwrap_or(Duration::ZERO),
        per_mode: [None; 3],
        speculation: SpeculationTotals::default(),
        cache,
    }
}

/// Splits per-query latencies by [`ExecMode`] — the per-mode latency
/// breakdown surfaced in [`BatchStats::per_mode`]. `jobs[i]` must correspond
/// to `latencies[i]`.
pub fn mode_breakdown(jobs: &[QueryJob], latencies: &[Duration]) -> [Option<ModeLatency>; 3] {
    debug_assert_eq!(jobs.len(), latencies.len());
    let mut buckets: [Vec<Duration>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (job, &lat) in jobs.iter().zip(latencies) {
        buckets[job.mode.index()].push(lat);
    }
    let mut out = [None; 3];
    for (mode, mut bucket) in ExecMode::ALL.into_iter().zip(buckets) {
        if bucket.is_empty() {
            continue;
        }
        let queries = bucket.len();
        let total: Duration = bucket.iter().sum();
        bucket.sort_unstable();
        out[mode.index()] = Some(ModeLatency {
            mode,
            queries,
            mean_latency: mean_latency(total, queries as u64),
            p50_latency: percentile(&bucket, 0.50),
            p95_latency: percentile(&bucket, 0.95),
            max_latency: *bucket.last().expect("non-empty bucket"),
        });
    }
    out
}

/// Aggregates the speculation lifecycle counters of a batch's outcomes.
/// Only Spec-QP jobs count as speculative runs (TriniT/naive never
/// speculate). `jobs[i]` must correspond to `outcomes[i]`.
pub fn speculation_totals(jobs: &[QueryJob], outcomes: &[QueryOutcome]) -> SpeculationTotals {
    debug_assert_eq!(jobs.len(), outcomes.len());
    let mut totals = SpeculationTotals::default();
    for (job, outcome) in jobs.iter().zip(outcomes) {
        if job.mode != ExecMode::SpecQp {
            continue;
        }
        let r = &outcome.report;
        totals.speculative_runs += 1;
        totals.mis_speculations += u64::from(r.mis_speculated);
        totals.fallback_runs += u64::from(r.fallback_stages > 0);
        totals.fallback_stages += r.fallback_stages;
        totals.wasted_answers += r.wasted_answers;
        totals.verify += r.verify;
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;
    use relax::{Position, TermRule};
    use sparql::parse_query;

    fn setup() -> (Arc<KnowledgeGraph>, Arc<RelaxationRegistry>) {
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..40 {
            b.add(&format!("e{i}"), "type", "big", 100.0 / (i + 1) as f64);
        }
        for i in 0..3 {
            b.add(&format!("e{i}"), "type", "small", 10.0 / (i + 1) as f64);
        }
        for i in 0..20 {
            b.add(&format!("e{i}"), "type", "backup", 60.0 / (i + 1) as f64);
        }
        let g = b.build();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::with_context(
            Position::Object,
            d.lookup("small").unwrap(),
            d.lookup("backup").unwrap(),
            0.9,
            ty,
        ));
        (Arc::new(g), Arc::new(reg))
    }

    #[test]
    fn service_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryService>();
        assert_send_sync::<BoundedQueue<usize>>();
        assert_send_sync::<Ticket>();
        assert_send_sync::<Request>();
        assert_send_sync::<Response>();
        assert_send_sync::<ServiceError>();
    }

    #[test]
    fn batch_outcomes_in_submission_order() {
        let (g, reg) = setup();
        let service = QueryService::new(g.clone(), reg, ServiceConfig::with_threads(3));
        let big = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let small = parse_query("SELECT ?s WHERE { ?s <type> <small> }", g.dictionary()).unwrap();
        // Alternate shapes so slot order is observable.
        let jobs: Vec<QueryJob> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    QueryJob::specqp(big.clone(), 5)
                } else {
                    QueryJob::specqp(small.clone(), 2)
                }
            })
            .collect();
        let report = service.run_batch(&jobs);
        assert_eq!(report.outcomes.len(), 10);
        for (i, o) in report.outcomes.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(o.answers.len(), 5, "slot {i} must hold the big query");
            } else {
                assert!(o.answers.len() >= 2, "slot {i} must hold the small query");
            }
        }
        assert_eq!(report.stats.queries, 10);
        assert!(report.stats.queries_per_sec > 0.0);
        assert!(report.stats.mean_latency <= report.stats.max_latency);
        let c = report.stats.cache;
        assert_eq!(c.hits + c.misses, c.lookups);
        // Two distinct shapes; plan() is lookup→plangen→insert without
        // atomicity, so each shape can miss up to once per concurrently
        // racing worker (3 threads) before the first insert lands.
        assert!(
            (2..=6).contains(&c.misses),
            "misses {} outside [2, shapes × threads]",
            c.misses
        );
        assert!(c.hit_rate > 0.0);
    }

    /// Regression: a panicking job must not deadlock the driver (which
    /// previously could block forever pushing into a full queue whose only
    /// consumers had died). The worker catches the panic, completes the
    /// ticket with `ServiceError::Panicked`, and `run_batch` re-panics with
    /// the job index.
    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let (g, reg) = setup();
        let service = QueryService::new(g.clone(), reg, ServiceConfig::with_threads(1));
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let mut jobs: Vec<QueryJob> = (0..10).map(|_| QueryJob::specqp(q.clone(), 5)).collect();
        // k = 0 trips plan_query's `k >= 1` assertion inside the worker.
        jobs[0].k = 0;
        // 10 jobs > queue_depth 4: with a dead worker the old code hung here.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| service.run_batch(&jobs)));
        let payload = result.expect_err("batch with a panicking job must panic");
        let msg = panic_message(payload.as_ref());
        assert!(
            msg.contains("query job 0 panicked"),
            "panic names the job: {msg}"
        );
        // The pool survived the panic: the service still answers.
        let report = service.run_batch(&jobs[1..2]);
        assert_eq!(report.outcomes.len(), 1);
        let stats = service.lifetime_stats();
        assert_eq!(stats.panicked, 1);
    }

    #[test]
    fn submit_ticket_roundtrip() {
        let (g, reg) = setup();
        let service = QueryService::new(g.clone(), reg, ServiceConfig::with_threads(2));
        let q = parse_query("SELECT ?s WHERE { ?s <type> <small> }", g.dictionary()).unwrap();
        let ticket = service.submit(Request::new(q, 5).with_client(7)).unwrap();
        let response = ticket.wait();
        assert!(response.total() >= response.execution);
        assert!(!response.is_shed());
        let outcome = response.outcome.expect("query executed");
        assert_eq!(outcome.answers.len(), 5, "3 small + relaxed backup fill");
        let stats = service.lifetime_stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        let spec = stats.per_mode[ExecMode::SpecQp.index()].expect("specqp totals");
        assert_eq!(spec.queries, 1);
    }

    /// Overload behavior: with workers wedged on slow jobs and the queue
    /// full, `try_submit` returns `QueueFull` immediately instead of
    /// blocking — the admission-control contract the TCP front-end depends
    /// on.
    #[test]
    fn try_submit_on_saturated_queue_returns_queue_full_without_blocking() {
        let (g, reg) = setup();
        let config = ServiceConfig::with_threads(1).with_queue_depth(1);
        let service = QueryService::new(g.clone(), reg, config);
        let big = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        // Wedge the single worker: a request whose deadline is far away but
        // whose execution blocks the pool long enough to fill the queue
        // deterministically. A naive-mode self-join over the big list is
        // slow relative to the admission calls below, but to make this
        // airtight we instead wedge with many queued requests: fill the
        // 1-slot queue while the worker chews the first.
        let mut tickets = Vec::new();
        // First submit occupies the worker (possibly instantly popped), the
        // next fills the queue slot; keep try-submitting until one lands in
        // the queue and the next is rejected.
        let t0 = Instant::now();
        let mut saw_queue_full = None;
        for _ in 0..64 {
            match service.try_submit(Request::new(big.clone(), 10)) {
                Ok(t) => tickets.push(t),
                Err(e) => {
                    saw_queue_full = Some(e);
                    break;
                }
            }
        }
        let elapsed = t0.elapsed();
        let err = saw_queue_full.expect("a 1-deep queue must eventually reject");
        match &err {
            ServiceError::QueueFull { retry_after } => {
                assert!(*retry_after >= Duration::from_millis(1));
                assert!(*retry_after <= Duration::from_secs(5));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert!(err.is_retryable());
        // Non-blocking: 64 admission attempts in well under a second even
        // with the pool busy.
        assert!(
            elapsed < Duration::from_secs(5),
            "try_submit must not block: {elapsed:?}"
        );
        assert!(service.lifetime_stats().rejected_queue_full >= 1);
        // Everything admitted still completes.
        for t in tickets {
            let r = t.wait();
            assert!(r.outcome.is_ok());
        }
    }

    /// Overload behavior: a request whose deadline has already passed when a
    /// worker picks it up is shed — counted, never executed.
    #[test]
    fn deadline_expired_requests_are_shed_before_execution() {
        let (g, reg) = setup();
        let service = QueryService::new(
            g.clone(),
            reg,
            ServiceConfig::with_threads(1).with_queue_depth(8),
        );
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        // An already-expired deadline: the worker must shed it however fast
        // it dequeues.
        let expired = Instant::now() - Duration::from_millis(1);
        let ticket = service
            .submit(Request::new(q.clone(), 5).with_deadline(expired))
            .unwrap();
        let response = ticket.wait();
        assert!(response.is_shed());
        assert_eq!(
            response.outcome.unwrap_err(),
            ServiceError::DeadlineExceeded
        );
        assert_eq!(response.execution, Duration::ZERO, "shed jobs never run");
        let stats = service.lifetime_stats();
        assert_eq!(stats.shed_deadline, 1);
        assert_eq!(stats.executed(), 0, "shed request must not execute");
        // A request with a generous deadline still executes normally.
        let ok = service
            .submit(Request::new(q, 5).with_deadline_in(Duration::from_secs(30)))
            .unwrap()
            .wait();
        assert!(ok.outcome.is_ok());
    }

    /// Graceful shutdown: everything admitted before `shutdown` completes
    /// (drain-on-close), and submissions after it fail with `ShuttingDown`.
    #[test]
    fn shutdown_drains_in_flight_requests() {
        let (g, reg) = setup();
        let service = QueryService::new(
            g.clone(),
            reg,
            ServiceConfig::with_threads(2).with_queue_depth(16),
        );
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let tickets: Vec<Ticket> = (0..12)
            .map(|_| service.submit(Request::new(q.clone(), 5)).unwrap())
            .collect();
        service.shutdown();
        // Every admitted request was executed, none dropped.
        for t in tickets {
            let r = t.wait();
            assert_eq!(
                r.outcome.expect("drained request executed").answers.len(),
                5
            );
        }
        let e = service.submit(Request::new(q.clone(), 5)).unwrap_err();
        assert_eq!(e, ServiceError::ShuttingDown);
        let e = service.try_submit(Request::new(q, 5)).unwrap_err();
        assert_eq!(e, ServiceError::ShuttingDown);
        let stats = service.lifetime_stats();
        assert_eq!(stats.completed, 12);
        assert_eq!(stats.rejected_shutdown, 2);
        // Idempotent.
        service.shutdown();
    }

    #[test]
    fn ticket_wait_timeout_returns_ticket_until_ready() {
        let (g, reg) = setup();
        let service = QueryService::new(g.clone(), reg, ServiceConfig::with_threads(1));
        let q = parse_query("SELECT ?s WHERE { ?s <type> <small> }", g.dictionary()).unwrap();
        let ticket = service.submit(Request::new(q, 5)).unwrap();
        // Either it resolves within 5s or we get the ticket back and block.
        match ticket.wait_timeout(Duration::from_secs(5)) {
            Ok(response) => assert!(response.outcome.is_ok()),
            Err(ticket) => {
                let response = ticket.wait();
                assert!(response.outcome.is_ok());
            }
        }
    }

    #[test]
    fn from_snapshot_answers_like_builder_path() {
        let (g, reg) = setup();
        let path = std::env::temp_dir().join(format!(
            "specqp_service_snapshot_{}.snap",
            std::process::id()
        ));
        kgstore::snapshot::save_snapshot(&g, &path).unwrap();
        let q = parse_query("SELECT ?s WHERE { ?s <type> <small> }", g.dictionary()).unwrap();
        let jobs = vec![QueryJob::specqp(q, 5)];

        let direct = QueryService::new(g.clone(), reg.clone(), ServiceConfig::with_threads(2));
        let booted =
            QueryService::from_snapshot(&path, reg, ServiceConfig::with_threads(2)).unwrap();
        let a = direct.run_batch(&jobs);
        let b = booted.run_batch(&jobs);
        assert_eq!(a.outcomes[0].answers.len(), b.outcomes[0].answers.len());
        for (x, y) in a.outcomes[0].answers.iter().zip(&b.outcomes[0].answers) {
            assert_eq!(x.score, y.score);
            assert_eq!(x.binding, y.binding);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_snapshot_missing_file_is_typed_error() {
        let (_, reg) = setup();
        let e = QueryService::from_snapshot(
            "/nonexistent/specqp_service.snap",
            reg,
            ServiceConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                specqp_common::Error::Snapshot(specqp_common::SnapshotError::Io(_))
            ),
            "{e:?}"
        );
    }

    /// Pins the nearest-rank definition on a hand-built sample: for
    /// `n = 20` with values `1..=20` ms, p50 is the 10th value (10 ms, not
    /// the 11th — the off-by-one the old `round((n−1)·q)` formula produced),
    /// p95 the 19th and p99 the 20th.
    #[test]
    fn percentiles_use_nearest_rank() {
        let ms = Duration::from_millis;
        let sample: Vec<Duration> = (1..=20).map(ms).collect();
        assert_eq!(percentile(&sample, 0.50), ms(10));
        assert_eq!(percentile(&sample, 0.95), ms(19));
        assert_eq!(percentile(&sample, 0.99), ms(20));
        assert_eq!(percentile(&sample, 1.0), ms(20));
        assert_eq!(percentile(&sample, 0.0), ms(1));
        // Odd-sized sample: p50 is the true middle element.
        let odd: Vec<Duration> = (1..=5).map(ms).collect();
        assert_eq!(percentile(&odd, 0.50), ms(3));
    }

    #[test]
    fn percentiles_single_sample_and_duplicates() {
        let ms = Duration::from_millis;
        // n = 1: every percentile is the one sample.
        let one = vec![ms(7)];
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&one, q), ms(7), "q={q}");
        }
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        // Duplicate values: ties collapse to the same answer at every rank.
        let dup = vec![ms(5); 10];
        assert_eq!(percentile(&dup, 0.5), ms(5));
        assert_eq!(percentile(&dup, 0.99), ms(5));
        // Mixed duplicates: 9×1ms + 1×100ms — p50 sits in the duplicate
        // mass, p95/p99 pick the outlier.
        let mut mixed: Vec<Duration> = vec![ms(1); 9];
        mixed.push(ms(100));
        assert_eq!(percentile(&mixed, 0.50), ms(1));
        assert_eq!(percentile(&mixed, 0.95), ms(100));
        assert_eq!(percentile(&mixed, 0.99), ms(100));
    }

    #[test]
    fn batch_stats_aggregates_hand_built_sample() {
        let ms = Duration::from_millis;
        let latencies: Vec<Duration> = (1..=4).map(ms).collect();
        let stats = batch_stats(&latencies, ms(10), 2, CacheSnapshot::default());
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.mean_latency, Duration::from_micros(2500));
        assert_eq!(stats.p50_latency, ms(2));
        assert_eq!(stats.p95_latency, ms(4));
        assert_eq!(stats.p99_latency, ms(4));
        assert_eq!(stats.max_latency, ms(4));
        assert!((stats.queries_per_sec - 400.0).abs() < 1e-9);
        // Ordering invariants.
        assert!(stats.p50_latency <= stats.p95_latency);
        assert!(stats.p95_latency <= stats.p99_latency);
        assert!(stats.p99_latency <= stats.max_latency);
    }

    /// Regression: the mean used to be computed as `total / queries as u32`,
    /// so a lifetime counter past `u32::MAX` wrapped the divisor — e.g.
    /// `u32::MAX + 2` queries divided by 1 — and an exact multiple of 2³²
    /// divided by zero. The division must happen in full width.
    #[test]
    fn mean_latency_survives_counts_beyond_u32() {
        let n = u32::MAX as u64 + 2;
        // n queries of 1ms each: the mean is exactly 1ms. Under the old
        // truncation the divisor wrapped to 1 and the "mean" was the total.
        let total = Duration::from_millis(n);
        assert_eq!(mean_latency(total, n), Duration::from_millis(1));
        // An exact multiple of 2³² used to divide by zero.
        let n = (u32::MAX as u64 + 1) * 2;
        assert_eq!(
            mean_latency(Duration::from_millis(n), n),
            Duration::from_millis(1)
        );
        // Degenerate inputs stay sane.
        assert_eq!(mean_latency(Duration::ZERO, 0), Duration::ZERO);
        assert_eq!(mean_latency(Duration::from_secs(5), 0), Duration::ZERO);
        assert_eq!(
            mean_latency(Duration::from_micros(2500 * 4), 4),
            Duration::from_micros(2500)
        );
    }

    /// Config plumb-through: a service built with a block-execution engine
    /// config answers exactly like the row-mode service.
    #[test]
    fn block_execution_service_matches_row_service() {
        use operators::ExecutionMode;
        use specqp::EngineConfig;
        let (g, reg) = setup();
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let jobs: Vec<QueryJob> = vec![
            QueryJob::specqp(q.clone(), 10),
            QueryJob::trinit(q.clone(), 5),
            QueryJob::naive(q, 5),
        ];
        let mk = |mode: ExecutionMode| {
            let mut cfg = ServiceConfig::with_threads(2);
            cfg.engine = EngineConfig::default().with_execution(mode);
            QueryService::new(g.clone(), reg.clone(), cfg)
        };
        let row = mk(ExecutionMode::RowAtATime).run_batch(&jobs);
        for size in [1, 64] {
            let block = mk(ExecutionMode::Block(size)).run_batch(&jobs);
            for (a, b) in row.outcomes.iter().zip(&block.outcomes) {
                assert_eq!(a.answers, b.answers, "size {size}");
            }
        }
    }

    /// The learned-predictor counters surface: a learned service counts one
    /// observation per verified Spec-QP run; a default service stays at 0.
    #[test]
    fn learned_snapshot_counts_observations() {
        use specqp::{EngineConfig, SpeculationPolicy};
        let (g, reg) = setup();
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let mut cfg = ServiceConfig::with_threads(2);
        cfg.engine = EngineConfig::default()
            .with_speculation(SpeculationPolicy::Fallback { max_stages: 3 })
            .with_learned(true);
        let svc = QueryService::new(g.clone(), reg.clone(), cfg);
        assert_eq!(svc.learned_snapshot().observations, 0);
        let jobs: Vec<QueryJob> = (0..4).map(|_| QueryJob::specqp(q.clone(), 5)).collect();
        let _ = svc.run_batch(&jobs);
        let counters = svc.learned_snapshot();
        assert_eq!(counters.observations, 4, "one observation per run");
    }

    #[test]
    fn mode_breakdown_splits_latencies_by_mode() {
        let ms = Duration::from_millis;
        let (g, _) = setup();
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let jobs = vec![
            QueryJob::specqp(q.clone(), 5),
            QueryJob::trinit(q.clone(), 5),
            QueryJob::specqp(q.clone(), 5),
            QueryJob::specqp(q, 5),
        ];
        let latencies = vec![ms(10), ms(100), ms(20), ms(30)];
        let per_mode = mode_breakdown(&jobs, &latencies);
        let spec = per_mode[ExecMode::SpecQp.index()].expect("specqp present");
        assert_eq!(spec.queries, 3);
        assert_eq!(spec.mean_latency, ms(20));
        assert_eq!(spec.p50_latency, ms(20));
        assert_eq!(spec.max_latency, ms(30));
        let trinit = per_mode[ExecMode::TriniT.index()].expect("trinit present");
        assert_eq!(trinit.queries, 1);
        assert_eq!(trinit.mean_latency, ms(100));
        assert!(per_mode[ExecMode::Naive.index()].is_none(), "no naive jobs");
        assert_eq!(ExecMode::SpecQp.label(), "specqp");
        assert_eq!(ExecMode::from_index(1), Some(ExecMode::TriniT));
        assert_eq!(ExecMode::from_index(3), None);
    }

    #[test]
    fn speculation_totals_aggregate_specqp_reports_only() {
        let (g, _) = setup();
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let jobs = vec![QueryJob::specqp(q.clone(), 5), QueryJob::trinit(q, 5)];
        let mk = |stages: u64, wasted: u64, mis: bool| specqp::QueryOutcome {
            answers: Vec::new(),
            plan: specqp::QueryPlan::all_relaxed(1),
            report: specqp::RunReport {
                fallback_stages: stages,
                wasted_answers: wasted,
                mis_speculated: mis,
                verify: Duration::from_micros(7),
                ..Default::default()
            },
        };
        // The trinit outcome's counters must be ignored even if set.
        let totals = speculation_totals(&jobs, &[mk(2, 40, true), mk(9, 99, true)]);
        assert_eq!(totals.speculative_runs, 1);
        assert_eq!(totals.mis_speculations, 1);
        assert_eq!(totals.fallback_runs, 1);
        assert_eq!(totals.fallback_stages, 2);
        assert_eq!(totals.wasted_answers, 40);
        assert_eq!(totals.verify, Duration::from_micros(7));
        assert!((totals.mis_speculation_rate() - 1.0).abs() < 1e-12);
        assert!((totals.fallback_rate() - 1.0).abs() < 1e-12);
        assert_eq!(SpeculationTotals::default().mis_speculation_rate(), 0.0);
    }

    /// End-to-end: a ForceFinal-policy service reports one fallback stage
    /// per Spec-QP job in `BatchStats::speculation`, with the per-mode
    /// breakdown covering every submitted mode.
    #[test]
    fn batch_report_surfaces_fallback_counters() {
        use specqp::{EngineConfig, SpeculationPolicy};
        let (g, reg) = setup();
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let mut cfg = ServiceConfig::with_threads(2);
        cfg.engine = EngineConfig::default().with_speculation(SpeculationPolicy::ForceFinal);
        let service = QueryService::new(g.clone(), reg, cfg);
        let jobs = vec![
            QueryJob::specqp(q.clone(), 10),
            QueryJob::specqp(q.clone(), 10),
            QueryJob::trinit(q, 10),
        ];
        let report = service.run_batch(&jobs);
        let s = report.stats.speculation;
        assert_eq!(s.speculative_runs, 2);
        assert_eq!(s.fallback_stages, 2, "one forced stage per specqp job");
        assert_eq!(s.fallback_runs, 2);
        assert!((s.fallback_rate() - 1.0).abs() < 1e-12);
        assert!(report.stats.per_mode[ExecMode::SpecQp.index()].is_some());
        assert!(report.stats.per_mode[ExecMode::TriniT.index()].is_some());
        assert!(report.stats.per_mode[ExecMode::Naive.index()].is_none());
        // Forced-final Spec-QP answers equal the TriniT job's answers.
        assert_eq!(report.outcomes[0].answers, report.outcomes[2].answers);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (g, reg) = setup();
        let service = QueryService::new(g, reg, ServiceConfig::with_threads(2));
        let report = service.run_batch(&[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.stats.queries, 0);
        assert_eq!(report.stats.mean_latency, Duration::ZERO);
    }

    /// The write path end to end: a live service answers, accepts a write
    /// batch, serves the new triple on the next query, and enforces write
    /// admission control (read-only services, over-ceiling batches, and
    /// post-shutdown writes are all refused with typed errors).
    #[test]
    fn live_service_applies_writes_and_enforces_admission() {
        use kgstore::{LiveGraph, WriteBatch};
        let (g, reg) = setup();
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let base = Arc::try_unwrap(g).unwrap_or_else(|a| a.flattened());
        let live = Arc::new(LiveGraph::new(base));
        let service = QueryService::live(
            Arc::clone(&live),
            reg.clone(),
            ServiceConfig::with_threads(2),
        );

        let before = service.run_batch(&[QueryJob::specqp(q.clone(), 50)]);
        let n = before.outcomes[0].answers.len();

        // Empty batch: a no-op, no epoch bump.
        let e0 = service.apply_writes(&WriteBatch::new()).unwrap();
        assert_eq!(e0, kgstore::Epoch::ZERO);

        let mut batch = WriteBatch::new();
        batch.assert("fresh", "type", "big", 999.0);
        let e1 = service.apply_writes(&batch).unwrap();
        assert_eq!(e1.value(), 1);
        let after = service.run_batch(&[QueryJob::specqp(q.clone(), 50)]);
        assert_eq!(after.outcomes[0].answers.len(), n + 1);

        // Over-ceiling batch: refused before touching the writer lock.
        let mut huge = WriteBatch::new();
        for i in 0..=MAX_WRITE_BATCH {
            huge.assert(&format!("x{i}"), "type", "big", 1.0);
        }
        assert!(matches!(
            service.apply_writes(&huge),
            Err(ServiceError::Protocol(_))
        ));

        let stats = service.lifetime_stats();
        assert_eq!(stats.write_batches, 1);
        assert_eq!(stats.write_ops, 1);
        assert_eq!(stats.rejected_writes, 1);

        // Forced compaction folds the delta; answers are unchanged.
        let e2 = service.compact().unwrap();
        assert!(e2 > e1);
        let folded = service.run_batch(&[QueryJob::specqp(q.clone(), 50)]);
        assert_eq!(folded.outcomes[0].answers, after.outcomes[0].answers);

        // Shutdown closes the write path too.
        service.shutdown();
        assert_eq!(
            service.apply_writes(&batch).unwrap_err(),
            ServiceError::ShuttingDown
        );
        assert_eq!(service.compact().unwrap_err(), ServiceError::ShuttingDown);

        // A read-only service refuses writes outright.
        let (g2, reg2) = setup();
        let ro = QueryService::new(g2, reg2, ServiceConfig::with_threads(1));
        assert_eq!(ro.apply_writes(&batch).unwrap_err(), ServiceError::ReadOnly);
        assert_eq!(ro.compact().unwrap_err(), ServiceError::ReadOnly);
        assert_eq!(ro.lifetime_stats().rejected_writes, 1);
    }

    #[test]
    fn single_thread_service_works() {
        let (g, reg) = setup();
        let service = QueryService::new(g.clone(), reg, ServiceConfig::with_threads(1));
        let q = parse_query("SELECT ?s WHERE { ?s <type> <small> }", g.dictionary()).unwrap();
        let report = service.run_batch(&[QueryJob::trinit(q, 5)]);
        assert_eq!(report.outcomes.len(), 1);
        assert!(!report.outcomes[0].answers.is_empty());
    }
}
