//! # specqp_service — a concurrent query service over one shared engine
//!
//! The Spec-QP paper's premise is that speculative planning amortizes
//! optimization effort across a *workload*. This crate supplies the serving
//! layer that premise assumes: one [`Engine`] co-owning its graph and
//! relaxation registry through `Arc`s, shared read-only by a fixed-size pool
//! of worker threads that drain a bounded MPMC job queue. Per-query results
//! come back in submission order as [`specqp::QueryOutcome`]s, together with
//! aggregate throughput/latency statistics and a snapshot of the engine's
//! plan-cache counters — repeated query shapes skip PLANGEN entirely.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use kgstore::KnowledgeGraphBuilder;
//! use relax::RelaxationRegistry;
//! use sparql::parse_query;
//! use specqp_service::{ExecMode, QueryJob, QueryService, ServiceConfig};
//!
//! let mut b = KnowledgeGraphBuilder::new();
//! b.add("shakira", "rdf:type", "singer", 100.0);
//! b.add("adele", "rdf:type", "singer", 90.0);
//! let graph = Arc::new(b.build());
//! let registry = Arc::new(RelaxationRegistry::new());
//!
//! let q = parse_query("SELECT ?s WHERE { ?s <rdf:type> <singer> }", graph.dictionary()).unwrap();
//! let service = QueryService::new(graph, registry, ServiceConfig::with_threads(2));
//! let jobs: Vec<QueryJob> = (0..8).map(|_| QueryJob::specqp(q.clone(), 5)).collect();
//! let report = service.run_batch(&jobs);
//!
//! assert_eq!(report.outcomes.len(), 8);
//! assert!(report.outcomes.iter().all(|o| o.answers.len() == 2));
//! assert!(report.stats.queries_per_sec > 0.0);
//! // The 8 identical shapes share one cached plan; at most one racing
//! // miss per worker thread before the first insert lands.
//! assert!(report.stats.cache.hits >= 6);
//! ```

pub mod queue;

pub use queue::BoundedQueue;

use kgstore::KnowledgeGraph;
use relax::RelaxationRegistry;
use sparql::Query;
use specqp::{Engine, EngineConfig, QueryOutcome};
use specqp_common::Result;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which executor a job runs through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Speculative planning + execution (the paper's Spec-QP), including
    /// the engine's speculation lifecycle when a policy is configured.
    SpecQp,
    /// The TriniT baseline: every pattern relaxed, no planning.
    TriniT,
    /// The brute-force ground-truth executor (tests / validation).
    Naive,
}

impl ExecMode {
    /// Every mode, in the order used by [`BatchStats::per_mode`].
    pub const ALL: [ExecMode; 3] = [ExecMode::SpecQp, ExecMode::TriniT, ExecMode::Naive];

    /// Stable index of this mode inside [`ExecMode::ALL`].
    pub fn index(self) -> usize {
        match self {
            ExecMode::SpecQp => 0,
            ExecMode::TriniT => 1,
            ExecMode::Naive => 2,
        }
    }

    /// Short lowercase label (`specqp` / `trinit` / `naive`) used by probe
    /// reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::SpecQp => "specqp",
            ExecMode::TriniT => "trinit",
            ExecMode::Naive => "naive",
        }
    }
}

/// One unit of work: a query, the answer budget `k` and the executor mode.
#[derive(Clone, Debug)]
pub struct QueryJob {
    /// The query to answer.
    pub query: Query,
    /// Top-k budget.
    pub k: usize,
    /// Executor selection.
    pub mode: ExecMode,
}

impl QueryJob {
    /// A Spec-QP job.
    pub fn specqp(query: Query, k: usize) -> Self {
        QueryJob {
            query,
            k,
            mode: ExecMode::SpecQp,
        }
    }

    /// A TriniT-baseline job.
    pub fn trinit(query: Query, k: usize) -> Self {
        QueryJob {
            query,
            k,
            mode: ExecMode::TriniT,
        }
    }

    /// A naive ground-truth job.
    pub fn naive(query: Query, k: usize) -> Self {
        QueryJob {
            query,
            k,
            mode: ExecMode::Naive,
        }
    }
}

/// Service tunables.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads (minimum 1).
    pub threads: usize,
    /// Bounded job-queue depth; defaults to `4 × threads`.
    pub queue_depth: usize,
    /// Engine configuration used by [`QueryService::new`].
    pub engine: EngineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::with_threads(4)
    }
}

impl ServiceConfig {
    /// Config with `threads` workers and the default queue depth/engine.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        ServiceConfig {
            threads,
            queue_depth: threads * 4,
            engine: EngineConfig::default(),
        }
    }
}

/// Snapshot of the engine's plan-cache counters at the end of a batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheSnapshot {
    /// Total lookups (`hits + misses`).
    pub lookups: u64,
    /// Lookups answered from the cache (PLANGEN skipped).
    pub hits: u64,
    /// Lookups that had to run PLANGEN.
    pub misses: u64,
    /// Plans inserted.
    pub insertions: u64,
    /// Plans evicted by capacity pressure.
    pub evictions: u64,
    /// Entries dropped (or refreshed) because a statistics feedback refit
    /// bumped the catalog generation after they were planned.
    pub stale: u64,
    /// `hits / lookups` in `[0, 1]`.
    pub hit_rate: f64,
}

/// Latency breakdown for the jobs of one [`ExecMode`] within a batch.
#[derive(Clone, Copy, Debug)]
pub struct ModeLatency {
    /// The mode these numbers describe.
    pub mode: ExecMode,
    /// Jobs of this mode in the batch.
    pub queries: usize,
    /// Mean per-query latency.
    pub mean_latency: Duration,
    /// Median per-query latency.
    pub p50_latency: Duration,
    /// 95th-percentile per-query latency.
    pub p95_latency: Duration,
    /// Worst per-query latency.
    pub max_latency: Duration,
}

/// Speculation-lifecycle totals over one batch, aggregated from the
/// per-query [`specqp::RunReport`]s (all zeros under
/// `SpeculationPolicy::Off` or when the batch held no Spec-QP jobs).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpeculationTotals {
    /// Spec-QP jobs in the batch (the runs the lifecycle applies to).
    pub speculative_runs: u64,
    /// Runs the verifier classified as mis-speculated.
    pub mis_speculations: u64,
    /// Runs that took at least one fallback re-execution.
    pub fallback_runs: u64,
    /// Total fallback stages across the batch.
    pub fallback_stages: u64,
    /// Total answer objects discarded by abandoned executions.
    pub wasted_answers: u64,
    /// Total time spent in the verifier.
    pub verify: Duration,
}

impl SpeculationTotals {
    /// `mis_speculations / speculative_runs` in `[0, 1]` (0 when the batch
    /// held no speculative runs).
    pub fn mis_speculation_rate(&self) -> f64 {
        if self.speculative_runs == 0 {
            0.0
        } else {
            self.mis_speculations as f64 / self.speculative_runs as f64
        }
    }

    /// `fallback_runs / speculative_runs` in `[0, 1]`.
    pub fn fallback_rate(&self) -> f64 {
        if self.speculative_runs == 0 {
            0.0
        } else {
            self.fallback_runs as f64 / self.speculative_runs as f64
        }
    }
}

/// Aggregate accounting for one batch run.
#[derive(Clone, Copy, Debug)]
pub struct BatchStats {
    /// Queries executed.
    pub queries: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// `queries / wall` (the BENCH throughput headline).
    pub queries_per_sec: f64,
    /// Mean per-query latency.
    pub mean_latency: Duration,
    /// Median per-query latency.
    pub p50_latency: Duration,
    /// 95th-percentile per-query latency.
    pub p95_latency: Duration,
    /// 99th-percentile per-query latency.
    pub p99_latency: Duration,
    /// Worst per-query latency.
    pub max_latency: Duration,
    /// Per-[`ExecMode`] latency breakdown, indexed by [`ExecMode::index`]
    /// (`None` for modes absent from the batch).
    pub per_mode: [Option<ModeLatency>; 3],
    /// Speculation-lifecycle totals (mis-speculation/fallback counters).
    pub speculation: SpeculationTotals,
    /// Plan-cache counters accumulated on the engine (lifetime totals, not
    /// per-batch deltas, when the service is reused).
    pub cache: CacheSnapshot,
}

/// One batch's results: per-query outcomes in submission order plus
/// aggregate statistics.
#[derive(Debug)]
pub struct BatchReport {
    /// `outcomes[i]` answers `jobs[i]`.
    pub outcomes: Vec<QueryOutcome>,
    /// Throughput/latency/cache accounting.
    pub stats: BatchStats,
}

/// Renders a caught panic payload for re-raising on the driver thread.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A concurrent query service: an `Arc`-shared engine plus a worker pool
/// draining a bounded MPMC queue.
///
/// The service is itself `Send + Sync`; `run_batch` takes `&self`, so one
/// service can serve many batches (the plan cache and statistics catalog
/// stay warm across batches).
#[derive(Debug)]
pub struct QueryService {
    engine: Arc<Engine<'static>>,
    config: ServiceConfig,
}

impl QueryService {
    /// Builds a service around a fresh engine co-owning `graph` and
    /// `registry`.
    pub fn new(
        graph: Arc<KnowledgeGraph>,
        registry: Arc<RelaxationRegistry>,
        config: ServiceConfig,
    ) -> Self {
        let engine = Engine::shared_with_config(graph, registry, config.engine);
        QueryService {
            engine: Arc::new(engine),
            config,
        }
    }

    /// Builds a service around an existing `'static` engine (custom
    /// cardinality estimator, chain rules, …).
    pub fn with_engine(engine: Arc<Engine<'static>>, config: ServiceConfig) -> Self {
        QueryService { engine, config }
    }

    /// Boots a service directly from a binary KG snapshot file: the graph is
    /// deserialized with its posting lists intact (no TSV parse, no index
    /// rebuild — see [`kgstore::snapshot`]), wrapped in an `Arc` and shared
    /// by the worker pool. This is the restart-fast path: a service replica
    /// comes up without repeating any of the build work the snapshot froze.
    ///
    /// Returns the typed [`specqp_common::SnapshotError`] (wrapped in
    /// [`specqp_common::Error::Snapshot`]) if the file is missing, truncated
    /// or corrupt.
    pub fn from_snapshot(
        path: impl AsRef<Path>,
        registry: Arc<RelaxationRegistry>,
        config: ServiceConfig,
    ) -> Result<Self> {
        let graph = Arc::new(kgstore::snapshot::load_snapshot(path)?);
        Ok(QueryService::new(graph, registry, config))
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine<'static>> {
        &self.engine
    }

    /// The service configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Current plan-cache counters.
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        let m = self.engine.plan_cache_metrics();
        CacheSnapshot {
            lookups: m.lookups(),
            hits: m.hits(),
            misses: m.misses(),
            insertions: m.insertions(),
            evictions: m.evictions(),
            stale: m.stale(),
            hit_rate: m.hit_rate(),
        }
    }

    /// Runs every job through the worker pool and returns outcomes in
    /// submission order.
    ///
    /// The driver thread feeds job indices into the bounded queue (applying
    /// backpressure when workers fall behind), each worker pops, executes
    /// against the shared engine and stores `(outcome, latency)` into its
    /// result slot. Execution is deterministic per job, so the answer sets
    /// are identical to a sequential loop over the same jobs.
    ///
    /// # Panics
    /// If a job's execution panics, the worker catches it and keeps
    /// draining the queue (so the driver never deadlocks pushing into a
    /// full queue with dead consumers), and `run_batch` re-panics with the
    /// job index once the batch is drained.
    pub fn run_batch(&self, jobs: &[QueryJob]) -> BatchReport {
        type Slot = Option<Result<(QueryOutcome, Duration), String>>;
        let queue: BoundedQueue<usize> = BoundedQueue::new(self.config.queue_depth);
        let slots: Vec<Mutex<Slot>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..self.config.threads {
                scope.spawn(|| {
                    while let Some(i) = queue.pop() {
                        let job = &jobs[i];
                        let started = Instant::now();
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            self.run_one(job)
                        }))
                        .map(|outcome| (outcome, started.elapsed()))
                        .map_err(|payload| panic_message(payload.as_ref()));
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    }
                });
            }
            for i in 0..jobs.len() {
                queue.push(i).expect("queue closed while feeding");
            }
            queue.close();
        });
        let wall = t0.elapsed();

        let mut outcomes = Vec::with_capacity(jobs.len());
        let mut latencies = Vec::with_capacity(jobs.len());
        for (i, slot) in slots.into_iter().enumerate() {
            let result = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker pool exited with unprocessed job");
            match result {
                Ok((outcome, latency)) => {
                    outcomes.push(outcome);
                    latencies.push(latency);
                }
                Err(msg) => panic!("query job {i} panicked: {msg}"),
            }
        }
        let mut stats = self.stats_for(&latencies, wall);
        stats.per_mode = mode_breakdown(jobs, &latencies);
        stats.speculation = speculation_totals(jobs, &outcomes);
        BatchReport { outcomes, stats }
    }

    /// Sequential reference run: the same jobs, one at a time, on this
    /// service's *shared* engine — warm plan cache and statistics included.
    /// Used by the determinism tests (parallel vs sequential answer sets
    /// must match). For a cold-cache sequential baseline, build a separate
    /// [`QueryService`] over the same `Arc`s instead.
    pub fn run_sequential(&self, jobs: &[QueryJob]) -> Vec<QueryOutcome> {
        jobs.iter().map(|job| self.run_one(job)).collect()
    }

    fn run_one(&self, job: &QueryJob) -> QueryOutcome {
        match job.mode {
            ExecMode::SpecQp => self.engine.run_specqp(&job.query, job.k),
            ExecMode::TriniT => self.engine.run_trinit(&job.query, job.k),
            ExecMode::Naive => self.engine.run_naive(&job.query, job.k),
        }
    }

    fn stats_for(&self, latencies: &[Duration], wall: Duration) -> BatchStats {
        batch_stats(latencies, wall, self.config.threads, self.cache_snapshot())
    }
}

/// Nearest-rank percentile over a **sorted** sample: the smallest value with
/// at least `q·n` of the sample at or below it, i.e. `sorted[⌈q·n⌉ − 1]`.
///
/// The previous implementation used `round((n−1)·q)`, which for even-sized
/// samples picked the element *above* the median (e.g. the 11th of 20 for
/// p50) — one rank too high at every percentile boundary. `Duration::ZERO`
/// for an empty sample.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    debug_assert!((0.0..=1.0).contains(&q), "percentile out of range: {q}");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregates per-query latencies into a [`BatchStats`] — factored out of
/// the service so the percentile math is unit-testable on hand-built
/// samples. The per-mode breakdown and speculation totals start empty; the
/// batch driver fills them via [`mode_breakdown`] / [`speculation_totals`].
pub fn batch_stats(
    latencies: &[Duration],
    wall: Duration,
    threads: usize,
    cache: CacheSnapshot,
) -> BatchStats {
    let queries = latencies.len();
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let total: Duration = latencies.iter().sum();
    BatchStats {
        queries,
        threads,
        wall,
        queries_per_sec: if wall.is_zero() {
            0.0
        } else {
            queries as f64 / wall.as_secs_f64()
        },
        mean_latency: if queries == 0 {
            Duration::ZERO
        } else {
            total / queries as u32
        },
        p50_latency: percentile(&sorted, 0.50),
        p95_latency: percentile(&sorted, 0.95),
        p99_latency: percentile(&sorted, 0.99),
        max_latency: sorted.last().copied().unwrap_or(Duration::ZERO),
        per_mode: [None; 3],
        speculation: SpeculationTotals::default(),
        cache,
    }
}

/// Splits per-query latencies by [`ExecMode`] — the per-mode latency
/// breakdown surfaced in [`BatchStats::per_mode`]. `jobs[i]` must correspond
/// to `latencies[i]`.
pub fn mode_breakdown(jobs: &[QueryJob], latencies: &[Duration]) -> [Option<ModeLatency>; 3] {
    debug_assert_eq!(jobs.len(), latencies.len());
    let mut buckets: [Vec<Duration>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (job, &lat) in jobs.iter().zip(latencies) {
        buckets[job.mode.index()].push(lat);
    }
    let mut out = [None; 3];
    for (mode, mut bucket) in ExecMode::ALL.into_iter().zip(buckets) {
        if bucket.is_empty() {
            continue;
        }
        let queries = bucket.len();
        let total: Duration = bucket.iter().sum();
        bucket.sort_unstable();
        out[mode.index()] = Some(ModeLatency {
            mode,
            queries,
            mean_latency: total / queries as u32,
            p50_latency: percentile(&bucket, 0.50),
            p95_latency: percentile(&bucket, 0.95),
            max_latency: *bucket.last().expect("non-empty bucket"),
        });
    }
    out
}

/// Aggregates the speculation lifecycle counters of a batch's outcomes.
/// Only Spec-QP jobs count as speculative runs (TriniT/naive never
/// speculate). `jobs[i]` must correspond to `outcomes[i]`.
pub fn speculation_totals(jobs: &[QueryJob], outcomes: &[QueryOutcome]) -> SpeculationTotals {
    debug_assert_eq!(jobs.len(), outcomes.len());
    let mut totals = SpeculationTotals::default();
    for (job, outcome) in jobs.iter().zip(outcomes) {
        if job.mode != ExecMode::SpecQp {
            continue;
        }
        let r = &outcome.report;
        totals.speculative_runs += 1;
        totals.mis_speculations += u64::from(r.mis_speculated);
        totals.fallback_runs += u64::from(r.fallback_stages > 0);
        totals.fallback_stages += r.fallback_stages;
        totals.wasted_answers += r.wasted_answers;
        totals.verify += r.verify;
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;
    use relax::{Position, TermRule};
    use sparql::parse_query;

    fn setup() -> (Arc<KnowledgeGraph>, Arc<RelaxationRegistry>) {
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..40 {
            b.add(&format!("e{i}"), "type", "big", 100.0 / (i + 1) as f64);
        }
        for i in 0..3 {
            b.add(&format!("e{i}"), "type", "small", 10.0 / (i + 1) as f64);
        }
        for i in 0..20 {
            b.add(&format!("e{i}"), "type", "backup", 60.0 / (i + 1) as f64);
        }
        let g = b.build();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::with_context(
            Position::Object,
            d.lookup("small").unwrap(),
            d.lookup("backup").unwrap(),
            0.9,
            ty,
        ));
        (Arc::new(g), Arc::new(reg))
    }

    #[test]
    fn service_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryService>();
        assert_send_sync::<BoundedQueue<usize>>();
    }

    #[test]
    fn batch_outcomes_in_submission_order() {
        let (g, reg) = setup();
        let service = QueryService::new(g.clone(), reg, ServiceConfig::with_threads(3));
        let big = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let small = parse_query("SELECT ?s WHERE { ?s <type> <small> }", g.dictionary()).unwrap();
        // Alternate shapes so slot order is observable.
        let jobs: Vec<QueryJob> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    QueryJob::specqp(big.clone(), 5)
                } else {
                    QueryJob::specqp(small.clone(), 2)
                }
            })
            .collect();
        let report = service.run_batch(&jobs);
        assert_eq!(report.outcomes.len(), 10);
        for (i, o) in report.outcomes.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(o.answers.len(), 5, "slot {i} must hold the big query");
            } else {
                assert!(o.answers.len() >= 2, "slot {i} must hold the small query");
            }
        }
        assert_eq!(report.stats.queries, 10);
        assert!(report.stats.queries_per_sec > 0.0);
        assert!(report.stats.mean_latency <= report.stats.max_latency);
        let c = report.stats.cache;
        assert_eq!(c.hits + c.misses, c.lookups);
        // Two distinct shapes; plan() is lookup→plangen→insert without
        // atomicity, so each shape can miss up to once per concurrently
        // racing worker (3 threads) before the first insert lands.
        assert!(
            (2..=6).contains(&c.misses),
            "misses {} outside [2, shapes × threads]",
            c.misses
        );
        assert!(c.hit_rate > 0.0);
    }

    /// Regression: a panicking job must not deadlock the driver (which
    /// previously could block forever pushing into a full queue whose only
    /// consumers had died). The batch drains, then re-panics with the job
    /// index.
    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let (g, reg) = setup();
        let service = QueryService::new(g.clone(), reg, ServiceConfig::with_threads(1));
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let mut jobs: Vec<QueryJob> = (0..10).map(|_| QueryJob::specqp(q.clone(), 5)).collect();
        // k = 0 trips plan_query's `k >= 1` assertion inside the worker.
        jobs[0].k = 0;
        // 10 jobs > queue_depth 4: with a dead worker the old code hung here.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| service.run_batch(&jobs)));
        let payload = result.expect_err("batch with a panicking job must panic");
        let msg = panic_message(payload.as_ref());
        assert!(
            msg.contains("query job 0 panicked"),
            "panic names the job: {msg}"
        );
    }

    #[test]
    fn from_snapshot_answers_like_builder_path() {
        let (g, reg) = setup();
        let path = std::env::temp_dir().join(format!(
            "specqp_service_snapshot_{}.snap",
            std::process::id()
        ));
        kgstore::snapshot::save_snapshot(&g, &path).unwrap();
        let q = parse_query("SELECT ?s WHERE { ?s <type> <small> }", g.dictionary()).unwrap();
        let jobs = vec![QueryJob::specqp(q, 5)];

        let direct = QueryService::new(g.clone(), reg.clone(), ServiceConfig::with_threads(2));
        let booted =
            QueryService::from_snapshot(&path, reg, ServiceConfig::with_threads(2)).unwrap();
        let a = direct.run_batch(&jobs);
        let b = booted.run_batch(&jobs);
        assert_eq!(a.outcomes[0].answers.len(), b.outcomes[0].answers.len());
        for (x, y) in a.outcomes[0].answers.iter().zip(&b.outcomes[0].answers) {
            assert_eq!(x.score, y.score);
            assert_eq!(x.binding, y.binding);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_snapshot_missing_file_is_typed_error() {
        let (_, reg) = setup();
        let e = QueryService::from_snapshot(
            "/nonexistent/specqp_service.snap",
            reg,
            ServiceConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                specqp_common::Error::Snapshot(specqp_common::SnapshotError::Io(_))
            ),
            "{e:?}"
        );
    }

    /// Pins the nearest-rank definition on a hand-built sample: for
    /// `n = 20` with values `1..=20` ms, p50 is the 10th value (10 ms, not
    /// the 11th — the off-by-one the old `round((n−1)·q)` formula produced),
    /// p95 the 19th and p99 the 20th.
    #[test]
    fn percentiles_use_nearest_rank() {
        let ms = Duration::from_millis;
        let sample: Vec<Duration> = (1..=20).map(ms).collect();
        assert_eq!(percentile(&sample, 0.50), ms(10));
        assert_eq!(percentile(&sample, 0.95), ms(19));
        assert_eq!(percentile(&sample, 0.99), ms(20));
        assert_eq!(percentile(&sample, 1.0), ms(20));
        assert_eq!(percentile(&sample, 0.0), ms(1));
        // Odd-sized sample: p50 is the true middle element.
        let odd: Vec<Duration> = (1..=5).map(ms).collect();
        assert_eq!(percentile(&odd, 0.50), ms(3));
    }

    #[test]
    fn percentiles_single_sample_and_duplicates() {
        let ms = Duration::from_millis;
        // n = 1: every percentile is the one sample.
        let one = vec![ms(7)];
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&one, q), ms(7), "q={q}");
        }
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        // Duplicate values: ties collapse to the same answer at every rank.
        let dup = vec![ms(5); 10];
        assert_eq!(percentile(&dup, 0.5), ms(5));
        assert_eq!(percentile(&dup, 0.99), ms(5));
        // Mixed duplicates: 9×1ms + 1×100ms — p50 sits in the duplicate
        // mass, p95/p99 pick the outlier.
        let mut mixed: Vec<Duration> = vec![ms(1); 9];
        mixed.push(ms(100));
        assert_eq!(percentile(&mixed, 0.50), ms(1));
        assert_eq!(percentile(&mixed, 0.95), ms(100));
        assert_eq!(percentile(&mixed, 0.99), ms(100));
    }

    #[test]
    fn batch_stats_aggregates_hand_built_sample() {
        let ms = Duration::from_millis;
        let latencies: Vec<Duration> = (1..=4).map(ms).collect();
        let stats = batch_stats(&latencies, ms(10), 2, CacheSnapshot::default());
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.mean_latency, Duration::from_micros(2500));
        assert_eq!(stats.p50_latency, ms(2));
        assert_eq!(stats.p95_latency, ms(4));
        assert_eq!(stats.p99_latency, ms(4));
        assert_eq!(stats.max_latency, ms(4));
        assert!((stats.queries_per_sec - 400.0).abs() < 1e-9);
        // Ordering invariants.
        assert!(stats.p50_latency <= stats.p95_latency);
        assert!(stats.p95_latency <= stats.p99_latency);
        assert!(stats.p99_latency <= stats.max_latency);
    }

    /// Config plumb-through: a service built with a block-execution engine
    /// config answers exactly like the row-mode service.
    #[test]
    fn block_execution_service_matches_row_service() {
        use operators::ExecutionMode;
        use specqp::EngineConfig;
        let (g, reg) = setup();
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let jobs: Vec<QueryJob> = vec![
            QueryJob::specqp(q.clone(), 10),
            QueryJob::trinit(q.clone(), 5),
            QueryJob::naive(q, 5),
        ];
        let mk = |mode: ExecutionMode| {
            let mut cfg = ServiceConfig::with_threads(2);
            cfg.engine = EngineConfig::default().with_execution(mode);
            QueryService::new(g.clone(), reg.clone(), cfg)
        };
        let row = mk(ExecutionMode::RowAtATime).run_batch(&jobs);
        for size in [1, 64] {
            let block = mk(ExecutionMode::Block(size)).run_batch(&jobs);
            for (a, b) in row.outcomes.iter().zip(&block.outcomes) {
                assert_eq!(a.answers, b.answers, "size {size}");
            }
        }
    }

    #[test]
    fn mode_breakdown_splits_latencies_by_mode() {
        let ms = Duration::from_millis;
        let (g, _) = setup();
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let jobs = vec![
            QueryJob::specqp(q.clone(), 5),
            QueryJob::trinit(q.clone(), 5),
            QueryJob::specqp(q.clone(), 5),
            QueryJob::specqp(q, 5),
        ];
        let latencies = vec![ms(10), ms(100), ms(20), ms(30)];
        let per_mode = mode_breakdown(&jobs, &latencies);
        let spec = per_mode[ExecMode::SpecQp.index()].expect("specqp present");
        assert_eq!(spec.queries, 3);
        assert_eq!(spec.mean_latency, ms(20));
        assert_eq!(spec.p50_latency, ms(20));
        assert_eq!(spec.max_latency, ms(30));
        let trinit = per_mode[ExecMode::TriniT.index()].expect("trinit present");
        assert_eq!(trinit.queries, 1);
        assert_eq!(trinit.mean_latency, ms(100));
        assert!(per_mode[ExecMode::Naive.index()].is_none(), "no naive jobs");
        assert_eq!(ExecMode::SpecQp.label(), "specqp");
    }

    #[test]
    fn speculation_totals_aggregate_specqp_reports_only() {
        let (g, _) = setup();
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let jobs = vec![QueryJob::specqp(q.clone(), 5), QueryJob::trinit(q, 5)];
        let mk = |stages: u64, wasted: u64, mis: bool| specqp::QueryOutcome {
            answers: Vec::new(),
            plan: specqp::QueryPlan::all_relaxed(1),
            report: specqp::RunReport {
                fallback_stages: stages,
                wasted_answers: wasted,
                mis_speculated: mis,
                verify: Duration::from_micros(7),
                ..Default::default()
            },
        };
        // The trinit outcome's counters must be ignored even if set.
        let totals = speculation_totals(&jobs, &[mk(2, 40, true), mk(9, 99, true)]);
        assert_eq!(totals.speculative_runs, 1);
        assert_eq!(totals.mis_speculations, 1);
        assert_eq!(totals.fallback_runs, 1);
        assert_eq!(totals.fallback_stages, 2);
        assert_eq!(totals.wasted_answers, 40);
        assert_eq!(totals.verify, Duration::from_micros(7));
        assert!((totals.mis_speculation_rate() - 1.0).abs() < 1e-12);
        assert!((totals.fallback_rate() - 1.0).abs() < 1e-12);
        assert_eq!(SpeculationTotals::default().mis_speculation_rate(), 0.0);
    }

    /// End-to-end: a ForceFinal-policy service reports one fallback stage
    /// per Spec-QP job in `BatchStats::speculation`, with the per-mode
    /// breakdown covering every submitted mode.
    #[test]
    fn batch_report_surfaces_fallback_counters() {
        use specqp::{EngineConfig, SpeculationPolicy};
        let (g, reg) = setup();
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let mut cfg = ServiceConfig::with_threads(2);
        cfg.engine = EngineConfig::default().with_speculation(SpeculationPolicy::ForceFinal);
        let service = QueryService::new(g.clone(), reg, cfg);
        let jobs = vec![
            QueryJob::specqp(q.clone(), 10),
            QueryJob::specqp(q.clone(), 10),
            QueryJob::trinit(q, 10),
        ];
        let report = service.run_batch(&jobs);
        let s = report.stats.speculation;
        assert_eq!(s.speculative_runs, 2);
        assert_eq!(s.fallback_stages, 2, "one forced stage per specqp job");
        assert_eq!(s.fallback_runs, 2);
        assert!((s.fallback_rate() - 1.0).abs() < 1e-12);
        assert!(report.stats.per_mode[ExecMode::SpecQp.index()].is_some());
        assert!(report.stats.per_mode[ExecMode::TriniT.index()].is_some());
        assert!(report.stats.per_mode[ExecMode::Naive.index()].is_none());
        // Forced-final Spec-QP answers equal the TriniT job's answers.
        assert_eq!(report.outcomes[0].answers, report.outcomes[2].answers);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (g, reg) = setup();
        let service = QueryService::new(g, reg, ServiceConfig::with_threads(2));
        let report = service.run_batch(&[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.stats.queries, 0);
        assert_eq!(report.stats.mean_latency, Duration::ZERO);
    }

    #[test]
    fn single_thread_service_works() {
        let (g, reg) = setup();
        let service = QueryService::new(g.clone(), reg, ServiceConfig::with_threads(1));
        let q = parse_query("SELECT ?s WHERE { ?s <type> <small> }", g.dictionary()).unwrap();
        let report = service.run_batch(&[QueryJob::trinit(q, 5)]);
        assert_eq!(report.outcomes.len(), 1);
        assert!(!report.outcomes[0].answers.is_empty());
    }
}
