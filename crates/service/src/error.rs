//! The unified error vocabulary of the submit path.
//!
//! Before the per-request API existed, the service signalled failure with a
//! mix of `bool` returns, `Err(item)` hand-backs and outright panics. Every
//! way a request can now fail to produce answers is one [`ServiceError`]
//! variant, so the wire front-end can map each to a protocol error code and
//! callers can match on the exact cause instead of parsing messages.

use std::fmt;
use std::time::Duration;

/// Why the service refused, shed or failed a request.
///
/// `QueueFull` and `DeadlineExceeded` are *load conditions*, not bugs: a
/// correctly-sized client backs off (`retry_after`) or re-issues with a
/// looser deadline. `ShuttingDown` is terminal for the service instance.
/// `Protocol` marks requests that were malformed before they ever reached
/// the execution queue. `Panicked` wraps a worker panic so one poisoned
/// query cannot take down the serving process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control refused the request: the bounded execution queue
    /// was full. `retry_after` is the service's estimate of when a retry is
    /// likely to be admitted (derived from queue depth and the observed
    /// mean service time) — the explicit alternative to unbounded queueing.
    QueueFull {
        /// Suggested client back-off before retrying.
        retry_after: Duration,
    },
    /// The request's deadline expired while it waited in the queue; it was
    /// shed *before execution* (counted, never run).
    DeadlineExceeded,
    /// The service is draining and accepts no new work. Requests admitted
    /// before shutdown still complete (see the queue's drain-on-close
    /// contract).
    ShuttingDown,
    /// The request was malformed: an unparseable query, a bad wire frame,
    /// an unknown mode byte, a zero `k`. The payload is a human-readable
    /// description.
    Protocol(String),
    /// Execution of the query panicked; the worker caught it and the pool
    /// keeps serving. The payload is the rendered panic message.
    Panicked(String),
    /// A write was submitted to a service whose engine serves an immutable
    /// graph (built without [`crate::QueryService::live`]). Writes need a
    /// live graph; re-deploy the service over one.
    ReadOnly,
}

impl ServiceError {
    /// The back-off hint carried by [`ServiceError::QueueFull`], if any.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ServiceError::QueueFull { retry_after } => Some(*retry_after),
            _ => None,
        }
    }

    /// `true` for load conditions a client should simply retry later
    /// (`QueueFull`), as opposed to errors that need a changed request.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServiceError::QueueFull { .. })
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { retry_after } => {
                write!(f, "queue full; retry after {retry_after:?}")
            }
            ServiceError::DeadlineExceeded => write!(f, "deadline expired while queued"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServiceError::Panicked(msg) => write!(f, "query execution panicked: {msg}"),
            ServiceError::ReadOnly => write!(f, "service graph is read-only"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_only_on_queue_full() {
        let e = ServiceError::QueueFull {
            retry_after: Duration::from_millis(7),
        };
        assert_eq!(e.retry_after(), Some(Duration::from_millis(7)));
        assert!(e.is_retryable());
        for e in [
            ServiceError::DeadlineExceeded,
            ServiceError::ShuttingDown,
            ServiceError::Protocol("bad frame".into()),
            ServiceError::Panicked("boom".into()),
            ServiceError::ReadOnly,
        ] {
            assert_eq!(e.retry_after(), None);
            assert!(!e.is_retryable());
        }
    }

    #[test]
    fn display_names_the_cause() {
        let e = ServiceError::QueueFull {
            retry_after: Duration::from_millis(3),
        };
        assert!(e.to_string().contains("retry after"));
        assert!(ServiceError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(ServiceError::Protocol("x".into())
            .to_string()
            .contains("protocol"));
    }
}
