//! A bounded multi-producer / multi-consumer job queue on std primitives.
//!
//! The build environment is dependency-free, so instead of a lock-free
//! channel this is the classic two-condvar bounded buffer: `push` blocks
//! while the queue is full, `pop` blocks while it is empty, and `close`
//! wakes everyone so consumers drain the backlog and then observe `None`.
//! Throughput is bounded by query execution cost (milliseconds), not queue
//! transfer cost (nanoseconds), so a mutex-guarded `VecDeque` is the right
//! complexity trade-off here.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue safe to share (by reference or `Arc`) between any
/// number of producer and consumer threads.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.state.lock().expect("queue poisoned").items.is_empty()
    }

    /// Blocks until there is room, then enqueues `item`. Returns `Err(item)`
    /// if the queue was closed in the meantime.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and dequeues it. Returns `None`
    /// once the queue is closed *and* drained — the consumer shutdown
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: future `push`es fail, and `pop` returns `None`
    /// after the backlog drains.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_none() {
        let q = BoundedQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(7), "backlog drains after close");
        assert_eq!(q.pop(), None);
        assert_eq!(q.push(8), Err(8), "push after close fails");
    }

    #[test]
    fn push_blocks_until_pop_frees_a_slot() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is blocked on the full queue; free a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn mpmc_transfers_every_item_once() {
        let q = Arc::new(BoundedQueue::new(8));
        const ITEMS: usize = 2_000;
        const CONSUMERS: usize = 4;
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..ITEMS / 2 {
                        q.push(p * (ITEMS / 2) + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
    }
}
