//! A bounded multi-producer / multi-consumer job queue on std primitives.
//!
//! The build environment is dependency-free, so instead of a lock-free
//! channel this is the classic two-condvar bounded buffer: `push` blocks
//! while the queue is full, `pop` blocks while it is empty, and `close`
//! wakes everyone so consumers drain the backlog and then observe `None`.
//! Throughput is bounded by query execution cost (milliseconds), not queue
//! transfer cost (nanoseconds), so a mutex-guarded `VecDeque` is the right
//! complexity trade-off here.
//!
//! Producers that must not block — an admission-control front-end shedding
//! load instead of queueing unboundedly — use [`BoundedQueue::try_push`]
//! (fail immediately when full) or [`BoundedQueue::push_timeout`] (bounded
//! wait, then fail).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a non-blocking (or bounded-wait) push was refused. The rejected item
/// is handed back so the producer can retry, reroute or drop it explicitly.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue held `capacity` items for the whole attempt window.
    Full(T),
    /// The queue was closed; it will never accept items again.
    Closed(T),
}

impl<T> TryPushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            TryPushError::Full(item) | TryPushError::Closed(item) => item,
        }
    }
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue safe to share (by reference or `Arc`) between any
/// number of producer and consumer threads.
///
/// # Drain-on-close contract
///
/// [`close`](BoundedQueue::close) is a *graceful* shutdown signal, not an
/// abort: items already queued at close time stay queued and are handed out
/// by [`pop`](BoundedQueue::pop) in FIFO order before consumers observe
/// `None`. Only *new* pushes are refused after close. A service draining
/// in-flight requests on shutdown therefore needs no extra machinery — close
/// the queue, join the consumers, and every accepted item has been
/// processed. Nothing queued is ever silently dropped; the only way an item
/// dies unprocessed is a consumer dropping it after `pop` returns it.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.state.lock().expect("queue poisoned").items.is_empty()
    }

    /// `true` once [`close`](BoundedQueue::close) has been called — new
    /// pushes are refused, queued items still drain.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }

    /// Blocks until there is room, then enqueues `item`. Returns `Err(item)`
    /// if the queue was closed in the meantime.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking push: enqueues `item` only if a slot is free right now.
    ///
    /// This is the admission-control primitive: a front-end that must bound
    /// latency calls `try_push` and converts [`TryPushError::Full`] into an
    /// explicit reject-with-retry-after instead of queueing unboundedly.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Bounded-wait push: like [`push`](BoundedQueue::push) but gives up
    /// with [`TryPushError::Full`] if no slot frees within `timeout`.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), TryPushError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("queue poisoned");
        while state.items.len() >= self.capacity && !state.closed {
            let now = Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(TryPushError::Full(item));
            };
            let (next, timed_out) = self
                .not_full
                .wait_timeout(state, left)
                .expect("queue poisoned");
            state = next;
            if timed_out.timed_out() && state.items.len() >= self.capacity && !state.closed {
                return Err(TryPushError::Full(item));
            }
        }
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and dequeues it. Returns `None`
    /// once the queue is closed *and* drained — the consumer shutdown
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes (blocking or not) fail, and `pop`
    /// returns `None` once the backlog drains — see the type-level
    /// *drain-on-close contract*.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_none() {
        let q = BoundedQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(7), "backlog drains after close");
        assert_eq!(q.pop(), None);
        assert_eq!(q.push(8), Err(8), "push after close fails");
    }

    #[test]
    fn push_blocks_until_pop_frees_a_slot() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is blocked on the full queue; free a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn try_push_never_blocks() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        // Full: rejected immediately, item handed back.
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()), "freed slot accepts again");
        q.close();
        assert_eq!(q.try_push(4), Err(TryPushError::Closed(4)));
        assert_eq!(TryPushError::Full(7).into_inner(), 7);
    }

    #[test]
    fn push_timeout_expires_on_persistent_fullness() {
        let q = BoundedQueue::new(1);
        q.push(0).unwrap();
        let t0 = std::time::Instant::now();
        let r = q.push_timeout(1, std::time::Duration::from_millis(30));
        assert_eq!(r, Err(TryPushError::Full(1)));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(30));
    }

    #[test]
    fn push_timeout_succeeds_when_a_slot_frees() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(15));
                q.pop()
            })
        };
        assert_eq!(q.push_timeout(1, std::time::Duration::from_secs(5)), Ok(()));
        assert_eq!(consumer.join().unwrap(), Some(0));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn push_timeout_observes_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let closer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(15));
                q.close();
            })
        };
        let r = q.push_timeout(1, std::time::Duration::from_secs(5));
        assert_eq!(r, Err(TryPushError::Closed(1)));
        closer.join().unwrap();
        // Drain-on-close: the backlog item is still delivered.
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn mpmc_transfers_every_item_once() {
        let q = Arc::new(BoundedQueue::new(8));
        const ITEMS: usize = 2_000;
        const CONSUMERS: usize = 4;
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..ITEMS / 2 {
                        q.push(p * (ITEMS / 2) + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
    }
}
