//! Triple-pattern query model and SPARQL-subset parser.
//!
//! The paper's queries (Def. 3) are *triple pattern queries*: sets of
//! 〈S,P,O〉 patterns whose components are either constants from the KG or
//! shared variables, e.g.
//!
//! ```sparql
//! SELECT ?s WHERE {
//!   ?s 'rdf:type' <singer> .
//!   ?s 'rdf:type' <lyricist> .
//!   ?s 'rdf:type' <guitarist> .
//!   ?s 'rdf:type' <pianist>
//! }
//! ```
//!
//! This crate provides:
//! * [`Term`], [`Var`], [`TriplePattern`] — the pattern algebra,
//! * [`Query`] / [`QueryBuilder`] — validated multi-pattern queries with a
//!   projection,
//! * [`parse_query`] — a parser for the SPARQL subset above (the paper's
//!   surface syntax: `?var`, `<iri>`, `'literal'`),
//! * rendering of queries back to text via [`Query::display`].

pub mod parser;
pub mod pattern;
pub mod query;
pub mod term;

pub use parser::{parse_query, parse_query_interning};
pub use pattern::{PatternShape, StatsKey, TriplePattern};
pub use query::{Query, QueryBuilder};
pub use term::{Term, Var};

pub use specqp_common::{Dictionary, TermId};
