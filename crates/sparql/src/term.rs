//! Terms of a triple pattern: constants and variables.

use specqp_common::TermId;
use std::fmt;

/// A query variable, identified by its index within the owning [`Query`]'s
/// variable table (`?s` in surface syntax).
///
/// [`Query`]: crate::Query
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Index into the query's variable-name table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?v{}", self.0)
    }
}

/// One component of a triple pattern: either a dictionary constant or a
/// variable (Def. 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A constant (entity / predicate / literal) from the KG dictionary.
    Const(TermId),
    /// A variable to be bound by matching.
    Var(Var),
}

impl Term {
    /// The constant id, if this term is a constant.
    #[inline]
    pub fn as_const(self) -> Option<TermId> {
        match self {
            Term::Const(id) => Some(id),
            Term::Var(_) => None,
        }
    }

    /// The variable, if this term is a variable.
    #[inline]
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// `true` for variables.
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl From<TermId> for Term {
    fn from(id: TermId) -> Self {
        Term::Const(id)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Term::Const(TermId(3));
        let v = Term::Var(Var(0));
        assert_eq!(c.as_const(), Some(TermId(3)));
        assert_eq!(c.as_var(), None);
        assert_eq!(v.as_var(), Some(Var(0)));
        assert_eq!(v.as_const(), None);
        assert!(v.is_var());
        assert!(!c.is_var());
    }

    #[test]
    fn conversions() {
        assert_eq!(Term::from(TermId(1)), Term::Const(TermId(1)));
        assert_eq!(Term::from(Var(2)), Term::Var(Var(2)));
    }
}
