//! Triple-pattern queries (Def. 3) with projections and validation.

use crate::pattern::TriplePattern;
use crate::term::{Term, Var};
#[cfg(test)]
use specqp_common::TermId;
use specqp_common::{Dictionary, Error, Result};
use std::fmt;

/// A validated triple-pattern query: a list of patterns, a variable-name
/// table and a projection.
///
/// Patterns keep their textual order; the planner refers to them by index.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    patterns: Vec<TriplePattern>,
    var_names: Vec<String>,
    projection: Vec<Var>,
}

impl Query {
    /// The patterns in query order.
    pub fn patterns(&self) -> &[TriplePattern] {
        &self.patterns
    }

    /// Number of triple patterns (`#TP` in the paper's tables).
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` if the query has no patterns (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The projected variables, in `SELECT` order.
    pub fn projection(&self) -> &[Var] {
        &self.projection
    }

    /// Total number of distinct variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Name of a variable (without the leading `?`).
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// Looks up a variable by name (without the `?`).
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    /// Replaces the pattern at `idx`, returning the new query
    /// (used to build relaxed queries, Def. 8). Variables must be a subset
    /// of the existing variable table.
    pub fn with_pattern_replaced(&self, idx: usize, p: TriplePattern) -> Query {
        let mut q = self.clone();
        q.patterns[idx] = p;
        q
    }

    /// `true` if every pattern is transitively connected to the first via
    /// shared variables — i.e. the join graph has a single component.
    pub fn is_connected(&self) -> bool {
        if self.patterns.len() <= 1 {
            return true;
        }
        let n = self.patterns.len();
        let mut reached = vec![false; n];
        reached[0] = true;
        let mut frontier = vec![0usize];
        while let Some(i) = frontier.pop() {
            for (j, r) in reached.iter_mut().enumerate() {
                if !*r && self.patterns[i].shares_var(&self.patterns[j]) {
                    *r = true;
                    frontier.push(j);
                }
            }
        }
        reached.into_iter().all(|r| r)
    }

    /// Renders the query as SPARQL-subset text, resolving constants through
    /// `dict`.
    pub fn display<'a>(&'a self, dict: &'a Dictionary) -> QueryDisplay<'a> {
        QueryDisplay { query: self, dict }
    }
}

/// Helper implementing `Display` for [`Query::display`].
pub struct QueryDisplay<'a> {
    query: &'a Query,
    dict: &'a Dictionary,
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = self.query;
        write!(f, "SELECT")?;
        for v in &q.projection {
            write!(f, " ?{}", q.var_name(*v))?;
        }
        writeln!(f, " WHERE {{")?;
        let term = |t: Term| -> String {
            match t {
                Term::Var(v) => format!("?{}", q.var_name(v)),
                Term::Const(id) => format!("<{}>", self.dict.name_or_unknown(id)),
            }
        };
        for (i, p) in q.patterns.iter().enumerate() {
            let sep = if i + 1 == q.patterns.len() { "" } else { " ." };
            writeln!(f, "  {} {} {}{}", term(p.s), term(p.p), term(p.o), sep)?;
        }
        write!(f, "}}")
    }
}

/// Incremental construction of [`Query`] values.
///
/// ```
/// use sparql::QueryBuilder;
/// use specqp_common::TermId;
///
/// let mut b = QueryBuilder::new();
/// let s = b.var("s");
/// b.pattern(s, TermId(0), TermId(1));
/// b.pattern(s, TermId(0), TermId(2));
/// b.project(s);
/// let q = b.build().unwrap();
/// assert_eq!(q.len(), 2);
/// ```
#[derive(Default, Debug)]
pub struct QueryBuilder {
    patterns: Vec<TriplePattern>,
    var_names: Vec<String>,
    projection: Vec<Var>,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a variable name, returning its [`Var`].
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(i) = self.var_names.iter().position(|n| n == name) {
            return Var(i as u32);
        }
        let v = Var(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        v
    }

    /// Adds a triple pattern.
    pub fn pattern(
        &mut self,
        s: impl Into<Term>,
        p: impl Into<Term>,
        o: impl Into<Term>,
    ) -> &mut Self {
        self.patterns.push(TriplePattern::new(s, p, o));
        self
    }

    /// Adds an already-built pattern.
    pub fn add(&mut self, p: TriplePattern) -> &mut Self {
        self.patterns.push(p);
        self
    }

    /// Appends a variable to the projection.
    pub fn project(&mut self, v: Var) -> &mut Self {
        if !self.projection.contains(&v) {
            self.projection.push(v);
        }
        self
    }

    /// Validates and builds the query.
    ///
    /// Rules enforced:
    /// * at least one pattern,
    /// * every pattern variable is in the variable table (guaranteed by
    ///   construction through [`var`](Self::var)),
    /// * every projected variable occurs in some pattern,
    /// * an empty projection defaults to *all* variables in first-seen order.
    pub fn build(mut self) -> Result<Query> {
        if self.patterns.is_empty() {
            return Err(Error::InvalidQuery("query has no triple patterns".into()));
        }
        for p in &self.patterns {
            for v in p.vars() {
                if v.index() >= self.var_names.len() {
                    return Err(Error::InvalidQuery(format!(
                        "pattern references unknown variable {v:?}"
                    )));
                }
            }
        }
        if self.projection.is_empty() {
            // SELECT * — project every variable mentioned by any pattern.
            let mut seen = Vec::new();
            for p in &self.patterns {
                for v in p.vars() {
                    if !seen.contains(&v) {
                        seen.push(v);
                    }
                }
            }
            self.projection = seen;
        }
        if self.projection.is_empty() {
            return Err(Error::InvalidQuery(
                "query has no variables to project".into(),
            ));
        }
        for v in &self.projection {
            if !self.patterns.iter().any(|p| p.mentions(*v)) {
                return Err(Error::InvalidQuery(format!(
                    "projected variable ?{} does not occur in any pattern",
                    self.var_names
                        .get(v.index())
                        .map(String::as_str)
                        .unwrap_or("<bad>")
                )));
            }
        }
        Ok(Query {
            patterns: self.patterns,
            var_names: self.var_names,
            projection: self.projection,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pattern_query() -> Query {
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        b.pattern(s, TermId(0), TermId(1));
        b.pattern(s, TermId(0), TermId(2));
        b.project(s);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_query() {
        let q = two_pattern_query();
        assert_eq!(q.len(), 2);
        assert_eq!(q.projection(), &[Var(0)]);
        assert_eq!(q.var_name(Var(0)), "s");
        assert_eq!(q.var_by_name("s"), Some(Var(0)));
        assert_eq!(q.var_by_name("zzz"), None);
    }

    #[test]
    fn empty_query_rejected() {
        assert!(QueryBuilder::new().build().is_err());
    }

    #[test]
    fn all_const_query_rejected() {
        let mut b = QueryBuilder::new();
        b.pattern(TermId(0), TermId(1), TermId(2));
        assert!(matches!(b.build(), Err(Error::InvalidQuery(_))));
    }

    #[test]
    fn projection_defaults_to_all_vars() {
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        let o = b.var("o");
        b.pattern(s, TermId(0), o);
        let q = b.build().unwrap();
        assert_eq!(q.projection(), &[Var(0), Var(1)]);
        let _ = (s, o);
    }

    #[test]
    fn unused_projected_var_rejected() {
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        let ghost = b.var("ghost");
        b.pattern(s, TermId(0), TermId(1));
        b.project(ghost);
        assert!(b.build().is_err());
    }

    #[test]
    fn connectivity() {
        let q = two_pattern_query();
        assert!(q.is_connected());

        let mut b = QueryBuilder::new();
        let s = b.var("s");
        let t = b.var("t");
        b.pattern(s, TermId(0), TermId(1));
        b.pattern(t, TermId(0), TermId(2));
        let q = b.build().unwrap();
        assert!(!q.is_connected());
    }

    #[test]
    fn pattern_replacement_preserves_rest() {
        let q = two_pattern_query();
        let newp = TriplePattern::new(Var(0), TermId(0), TermId(9));
        let q2 = q.with_pattern_replaced(1, newp);
        assert_eq!(q2.patterns()[0], q.patterns()[0]);
        assert_eq!(q2.patterns()[1], newp);
        assert_eq!(q.patterns()[1].o.as_const(), Some(TermId(2)));
    }

    #[test]
    fn display_roundtrips_structure() {
        let mut d = Dictionary::new();
        let ty = d.intern("rdf:type");
        let singer = d.intern("singer");
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        b.pattern(s, ty, singer);
        b.project(s);
        let q = b.build().unwrap();
        let text = q.display(&d).to_string();
        assert!(text.contains("SELECT ?s WHERE {"));
        assert!(text.contains("?s <rdf:type> <singer>"));
    }
}
