//! Parser for the SPARQL subset used by the paper.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query    := SELECT projection WHERE '{' patterns '}'
//! projection := '*' | var+
//! patterns := pattern ( '.' pattern )* '.'?
//! pattern  := term term term
//! term     := var | '<' name '>' | "'" name "'" | '"' name '"'
//! var      := '?' name
//! ```
//!
//! Constants are resolved against a [`Dictionary`]. [`parse_query`] uses
//! lookup-only resolution and reports unknown terms (queries over a fixed
//! KG); [`parse_query_interning`] interns unseen constants instead, which is
//! convenient when building a KG and workload together.

use crate::query::{Query, QueryBuilder};
use crate::term::Term;
use specqp_common::{Dictionary, Error, Result};

/// Parses `text`, resolving constants with `dict` (lookup only — unknown
/// constants yield [`Error::UnknownTerm`]).
pub fn parse_query(text: &str, dict: &Dictionary) -> Result<Query> {
    let mut resolver = |name: &str| dict.lookup(name);
    parse_with(text, &mut resolver)
}

/// Parses `text`, interning unknown constants into `dict`.
pub fn parse_query_interning(text: &str, dict: &mut Dictionary) -> Result<Query> {
    let mut resolver = |name: &str| Some(dict.intern(name));
    parse_with(text, &mut resolver)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Keyword(String), // SELECT / WHERE (uppercased)
    Var(String),     // ?name
    Const(String),   // <iri> or 'literal' or "literal"
    Star,
    LBrace,
    RBrace,
    Dot,
}

fn tokenize(text: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '{' => {
                chars.next();
                toks.push(Tok::LBrace);
            }
            '}' => {
                chars.next();
                toks.push(Tok::RBrace);
            }
            '.' => {
                chars.next();
                toks.push(Tok::Dot);
            }
            '*' => {
                chars.next();
                toks.push(Tok::Star);
            }
            '?' => {
                chars.next();
                let name = take_name(&mut chars);
                if name.is_empty() {
                    return Err(Error::Parse(format!("empty variable name at byte {i}")));
                }
                toks.push(Tok::Var(name));
            }
            '<' => {
                chars.next();
                let mut name = String::new();
                let mut closed = false;
                for (_, c) in chars.by_ref() {
                    if c == '>' {
                        closed = true;
                        break;
                    }
                    name.push(c);
                }
                if !closed {
                    return Err(Error::Parse(format!("unclosed '<' at byte {i}")));
                }
                toks.push(Tok::Const(name));
            }
            '\'' | '"' => {
                let quote = c;
                chars.next();
                let mut name = String::new();
                let mut closed = false;
                for (_, c) in chars.by_ref() {
                    if c == quote {
                        closed = true;
                        break;
                    }
                    name.push(c);
                }
                if !closed {
                    return Err(Error::Parse(format!("unclosed quote at byte {i}")));
                }
                toks.push(Tok::Const(name));
            }
            c if c.is_alphanumeric() || c == '_' || c == '#' || c == ':' => {
                let word = take_name(&mut chars);
                let upper = word.to_ascii_uppercase();
                if upper == "SELECT" || upper == "WHERE" {
                    toks.push(Tok::Keyword(upper));
                } else {
                    // Bare words are accepted as constants (the paper writes
                    // predicates both quoted and bare).
                    toks.push(Tok::Const(word));
                }
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )));
            }
        }
    }
    Ok(toks)
}

fn take_name(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) -> String {
    let mut name = String::new();
    while let Some(&(_, c)) = chars.peek() {
        if c.is_alphanumeric() || c == '_' || c == '#' || c == ':' || c == '-' {
            name.push(c);
            chars.next();
        } else {
            break;
        }
    }
    name
}

fn parse_with(
    text: &str,
    resolve: &mut dyn FnMut(&str) -> Option<specqp_common::TermId>,
) -> Result<Query> {
    let toks = tokenize(text)?;
    let mut pos = 0usize;
    let expect =
        |toks: &[Tok], pos: &mut usize, what: &str, pred: &dyn Fn(&Tok) -> bool| -> Result<Tok> {
            match toks.get(*pos) {
                Some(t) if pred(t) => {
                    *pos += 1;
                    Ok(t.clone())
                }
                Some(t) => Err(Error::Parse(format!("expected {what}, found {t:?}"))),
                None => Err(Error::Parse(format!("expected {what}, found end of input"))),
            }
        };

    expect(
        &toks,
        &mut pos,
        "SELECT",
        &|t| matches!(t, Tok::Keyword(k) if k == "SELECT"),
    )?;

    let mut builder = QueryBuilder::new();
    let mut projected: Vec<String> = Vec::new();
    let mut select_star = false;
    loop {
        match toks.get(pos) {
            Some(Tok::Var(name)) => {
                projected.push(name.clone());
                pos += 1;
            }
            Some(Tok::Star) => {
                select_star = true;
                pos += 1;
            }
            Some(Tok::Keyword(k)) if k == "WHERE" => break,
            Some(t) => {
                return Err(Error::Parse(format!(
                    "expected projection variable or WHERE, found {t:?}"
                )))
            }
            None => return Err(Error::Parse("expected WHERE, found end of input".into())),
        }
    }
    if !select_star && projected.is_empty() {
        return Err(Error::Parse("SELECT must name variables or '*'".into()));
    }

    expect(
        &toks,
        &mut pos,
        "WHERE",
        &|t| matches!(t, Tok::Keyword(k) if k == "WHERE"),
    )?;
    expect(&toks, &mut pos, "'{'", &|t| matches!(t, Tok::LBrace))?;

    // patterns
    let mut term_at = |builder: &mut QueryBuilder, tok: &Tok| -> Result<Term> {
        match tok {
            Tok::Var(name) => Ok(Term::Var(builder.var(name))),
            Tok::Const(name) => match resolve(name) {
                Some(id) => Ok(Term::Const(id)),
                None => Err(Error::UnknownTerm(name.clone())),
            },
            other => Err(Error::Parse(format!("expected term, found {other:?}"))),
        }
    };

    loop {
        match toks.get(pos) {
            Some(Tok::RBrace) => {
                pos += 1;
                break;
            }
            Some(_) => {
                let mut triple = [None::<Term>; 3];
                for slot in triple.iter_mut() {
                    let tok = toks
                        .get(pos)
                        .ok_or_else(|| Error::Parse("truncated triple pattern".into()))?;
                    *slot = Some(term_at(&mut builder, tok)?);
                    pos += 1;
                }
                builder.pattern(triple[0].unwrap(), triple[1].unwrap(), triple[2].unwrap());
                // Optional dot separator.
                if matches!(toks.get(pos), Some(Tok::Dot)) {
                    pos += 1;
                }
            }
            None => return Err(Error::Parse("expected '}', found end of input".into())),
        }
    }
    if pos != toks.len() {
        return Err(Error::Parse(format!(
            "trailing tokens after '}}': {:?}",
            &toks[pos..]
        )));
    }

    if !select_star {
        for name in &projected {
            let v = builder.var(name); // interns; validity checked in build()
            builder.project(v);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    fn dict_with(names: &[&str]) -> Dictionary {
        let mut d = Dictionary::new();
        for n in names {
            d.intern(n);
        }
        d
    }

    #[test]
    fn parses_paper_intro_query() {
        let d = dict_with(&["rdf:type", "singer", "lyricist", "guitarist", "pianist"]);
        let q = parse_query(
            "SELECT ?s WHERE{
                ?s 'rdf:type' <singer>.
                ?s 'rdf:type' <lyricist>.
                ?s 'rdf:type' <guitarist>.
                ?s 'rdf:type' <pianist>
            }",
            &d,
        )
        .unwrap();
        assert_eq!(q.len(), 4);
        assert_eq!(q.projection(), &[Var(0)]);
        assert!(q.is_connected());
        let ty = d.lookup("rdf:type").unwrap();
        for p in q.patterns() {
            assert_eq!(p.p.as_const(), Some(ty));
            assert!(p.s.is_var());
        }
    }

    #[test]
    fn parses_twitter_style_query() {
        let d = dict_with(&["hasTag", "#intoyouvideo", "#ariana", "dangerous"]);
        let q = parse_query(
            "SELECT ?s WHERE{
                ?s <hasTag> <#intoyouvideo>.
                ?s <hasTag> <#ariana>.
                ?s <hasTag> <dangerous>
            }",
            &d,
        )
        .unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn select_star_projects_all_vars() {
        let d = dict_with(&["p"]);
        let q = parse_query("SELECT * WHERE { ?a <p> ?b }", &d).unwrap();
        assert_eq!(q.projection().len(), 2);
    }

    #[test]
    fn multiple_projection_vars() {
        let d = dict_with(&["p", "c"]);
        let q = parse_query("SELECT ?a ?b WHERE { ?a <p> ?b . ?b <p> <c> }", &d).unwrap();
        assert_eq!(q.projection().len(), 2);
        assert_eq!(q.var_name(q.projection()[0]), "a");
    }

    #[test]
    fn unknown_term_reported() {
        let d = dict_with(&["p"]);
        let err = parse_query("SELECT ?a WHERE { ?a <p> <nope> }", &d).unwrap_err();
        assert_eq!(err, Error::UnknownTerm("nope".into()));
    }

    #[test]
    fn interning_parser_accepts_new_terms() {
        let mut d = Dictionary::new();
        let q = parse_query_interning("SELECT ?a WHERE { ?a <p> <new> }", &mut d).unwrap();
        assert_eq!(q.len(), 1);
        assert!(d.lookup("new").is_some());
    }

    #[test]
    fn double_quotes_and_bare_words() {
        let d = dict_with(&["likes", "pizza"]);
        let q = parse_query("SELECT ?x WHERE { ?x \"likes\" pizza }", &d).unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn syntax_errors() {
        let d = dict_with(&["p"]);
        assert!(matches!(
            parse_query("SELECT WHERE { ?a <p> ?b }", &d),
            Err(Error::Parse(_))
        ));
        assert!(matches!(
            parse_query("SELECT ?a WHERE { ?a <p> }", &d),
            Err(Error::Parse(_))
        ));
        assert!(matches!(
            parse_query("SELECT ?a WHERE { ?a <p ?b }", &d),
            Err(Error::Parse(_))
        ));
        assert!(matches!(
            parse_query("SELECT ?a WHERE { ?a <p> ?b } junk", &d),
            Err(Error::Parse(_))
        ));
        assert!(matches!(parse_query("", &d), Err(Error::Parse(_))));
    }

    #[test]
    fn projected_var_must_occur() {
        let d = dict_with(&["p"]);
        assert!(parse_query("SELECT ?ghost WHERE { ?a <p> ?b }", &d).is_err());
    }

    #[test]
    fn display_then_reparse_is_stable() {
        let mut d = Dictionary::new();
        let q = parse_query_interning(
            "SELECT ?s WHERE { ?s <rdf:type> <singer> . ?s <plays> <guitar> }",
            &mut d,
        )
        .unwrap();
        let text = q.display(&d).to_string();
        let q2 = parse_query(&text, &d).unwrap();
        assert_eq!(q.patterns(), q2.patterns());
        assert_eq!(q.projection(), q2.projection());
    }
}
