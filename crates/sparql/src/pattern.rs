//! Triple patterns (Def. 2) and their structural helpers.

use crate::term::{Term, Var};
use specqp_common::TermId;

/// Equality classes among the variable positions of a pattern.
///
/// Needed so that statistics computed for `?x p o` can be reused for
/// `?y p o` but not for pathological shapes like `?x p ?x` (subject must
/// equal object), whose match sets differ.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PatternShape {
    /// All variable positions are distinct variables (or there are ≤1).
    Distinct,
    /// Subject and predicate are the same variable.
    SpEqual,
    /// Subject and object are the same variable.
    SoEqual,
    /// Predicate and object are the same variable.
    PoEqual,
    /// All three positions are the same variable.
    AllEqual,
}

/// A triple pattern 〈S,P,O〉 whose components are constants or variables.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TriplePattern {
    /// Subject position.
    pub s: Term,
    /// Predicate position.
    pub p: Term,
    /// Object position.
    pub o: Term,
}

impl TriplePattern {
    /// Creates a pattern from three terms.
    pub fn new(s: impl Into<Term>, p: impl Into<Term>, o: impl Into<Term>) -> Self {
        TriplePattern {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        }
    }

    /// The constant components `(s?, p?, o?)` — `None` where a variable sits.
    /// This is what the storage layer turns into a
    /// `PatternKey`.
    pub fn const_parts(&self) -> (Option<TermId>, Option<TermId>, Option<TermId>) {
        (self.s.as_const(), self.p.as_const(), self.o.as_const())
    }

    /// Iterates the distinct variables of this pattern in s,p,o order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        let mut seen = [None::<Var>; 3];
        let mut n = 0;
        for t in [self.s, self.p, self.o] {
            if let Term::Var(v) = t {
                if !seen[..n].contains(&Some(v)) {
                    seen[n] = Some(v);
                    n += 1;
                }
            }
        }
        seen.into_iter().flatten()
    }

    /// Number of distinct variables.
    pub fn var_count(&self) -> usize {
        self.vars().count()
    }

    /// `true` if `v` occurs anywhere in the pattern.
    pub fn mentions(&self, v: Var) -> bool {
        [self.s, self.p, self.o]
            .into_iter()
            .any(|t| t.as_var() == Some(v))
    }

    /// `true` if the two patterns share at least one variable.
    pub fn shares_var(&self, other: &TriplePattern) -> bool {
        self.vars().any(|v| other.mentions(v))
    }

    /// The variables shared with `other`.
    pub fn shared_vars(&self, other: &TriplePattern) -> Vec<Var> {
        self.vars().filter(|&v| other.mentions(v)).collect()
    }

    /// The variable-equality shape (see [`PatternShape`]).
    pub fn shape(&self) -> PatternShape {
        match (self.s.as_var(), self.p.as_var(), self.o.as_var()) {
            (Some(a), Some(b), Some(c)) if a == b && b == c => PatternShape::AllEqual,
            (Some(a), Some(b), _) if a == b => PatternShape::SpEqual,
            (Some(a), _, Some(c)) if a == c => PatternShape::SoEqual,
            (_, Some(b), Some(c)) if b == c => PatternShape::PoEqual,
            _ => PatternShape::Distinct,
        }
    }

    /// A variable-name-independent identity for statistics lookup:
    /// constants plus the equality shape. Two patterns with equal keys have
    /// identical match sets in any graph.
    pub fn stats_key(&self) -> StatsKey {
        let (s, p, o) = self.const_parts();
        StatsKey {
            s,
            p,
            o,
            shape: self.shape(),
        }
    }
}

/// Canonical identity of a pattern for the statistics catalog: the constant
/// components and the variable-equality shape. Variable *names* are erased.
/// `Ord` exists so multi-pattern keys (e.g. the learned-model query shape)
/// can be canonicalized by sorting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StatsKey {
    /// Constant subject, if bound.
    pub s: Option<TermId>,
    /// Constant predicate, if bound.
    pub p: Option<TermId>,
    /// Constant object, if bound.
    pub o: Option<TermId>,
    /// Variable-equality shape.
    pub shape: PatternShape,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }
    fn c(i: u32) -> Term {
        Term::Const(TermId(i))
    }

    #[test]
    fn const_parts_extracts_bound_positions() {
        let p = TriplePattern::new(v(0), c(1), c(2));
        assert_eq!(p.const_parts(), (None, Some(TermId(1)), Some(TermId(2))));
    }

    #[test]
    fn vars_dedup_and_order() {
        let p = TriplePattern::new(v(1), v(0), v(1));
        let vars: Vec<_> = p.vars().collect();
        assert_eq!(vars, vec![Var(1), Var(0)]);
        assert_eq!(p.var_count(), 2);
    }

    #[test]
    fn sharing() {
        let a = TriplePattern::new(v(0), c(1), c(2));
        let b = TriplePattern::new(v(0), c(1), c(3));
        let d = TriplePattern::new(v(5), c(1), c(3));
        assert!(a.shares_var(&b));
        assert!(!a.shares_var(&d));
        assert_eq!(a.shared_vars(&b), vec![Var(0)]);
    }

    #[test]
    fn shapes() {
        assert_eq!(
            TriplePattern::new(v(0), c(1), c(2)).shape(),
            PatternShape::Distinct
        );
        assert_eq!(
            TriplePattern::new(v(0), c(1), v(0)).shape(),
            PatternShape::SoEqual
        );
        assert_eq!(
            TriplePattern::new(v(0), v(0), c(1)).shape(),
            PatternShape::SpEqual
        );
        assert_eq!(
            TriplePattern::new(c(1), v(0), v(0)).shape(),
            PatternShape::PoEqual
        );
        assert_eq!(
            TriplePattern::new(v(0), v(0), v(0)).shape(),
            PatternShape::AllEqual
        );
    }

    #[test]
    fn stats_key_erases_var_names() {
        let a = TriplePattern::new(v(0), c(1), c(2));
        let b = TriplePattern::new(v(9), c(1), c(2));
        assert_eq!(a.stats_key(), b.stats_key());
        let c2 = TriplePattern::new(v(0), c(1), v(0));
        assert_ne!(a.stats_key(), c2.stats_key());
    }
}
