//! A fast, non-cryptographic hasher (FxHash) and hash-collection aliases.
//!
//! The engine hashes small integer keys (term ids, packed join keys) billions
//! of times during rank joins; SipHash's HashDoS resistance buys nothing on an
//! in-process analytical workload and costs real time. This is the same
//! multiply-xor scheme used by `rustc` (the `rustc-hash` crate), implemented
//! here to keep the workspace dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash streaming hasher: `state = (state.rotl(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Convenience: hash one value with FxHash.
pub fn fx_hash_one<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash_one(&42u64), fx_hash_one(&42u64));
        assert_ne!(fx_hash_one(&42u64), fx_hash_one(&43u64));
    }

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
        m.remove(&1);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn set_dedup() {
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.insert((2, 1)));
    }

    #[test]
    fn byte_stream_matches_chunked_writes() {
        // write() must consume 8-byte, 4-byte then single-byte chunks; verify
        // different split points of the same logical stream do not collide for
        // a few samples (sanity, not a cryptographic claim).
        let a = fx_hash_one(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9][..]);
        let b = fx_hash_one(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10][..]);
        assert_ne!(a, b);
    }

    #[test]
    fn distribution_smoke() {
        // Consecutive integers should not collapse to few buckets mod 1024.
        let mut buckets = [0u32; 1024];
        for i in 0..100_000u64 {
            buckets[(fx_hash_one(&i) % 1024) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        // Perfectly uniform would be ~97.6 per bucket; allow generous slack.
        assert!(max < 200, "max bucket {max}");
        assert!(min > 20, "min bucket {min}");
    }
}
