//! A fast, non-cryptographic hasher (FxHash) and hash-collection aliases.
//!
//! The engine hashes small integer keys (term ids, packed join keys) billions
//! of times during rank joins; SipHash's HashDoS resistance buys nothing on an
//! in-process analytical workload and costs real time. This is the same
//! multiply-xor scheme used by `rustc` (the `rustc-hash` crate), implemented
//! here to keep the workspace dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash streaming hasher: `state = (state.rotl(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Convenience: hash one value with FxHash.
pub fn fx_hash_one<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit checksum.
///
/// Unlike [`FxHasher`] (whose chunking strategy is an implementation detail
/// of the in-process hash maps), FNV-1a over individual bytes is a fixed,
/// portable function — the right choice for on-disk integrity checks like
/// the KG snapshot trailer, where the value must be stable across builds
/// and platforms.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// FNV-1a 64 over little-endian u64 *words* (zero-padded tail): the same
/// mixing as [`fnv1a_64`] but consuming 8 input bytes per multiply, ~8×
/// faster on large buffers. The word order and padding are part of the
/// definition, so the value is as portable as the byte-wise variant — this
/// is the checksum the KG snapshot trailer uses, where the hash runs over
/// megabytes on the serve-restart path.
///
/// Note this is a different function than [`fnv1a_64`] — the word chunking
/// and the final length mix mean the two never agree (not even on the empty
/// input); both are stable, they are not interchangeable.
pub fn fnv1a_64_words(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(FNV64_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    // Mix the length so inputs differing only by trailing zero bytes within
    // the padded tail word still hash apart.
    h ^= bytes.len() as u64;
    h.wrapping_mul(FNV64_PRIME)
}

/// Eight interleaved [`fnv1a_64_words`]-style lanes folded into one digest.
///
/// A single FNV chain is latency-bound: every word waits on the previous
/// multiply, capping throughput near one word per multiply *latency*. Eight
/// independent lanes (lane `i` consumes words `i`, `i+8`, `i+16`, …) keep
/// the multiplier pipeline full and run close to one word per *cycle* —
/// roughly the multiplier's latency/throughput ratio faster on large
/// buffers, which is what the snapshot-v2 trailer hashes on every load.
/// Trailing words past the last full 8-word group feed lanes round-robin
/// from lane 0, the final partial word is zero-padded, the eight lane
/// digests are folded through one more FNV chain and the total byte length
/// is mixed in last. Every step is fixed little-endian arithmetic, so the
/// value is as portable and stable as the single-chain variants — and, like
/// them, it agrees with neither.
pub fn fnv1a_64_lanes(bytes: &[u8]) -> u64 {
    const LANES: usize = 8;
    let mut lanes = [FNV64_OFFSET; LANES];
    let mut groups = bytes.chunks_exact(8 * LANES);
    for group in &mut groups {
        for (lane, c) in group.chunks_exact(8).enumerate() {
            let w = u64::from_le_bytes(c.try_into().unwrap());
            lanes[lane] = (lanes[lane] ^ w).wrapping_mul(FNV64_PRIME);
        }
    }
    let rem = groups.remainder();
    let mut words = rem.chunks_exact(8);
    let mut lane = 0;
    for c in &mut words {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        lanes[lane] = (lanes[lane] ^ w).wrapping_mul(FNV64_PRIME);
        lane += 1;
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut t = [0u8; 8];
        t[..tail.len()].copy_from_slice(tail);
        lanes[lane] = (lanes[lane] ^ u64::from_le_bytes(t)).wrapping_mul(FNV64_PRIME);
    }
    let mut h = FNV64_OFFSET;
    for l in lanes {
        h = (h ^ l).wrapping_mul(FNV64_PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(FNV64_PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash_one(&42u64), fx_hash_one(&42u64));
        assert_ne!(fx_hash_one(&42u64), fx_hash_one(&43u64));
    }

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
        m.remove(&1);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn set_dedup() {
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.insert((2, 1)));
    }

    #[test]
    fn byte_stream_matches_chunked_writes() {
        // write() must consume 8-byte, 4-byte then single-byte chunks; verify
        // different split points of the same logical stream do not collide for
        // a few samples (sanity, not a cryptographic claim).
        let a = fx_hash_one(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9][..]);
        let b = fx_hash_one(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10][..]);
        assert_ne!(a, b);
    }

    #[test]
    fn fnv1a_64_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a_64_sensitivity() {
        assert_ne!(fnv1a_64(b"abc"), fnv1a_64(b"abd"));
        assert_ne!(fnv1a_64(b"abc"), fnv1a_64(b"abc\0"));
    }

    #[test]
    fn fnv1a_64_words_is_stable_and_sensitive() {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        // Computed by hand so a regression in chunking, endianness or the
        // length mix shows up as a value change.
        assert_eq!(fnv1a_64_words(b""), OFFSET.wrapping_mul(PRIME));
        let w = u64::from_le_bytes(*b"abcdefgh");
        assert_eq!(
            fnv1a_64_words(b"abcdefgh"),
            ((OFFSET ^ w).wrapping_mul(PRIME) ^ 8).wrapping_mul(PRIME)
        );
        assert_ne!(fnv1a_64_words(b"abcdefgh"), fnv1a_64_words(b"abcdefgi"));
        // Tail padding still distinguishes lengths within the padded word.
        assert_ne!(fnv1a_64_words(b"ab"), fnv1a_64_words(b"ab\0"));
        // 12-byte buffer exercises word + tail.
        assert_ne!(
            fnv1a_64_words(b"abcdefgh1234"),
            fnv1a_64_words(b"abcdefgh1235")
        );
    }

    #[test]
    fn fnv1a_64_lanes_is_stable_and_sensitive() {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        // Hand-computed empty digest: eight untouched lanes folded, then the
        // zero length mixed in — pins the fold order and the length mix.
        let mut h = OFFSET;
        for _ in 0..8 {
            h = (h ^ OFFSET).wrapping_mul(PRIME);
        }
        assert_eq!(fnv1a_64_lanes(b""), h.wrapping_mul(PRIME));
        // One word lands entirely in lane 0.
        let w = u64::from_le_bytes(*b"abcdefgh");
        let mut h = OFFSET;
        h = (h ^ (OFFSET ^ w).wrapping_mul(PRIME)).wrapping_mul(PRIME);
        for _ in 0..7 {
            h = (h ^ OFFSET).wrapping_mul(PRIME);
        }
        assert_eq!(fnv1a_64_lanes(b"abcdefgh"), (h ^ 8).wrapping_mul(PRIME));
    }

    #[test]
    fn fnv1a_64_lanes_every_position_matters() {
        // Flip one byte at every offset of a buffer spanning full groups,
        // a round-robin tail and a padded partial word (8*16 + 13 bytes) —
        // each flip must change the digest, and trailing-zero extension must
        // hash apart (the length mix).
        let base: Vec<u8> = (0..(8 * 16 + 13)).map(|i| (i * 37 + 11) as u8).collect();
        let digest = fnv1a_64_lanes(&base);
        for i in 0..base.len() {
            let mut tweaked = base.clone();
            tweaked[i] ^= 0x40;
            assert_ne!(fnv1a_64_lanes(&tweaked), digest, "byte {i} ignored");
        }
        let mut extended = base.clone();
        extended.push(0);
        assert_ne!(fnv1a_64_lanes(&extended), digest);
        // And it is its own function, agreeing with neither single chain.
        assert_ne!(fnv1a_64_lanes(&base), fnv1a_64_words(&base));
        assert_ne!(fnv1a_64_lanes(&base), fnv1a_64(&base));
    }

    #[test]
    fn distribution_smoke() {
        // Consecutive integers should not collapse to few buckets mod 1024.
        let mut buckets = [0u32; 1024];
        for i in 0..100_000u64 {
            buckets[(fx_hash_one(&i) % 1024) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        // Perfectly uniform would be ~97.6 per bucket; allow generous slack.
        assert!(max < 200, "max bucket {max}");
        assert!(min > 20, "min bucket {min}");
    }
}
