//! Totally ordered floating-point scores.
//!
//! Triple scores (Def. 1 of the paper) and answer scores (Def. 6) are
//! non-negative reals. Rust's `f64` is only `PartialOrd`, which makes it
//! awkward inside `BinaryHeap`s and sort keys, so the workspace uses this
//! thin wrapper that guarantees the value is never NaN and therefore admits
//! a total order.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A non-NaN `f64` with a total order. The canonical score type of the
/// workspace.
///
/// Construction via [`Score::new`] panics on NaN (scores are produced by the
/// engine from counts and weights, so a NaN always indicates a logic error);
/// [`Score::try_new`] is available where the input is untrusted.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Score(f64);

impl Score {
    /// The zero score.
    pub const ZERO: Score = Score(0.0);
    /// The unit score — the head of every normalized match list (Def. 5).
    pub const ONE: Score = Score(1.0);

    /// Wraps a finite-or-infinite (but non-NaN) float.
    ///
    /// # Panics
    /// Panics if `v` is NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "score must not be NaN");
        Score(v)
    }

    /// Fallible constructor: returns `None` for NaN.
    #[inline]
    pub fn try_new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            Some(Score(v))
        }
    }

    /// Returns the wrapped value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The larger of two scores.
    #[inline]
    pub fn max(self, other: Score) -> Score {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two scores.
    #[inline]
    pub fn min(self, other: Score) -> Score {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Absolute difference between two scores.
    #[inline]
    pub fn abs_diff(self, other: Score) -> Score {
        Score((self.0 - other.0).abs())
    }

    /// `true` if the two scores differ by at most `eps`.
    #[inline]
    pub fn approx_eq(self, other: Score, eps: f64) -> bool {
        (self.0 - other.0).abs() <= eps
    }
}

impl Eq for Score {}

impl PartialOrd for Score {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: construction forbids NaN.
        self.0.partial_cmp(&other.0).expect("scores are never NaN")
    }
}

impl Add for Score {
    type Output = Score;
    #[inline]
    fn add(self, rhs: Score) -> Score {
        Score(self.0 + rhs.0)
    }
}

impl AddAssign for Score {
    #[inline]
    fn add_assign(&mut self, rhs: Score) {
        self.0 += rhs.0;
    }
}

impl Sub for Score {
    type Output = Score;
    #[inline]
    fn sub(self, rhs: Score) -> Score {
        Score(self.0 - rhs.0)
    }
}

impl Mul for Score {
    type Output = Score;
    #[inline]
    fn mul(self, rhs: Score) -> Score {
        Score(self.0 * rhs.0)
    }
}

impl Mul<f64> for Score {
    type Output = Score;
    #[inline]
    fn mul(self, rhs: f64) -> Score {
        Score::new(self.0 * rhs)
    }
}

impl Div<f64> for Score {
    type Output = Score;
    #[inline]
    fn div(self, rhs: f64) -> Score {
        Score::new(self.0 / rhs)
    }
}

impl Sum for Score {
    fn sum<I: Iterator<Item = Score>>(iter: I) -> Score {
        iter.fold(Score::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Score {
    #[inline]
    fn from(v: f64) -> Self {
        Score::new(v)
    }
}

impl From<Score> for f64 {
    #[inline]
    fn from(s: Score) -> f64 {
        s.0
    }
}

impl fmt::Debug for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}", prec, self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_allows_sorting() {
        let mut v = vec![Score::new(0.3), Score::new(1.2), Score::new(0.0)];
        v.sort();
        assert_eq!(v, vec![Score::ZERO, Score::new(0.3), Score::new(1.2)]);
    }

    #[test]
    fn arithmetic() {
        let a = Score::new(0.5);
        let b = Score::new(0.25);
        assert_eq!((a + b).value(), 0.75);
        assert_eq!((a - b).value(), 0.25);
        assert_eq!((a * b).value(), 0.125);
        assert_eq!((a * 2.0).value(), 1.0);
        assert_eq!((a / 2.0).value(), 0.25);
    }

    #[test]
    fn sum_of_scores() {
        let s: Score = [0.1, 0.2, 0.3].iter().map(|&v| Score::new(v)).sum();
        assert!(s.approx_eq(Score::new(0.6), 1e-12));
    }

    #[test]
    fn min_max_absdiff() {
        let a = Score::new(0.9);
        let b = Score::new(0.4);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert!(a.abs_diff(b).approx_eq(Score::new(0.5), 1e-12));
        assert!(b.abs_diff(a).approx_eq(Score::new(0.5), 1e-12));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        let _ = Score::new(f64::NAN);
    }

    #[test]
    fn try_new_rejects_nan_only() {
        assert!(Score::try_new(f64::NAN).is_none());
        assert!(Score::try_new(f64::INFINITY).is_some());
        assert!(Score::try_new(-1.0).is_some());
    }
}
