//! Workspace-wide error type.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors surfaced by the Spec-QP engine and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A SPARQL-subset query failed to parse. Carries a human-readable
    /// message with position information.
    Parse(String),
    /// A query referenced a term that is not in the dictionary.
    UnknownTerm(String),
    /// A query is structurally invalid (e.g. empty, disconnected join graph,
    /// or no projected variable).
    InvalidQuery(String),
    /// Statistics were requested for a pattern that has no catalog entry.
    MissingStatistics(String),
    /// A dataset/workload generator was configured inconsistently.
    InvalidConfig(String),
    /// Catch-all for internal invariant violations that should be reported
    /// as bugs rather than panicking in release builds.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::UnknownTerm(t) => write!(f, "unknown term: {t}"),
            Error::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            Error::MissingStatistics(m) => write!(f, "missing statistics: {m}"),
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            Error::Parse("bad token".into()).to_string(),
            "parse error: bad token"
        );
        assert_eq!(
            Error::UnknownTerm("<x>".into()).to_string(),
            "unknown term: <x>"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Internal("x".into()));
    }
}
