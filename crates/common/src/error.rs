//! Workspace-wide error type.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors surfaced by the Spec-QP engine and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A SPARQL-subset query failed to parse. Carries a human-readable
    /// message with position information.
    Parse(String),
    /// A query referenced a term that is not in the dictionary.
    UnknownTerm(String),
    /// A query is structurally invalid (e.g. empty, disconnected join graph,
    /// or no projected variable).
    InvalidQuery(String),
    /// Statistics were requested for a pattern that has no catalog entry.
    MissingStatistics(String),
    /// A dataset/workload generator was configured inconsistently.
    InvalidConfig(String),
    /// A binary snapshot failed to load or validate. The payload says
    /// exactly how (truncation, bad magic, version skew, checksum, …).
    Snapshot(SnapshotError),
    /// Catch-all for internal invariant violations that should be reported
    /// as bugs rather than panicking in release builds.
    Internal(String),
}

/// Why a binary KG snapshot was rejected.
///
/// Every corruption mode a reader can detect maps to one variant, so tests
/// and callers can match on the exact failure instead of parsing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the structure it promised. `context`
    /// names the structure being read when the bytes ran out.
    Truncated {
        /// What was being read when the stream ended.
        context: String,
    },
    /// The first bytes are not the snapshot magic — not a snapshot file.
    BadMagic,
    /// The format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this reader supports.
        supported: u32,
    },
    /// The trailing checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum recomputed over the payload.
        actual: u64,
    },
    /// The structure decoded but violates an invariant (id out of range,
    /// inconsistent section lengths, duplicate dictionary term, …).
    Corrupt(String),
    /// An underlying I/O error while reading or writing the snapshot.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { context } => {
                write!(f, "truncated while reading {context}")
            }
            SnapshotError::BadMagic => write!(f, "bad magic (not a Spec-QP snapshot)"),
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported version {found} (this build reads <= {supported})"
                )
            }
            SnapshotError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch (file says {expected:#018x}, payload hashes to {actual:#018x})")
            }
            SnapshotError::Corrupt(m) => write!(f, "corrupt payload: {m}"),
            SnapshotError::Io(m) => write!(f, "i/o: {m}"),
        }
    }
}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Self {
        Error::Snapshot(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::UnknownTerm(t) => write!(f, "unknown term: {t}"),
            Error::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            Error::MissingStatistics(m) => write!(f, "missing statistics: {m}"),
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            Error::Parse("bad token".into()).to_string(),
            "parse error: bad token"
        );
        assert_eq!(
            Error::UnknownTerm("<x>".into()).to_string(),
            "unknown term: <x>"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Internal("x".into()));
    }

    #[test]
    fn snapshot_error_display_and_conversion() {
        let e: Error = SnapshotError::BadMagic.into();
        assert_eq!(
            e.to_string(),
            "snapshot error: bad magic (not a Spec-QP snapshot)"
        );
        let e: Error = SnapshotError::UnsupportedVersion {
            found: 9,
            supported: 1,
        }
        .into();
        assert!(e.to_string().contains("unsupported version 9"));
        let e: Error = SnapshotError::Truncated {
            context: "dictionary".into(),
        }
        .into();
        assert!(e.to_string().contains("truncated while reading dictionary"));
        let e: Error = SnapshotError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(e.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn snapshot_error_is_matchable() {
        let e: Error = SnapshotError::Corrupt("oops".into()).into();
        match e {
            Error::Snapshot(SnapshotError::Corrupt(m)) => assert_eq!(m, "oops"),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
