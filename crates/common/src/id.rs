//! Dictionary-encoded term identifiers.

use std::fmt;

/// Identifier of an RDF term (entity, predicate, literal, or textual token)
/// in a [`Dictionary`](https://docs.rs/kgstore)-encoded knowledge graph.
///
/// `TermId` is a plain `u32` newtype: 4 bytes keeps triples at 16 bytes
/// (3 ids + f32 would be 16; we use f64 scores stored separately in hot
/// paths) and comfortably addresses the ~10⁸-triple graphs the paper uses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// Largest representable id, used as a sentinel by some indexes.
    pub const MAX: TermId = TermId(u32::MAX);

    /// Returns the raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TermId` from a raw index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        assert!(i <= u32::MAX as usize, "term id overflow: {i}");
        TermId(i as u32)
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for TermId {
    fn from(v: u32) -> Self {
        TermId(v)
    }
}

impl From<TermId> for u32 {
    fn from(v: TermId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = TermId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(TermId(42), id);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(TermId(1) < TermId(2));
        assert!(TermId::MAX > TermId(0));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(TermId(7).to_string(), "7");
        assert_eq!(format!("{:?}", TermId(7)), "t7");
    }

    #[test]
    #[should_panic(expected = "term id overflow")]
    fn from_index_overflow_panics() {
        let _ = TermId::from_index(u32::MAX as usize + 1);
    }
}
