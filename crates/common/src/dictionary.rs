//! String ⇄ id interning.

use crate::{FxHashMap, TermId};

/// A bidirectional dictionary mapping term strings (IRIs, literals, textual
/// tokens) to dense [`TermId`]s.
///
/// Ids are assigned in first-seen order starting at 0, so they can directly
/// index side arrays.
#[derive(Default, Debug, Clone)]
pub struct Dictionary {
    by_name: FxHashMap<Box<str>, TermId>,
    by_id: Vec<Box<str>>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or newly assigned).
    pub fn intern(&mut self, name: &str) -> TermId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = TermId::from_index(self.by_id.len());
        let boxed: Box<str> = name.into();
        self.by_id.push(boxed.clone());
        self.by_name.insert(boxed, id);
        id
    }

    /// Rebuilds a dictionary from the id-ordered term list (snapshot load):
    /// `names[i]` becomes the term with id `i`. Fails on duplicate names,
    /// which would make the name → id direction ambiguous.
    pub fn from_names<I>(names: I) -> crate::Result<Self>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut d = Dictionary::new();
        for name in names {
            let name = name.as_ref();
            let before = d.by_id.len();
            d.intern(name);
            if d.by_id.len() == before {
                return Err(crate::Error::InvalidConfig(format!(
                    "duplicate dictionary term {name:?}"
                )));
            }
        }
        Ok(d)
    }

    /// Looks up an existing term without interning.
    pub fn lookup(&self, name: &str) -> Option<TermId> {
        self.by_name.get(name).copied()
    }

    /// Returns the string for `id`, if assigned.
    pub fn name(&self, id: TermId) -> Option<&str> {
        self.by_id.get(id.index()).map(|s| &**s)
    }

    /// Returns the string for `id`, or a placeholder for unknown ids.
    /// Convenient for diagnostics.
    pub fn name_or_unknown(&self, id: TermId) -> &str {
        self.name(id).unwrap_or("<?unknown?>")
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// `true` if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (TermId::from_index(i), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("singer");
        let b = d.intern("singer");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), TermId(0));
        assert_eq!(d.intern("b"), TermId(1));
        assert_eq!(d.intern("a"), TermId(0));
        assert_eq!(d.intern("c"), TermId(2));
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let mut d = Dictionary::new();
        let id = d.intern("vocalist");
        assert_eq!(d.lookup("vocalist"), Some(id));
        assert_eq!(d.lookup("missing"), None);
        assert_eq!(d.name(id), Some("vocalist"));
        assert_eq!(d.name(TermId(99)), None);
        assert_eq!(d.name_or_unknown(TermId(99)), "<?unknown?>");
    }

    #[test]
    fn from_names_roundtrips_iter() {
        let mut d = Dictionary::new();
        d.intern("a");
        d.intern("b");
        d.intern("c");
        let names: Vec<String> = d.iter().map(|(_, n)| n.to_string()).collect();
        let d2 = Dictionary::from_names(names).unwrap();
        assert_eq!(d2.len(), 3);
        assert_eq!(d2.lookup("b"), Some(TermId(1)));
    }

    #[test]
    fn from_names_rejects_duplicates() {
        let e = Dictionary::from_names(vec!["x".to_string(), "x".to_string()]).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
    }

    #[test]
    fn iter_yields_all() {
        let mut d = Dictionary::new();
        d.intern("x");
        d.intern("y");
        let v: Vec<_> = d.iter().map(|(i, n)| (i.0, n.to_string())).collect();
        assert_eq!(v, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }
}
