//! String ⇄ id interning.

use crate::{FxHashMap, TermId};
use std::sync::Arc;

/// A bidirectional dictionary mapping term strings (IRIs, literals, textual
/// tokens) to dense [`TermId`]s.
///
/// Ids are assigned in first-seen order starting at 0, so they can directly
/// index side arrays.
///
/// # Layering
///
/// A dictionary can be **layered on an immutable base**
/// ([`Dictionary::layered`]): the base's assignments are shared through an
/// `Arc` and only terms interned *after* the fork live in the local layer.
/// Ids are globally consistent — the local layer starts at `base.len()` —
/// so a term keeps its id across every version forked from the same base.
/// This is what makes cloning a live graph's dictionary per commit O(new
/// terms) instead of O(all terms).
#[derive(Default, Debug, Clone)]
pub struct Dictionary {
    /// Frozen lower layer; `None` for a flat (unlayered) dictionary.
    base: Option<Arc<Dictionary>>,
    by_name: FxHashMap<Box<str>, TermId>,
    by_id: Vec<Box<str>>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary layered on `base`: every term of `base` resolves
    /// with its existing id, and newly interned terms get ids starting at
    /// `base.len()`.
    ///
    /// ```
    /// # use specqp_common::Dictionary;
    /// # use std::sync::Arc;
    /// let mut seed = Dictionary::new();
    /// let singer = seed.intern("singer");
    /// let mut live = Dictionary::layered(Arc::new(seed));
    /// assert_eq!(live.lookup("singer"), Some(singer));
    /// let fresh = live.intern("guitarist");
    /// assert_eq!(fresh.index(), 1);
    /// ```
    pub fn layered(base: Arc<Dictionary>) -> Self {
        Dictionary {
            base: Some(base),
            by_name: FxHashMap::default(),
            by_id: Vec::new(),
        }
    }

    /// Number of terms in the frozen base layer (0 when unlayered).
    fn base_len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.len())
    }

    /// Interns `name`, returning its id (existing or newly assigned).
    pub fn intern(&mut self, name: &str) -> TermId {
        if let Some(base) = &self.base {
            if let Some(id) = base.lookup(name) {
                return id;
            }
        }
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = TermId::from_index(self.base_len() + self.by_id.len());
        let boxed: Box<str> = name.into();
        self.by_id.push(boxed.clone());
        self.by_name.insert(boxed, id);
        id
    }

    /// Rebuilds a dictionary from the id-ordered term list (snapshot load):
    /// `names[i]` becomes the term with id `i`. Fails on duplicate names,
    /// which would make the name → id direction ambiguous.
    pub fn from_names<I>(names: I) -> crate::Result<Self>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut d = Dictionary::new();
        for name in names {
            let name = name.as_ref();
            let before = d.by_id.len();
            d.intern(name);
            if d.by_id.len() == before {
                return Err(crate::Error::InvalidConfig(format!(
                    "duplicate dictionary term {name:?}"
                )));
            }
        }
        Ok(d)
    }

    /// Looks up an existing term without interning.
    pub fn lookup(&self, name: &str) -> Option<TermId> {
        if let Some(base) = &self.base {
            if let Some(id) = base.lookup(name) {
                return Some(id);
            }
        }
        self.by_name.get(name).copied()
    }

    /// Returns the string for `id`, if assigned.
    pub fn name(&self, id: TermId) -> Option<&str> {
        let base_len = self.base_len();
        if id.index() < base_len {
            // `base_len > 0` implies `base` is `Some`.
            return self.base.as_ref().and_then(|b| b.name(id));
        }
        self.by_id.get(id.index() - base_len).map(|s| &**s)
    }

    /// Returns the string for `id`, or a placeholder for unknown ids.
    /// Convenient for diagnostics.
    pub fn name_or_unknown(&self, id: TermId) -> &str {
        self.name(id).unwrap_or("<?unknown?>")
    }

    /// Number of interned terms (base layer included).
    pub fn len(&self) -> usize {
        self.base_len() + self.by_id.len()
    }

    /// `true` if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates `(id, name)` pairs in id order, base layer first.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        let base: Box<dyn Iterator<Item = &str> + '_> = match &self.base {
            Some(b) => Box::new(b.iter().map(|(_, n)| n)),
            None => Box::new(std::iter::empty()),
        };
        base.chain(self.by_id.iter().map(|s| &**s))
            .enumerate()
            .map(|(i, s)| (TermId::from_index(i), s))
    }

    /// Flattens the layering into a single self-contained dictionary with
    /// identical id assignments. Used by compaction, where the folded base
    /// should no longer pin the pre-fork dictionary alive.
    pub fn flattened(&self) -> Dictionary {
        match &self.base {
            None => self.clone(),
            Some(_) => {
                let mut flat = Dictionary::new();
                for (_, name) in self.iter() {
                    flat.intern(name);
                }
                flat
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("singer");
        let b = d.intern("singer");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), TermId(0));
        assert_eq!(d.intern("b"), TermId(1));
        assert_eq!(d.intern("a"), TermId(0));
        assert_eq!(d.intern("c"), TermId(2));
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let mut d = Dictionary::new();
        let id = d.intern("vocalist");
        assert_eq!(d.lookup("vocalist"), Some(id));
        assert_eq!(d.lookup("missing"), None);
        assert_eq!(d.name(id), Some("vocalist"));
        assert_eq!(d.name(TermId(99)), None);
        assert_eq!(d.name_or_unknown(TermId(99)), "<?unknown?>");
    }

    #[test]
    fn from_names_roundtrips_iter() {
        let mut d = Dictionary::new();
        d.intern("a");
        d.intern("b");
        d.intern("c");
        let names: Vec<String> = d.iter().map(|(_, n)| n.to_string()).collect();
        let d2 = Dictionary::from_names(names).unwrap();
        assert_eq!(d2.len(), 3);
        assert_eq!(d2.lookup("b"), Some(TermId(1)));
    }

    #[test]
    fn from_names_rejects_duplicates() {
        let e = Dictionary::from_names(vec!["x".to_string(), "x".to_string()]).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
    }

    #[test]
    fn iter_yields_all() {
        let mut d = Dictionary::new();
        d.intern("x");
        d.intern("y");
        let v: Vec<_> = d.iter().map(|(i, n)| (i.0, n.to_string())).collect();
        assert_eq!(v, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn layered_dictionary_shares_base_ids() {
        let mut seed = Dictionary::new();
        let a = seed.intern("a");
        let b = seed.intern("b");
        let mut live = Dictionary::layered(std::sync::Arc::new(seed));
        assert_eq!(live.len(), 2);
        assert_eq!(live.lookup("a"), Some(a));
        assert_eq!(live.intern("b"), b, "base term must not re-intern");
        let c = live.intern("c");
        assert_eq!(c, TermId(2), "local layer starts at base.len()");
        assert_eq!(live.name(a), Some("a"));
        assert_eq!(live.name(c), Some("c"));
        assert_eq!(live.len(), 3);
        let v: Vec<_> = live.iter().map(|(i, n)| (i.0, n.to_string())).collect();
        assert_eq!(
            v,
            vec![(0, "a".into()), (1, "b".into()), (2, "c".to_string())]
        );
    }

    #[test]
    fn flattened_preserves_ids_and_drops_layering() {
        let mut seed = Dictionary::new();
        seed.intern("a");
        let mut live = Dictionary::layered(std::sync::Arc::new(seed));
        live.intern("z");
        let flat = live.flattened();
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.lookup("a"), live.lookup("a"));
        assert_eq!(flat.lookup("z"), live.lookup("z"));
        // A flat dictionary round-trips through from_names (layered ones do
        // too, via iter, which is what the snapshot writer uses).
        let names: Vec<String> = flat.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(Dictionary::from_names(names).unwrap().len(), 2);
    }

    #[test]
    fn doubly_layered_dictionary_resolves_every_layer() {
        let mut l0 = Dictionary::new();
        l0.intern("a");
        let mut l1 = Dictionary::layered(std::sync::Arc::new(l0));
        l1.intern("b");
        let mut l2 = Dictionary::layered(std::sync::Arc::new(l1));
        let c = l2.intern("c");
        assert_eq!(c, TermId(2));
        assert_eq!(l2.lookup("a"), Some(TermId(0)));
        assert_eq!(l2.name(TermId(1)), Some("b"));
        assert_eq!(l2.iter().count(), 3);
    }
}
