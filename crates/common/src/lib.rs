//! Shared utilities for the Spec-QP workspace.
//!
//! This crate holds the small, dependency-free building blocks used by every
//! other crate in the workspace:
//!
//! * [`TermId`] — dictionary-encoded identifier for RDF terms,
//! * [`Score`] — a totally ordered, non-NaN `f64` wrapper used for triple and
//!   answer scores,
//! * [`FxHashMap`]/[`FxHashSet`] — hash collections with a fast
//!   multiply-rotate hasher (FxHash), appropriate for integer-like keys on a
//!   trusted, in-process workload,
//! * [`Error`] — the workspace-wide error type.

pub mod dictionary;
pub mod error;
pub mod hash;
pub mod id;
pub mod score;

pub use dictionary::Dictionary;
pub use error::{Error, Result, SnapshotError};
pub use hash::{
    fnv1a_64, fnv1a_64_lanes, fnv1a_64_words, FxBuildHasher, FxHashMap, FxHashSet, FxHasher,
};
pub use id::TermId;
pub use score::Score;
