//! The Incremental Merge operator.
//!
//! One incremental merge serves one triple pattern *and all of its
//! relaxations* (Fig. 1/2 of the paper): it consumes the weighted sorted
//! stream of the original pattern (weight 1) and of each relaxation (weight
//! `wᵢ`), and produces a single sorted stream. When the same binding is
//! reachable through several relaxations, only the highest-scoring
//! occurrence is emitted (Def. 8: "the score of an answer ... is the
//! maximum score obtained through any relaxation").
//!
//! This is the top-k-friendly query-expansion operator of Theobald et al.
//! (SIGIR'05), reference \[29\] of the paper.

use crate::answer::{Binding, PartialAnswer};
use crate::stream::{BoxedStream, RankedStream};
use specqp_common::{FxHashSet, Score};

/// Merges several descending streams into one, deduplicating bindings with
/// max-score semantics.
///
/// The inputs are typically [`PatternScan`](crate::PatternScan)s whose
/// weights were already applied, so plain score order across inputs is the
/// correct merge order.
pub struct IncrementalMerge<'g> {
    inputs: Vec<BoxedStream<'g>>,
    /// Peeked head of each input (`None` = exhausted).
    heads: Vec<Option<PartialAnswer>>,
    seen: FxHashSet<Binding>,
}

impl<'g> IncrementalMerge<'g> {
    /// Builds a merge over `inputs`. The list order is irrelevant.
    pub fn new(inputs: Vec<BoxedStream<'g>>) -> Self {
        let mut m = IncrementalMerge {
            heads: Vec::with_capacity(inputs.len()),
            inputs,
            seen: FxHashSet::default(),
        };
        for i in 0..m.inputs.len() {
            let head = m.inputs[i].next();
            m.heads.push(head);
        }
        m
    }

    /// Index of the input whose head has the maximum score (deterministic:
    /// first such input wins ties).
    fn best_input(&self) -> Option<usize> {
        let mut best: Option<(usize, &PartialAnswer)> = None;
        for (i, h) in self.heads.iter().enumerate() {
            if let Some(a) = h {
                match best {
                    Some((_, cur)) if cur.score >= a.score => {}
                    _ => best = Some((i, a)),
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

impl RankedStream for IncrementalMerge<'_> {
    fn next(&mut self) -> Option<PartialAnswer> {
        loop {
            let i = self.best_input()?;
            let answer = self.heads[i].take().expect("best head exists");
            self.heads[i] = self.inputs[i].next();
            if self.seen.insert(answer.binding.clone()) {
                return Some(answer);
            }
            // Duplicate binding from a lower-weighted relaxation: skip —
            // the earlier emission already carried the maximum score.
        }
    }

    fn upper_bound(&self) -> Option<Score> {
        self.heads.iter().flatten().map(|a| a.score).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Binding;
    use crate::stream::{materialize, VecStream};
    use sparql::Var;
    use specqp_common::TermId;

    fn ans(entity: u32, score: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(vec![(Var(0), TermId(entity))]),
            Score::new(score),
        )
    }

    fn boxed(items: Vec<PartialAnswer>) -> BoxedStream<'static> {
        Box::new(VecStream::new(items))
    }

    #[test]
    fn merges_in_global_descending_order() {
        let merge = IncrementalMerge::new(vec![
            boxed(vec![ans(1, 1.0), ans(2, 0.4)]),
            boxed(vec![ans(3, 0.8), ans(4, 0.6), ans(5, 0.1)]),
        ]);
        let scores: Vec<f64> = materialize(merge).iter().map(|a| a.score.value()).collect();
        assert_eq!(scores, vec![1.0, 0.8, 0.6, 0.4, 0.1]);
    }

    #[test]
    fn dedups_keeping_max_score() {
        // Entity 7 appears in the original (1.0) and in a relaxation (0.8·…):
        // only the first (max) emission survives.
        let merge = IncrementalMerge::new(vec![
            boxed(vec![ans(7, 1.0), ans(1, 0.9)]),
            boxed(vec![ans(7, 0.8), ans(2, 0.5)]),
        ]);
        let out = materialize(merge);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], ans(7, 1.0));
        assert_eq!(out[1], ans(1, 0.9));
        assert_eq!(out[2], ans(2, 0.5));
    }

    #[test]
    fn upper_bound_is_max_head() {
        let mut merge = IncrementalMerge::new(vec![
            boxed(vec![ans(1, 0.7)]),
            boxed(vec![ans(2, 0.9), ans(3, 0.2)]),
        ]);
        assert_eq!(merge.upper_bound(), Some(Score::new(0.9)));
        merge.next();
        assert_eq!(merge.upper_bound(), Some(Score::new(0.7)));
        merge.next();
        assert_eq!(merge.upper_bound(), Some(Score::new(0.2)));
        merge.next();
        assert_eq!(merge.upper_bound(), None);
    }

    #[test]
    fn empty_inputs() {
        let mut merge = IncrementalMerge::new(vec![boxed(vec![]), boxed(vec![])]);
        assert_eq!(merge.upper_bound(), None);
        assert!(merge.next().is_none());
        let mut none: IncrementalMerge = IncrementalMerge::new(vec![]);
        assert!(none.next().is_none());
    }

    #[test]
    fn matches_naive_merge_on_interleaved_ties() {
        let merge = IncrementalMerge::new(vec![
            boxed(vec![ans(1, 0.5), ans(2, 0.5)]),
            boxed(vec![ans(3, 0.5), ans(4, 0.5)]),
        ]);
        let out = materialize(merge);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|a| a.score == Score::new(0.5)));
    }
}
