//! Block-at-a-time join and merge operators.
//!
//! These are the batched siblings of [`RankJoin`](crate::RankJoin),
//! [`IncrementalMerge`](crate::IncrementalMerge) and
//! [`NestedLoopsRankJoin`](crate::NestedLoopsRankJoin). They keep the exact
//! corner-bound/threshold logic of the row operators (so early termination
//! is preserved), but move data as [`AnswerBlock`]s: the inner loops match
//! bindings by comparing term slices at precomputed schema offsets instead
//! of merging variable-keyed pair lists, and join keys pack into a `u128`
//! (up to four `TermId`s) so the hot hash paths allocate nothing.
//!
//! Output order is identical to the row operators': results are emitted
//! from a heap ordered by the same total `(score, binding)` order that
//! [`PartialAnswer`](crate::PartialAnswer) uses — for same-schema rows,
//! comparing term slices in schema order *is* comparing sorted binding pair
//! lists.

use crate::block::{AnswerBlock, BlockSizer, BlockStream, BoxedBlockStream};
use crate::metrics::MetricsHandle;
use crate::rank_join::PullStrategy;
use sparql::Var;
use specqp_common::{FxHashMap, FxHashSet, Score, TermId};
use std::collections::BinaryHeap;

/// A join/dedup key: up to four terms packed into a `u128`, wider keys
/// boxed. Within one operator every key has the same width, so packed and
/// wide keys never collide semantically.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Key {
    Packed(u128),
    Wide(Box<[TermId]>),
}

/// Extracts the key of `row` at the column positions `idx`.
#[inline]
fn key_of(row: &[TermId], idx: &[usize]) -> Key {
    if idx.len() <= 4 {
        let mut packed = 0u128;
        for &i in idx {
            packed = (packed << 32) | u128::from(row[i].0);
        }
        Key::Packed(packed)
    } else {
        Key::Wide(idx.iter().map(|&i| row[i]).collect())
    }
}

/// A heap entry ordered exactly like the row path's `PartialAnswer`:
/// by score, ties broken so the lexicographically smaller term row ranks
/// higher (pops first).
#[derive(PartialEq, Eq, Debug)]
struct HeapRow {
    score: Score,
    terms: Box<[TermId]>,
}

impl Ord for HeapRow {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| other.terms.cmp(&self.terms))
    }
}

impl PartialOrd for HeapRow {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One input of a [`BlockRankJoin`]: the columnar store of every row seen so
/// far, hashed by join key, plus the HRJN corner-bound state.
struct SideState {
    width: usize,
    /// Positions of the join variables in this side's schema.
    key_idx: Vec<usize>,
    /// For each schema slot, its position in the join's output schema.
    out_map: Vec<usize>,
    /// Flattened seen rows (`width` terms each).
    terms: Vec<TermId>,
    scores: Vec<Score>,
    hash: FxHashMap<Key, Vec<u32>>,
    /// Score of the first row ever pulled (top₁).
    top1: Option<Score>,
    /// Score of the most recent row pulled (cur).
    cur: Option<Score>,
    exhausted: bool,
}

impl SideState {
    fn new(schema: &[Var], join_vars: &[Var], out_schema: &[Var]) -> Self {
        let pos = |v: Var| -> usize {
            schema
                .iter()
                .position(|&w| w == v)
                .expect("join variables must appear in both schemas")
        };
        SideState {
            width: schema.len(),
            key_idx: join_vars.iter().map(|&v| pos(v)).collect(),
            out_map: schema
                .iter()
                .map(|v| {
                    out_schema
                        .iter()
                        .position(|w| w == v)
                        .expect("side schema is a subset of the output schema")
                })
                .collect(),
            terms: Vec::new(),
            scores: Vec::new(),
            hash: FxHashMap::default(),
            top1: None,
            cur: None,
            exhausted: false,
        }
    }

    #[inline]
    fn row(&self, i: u32) -> &[TermId] {
        let w = self.width;
        &self.terms[i as usize * w..(i as usize + 1) * w]
    }

    /// Same corner-bound term as the row join's `Side::bound_with`.
    fn bound_with(&self, other_top1: Option<Score>) -> Option<Score> {
        if self.exhausted {
            return None;
        }
        match (self.cur, other_top1) {
            (None, _) => Some(Score::new(f64::INFINITY)),
            (Some(cur), Some(top1)) => Some(cur + top1),
            (Some(_), None) => Some(Score::new(f64::INFINITY)),
        }
    }
}

/// Block-at-a-time HRJN hash rank join: consumes two [`BlockStream`]s and
/// produces their join results in the same order (and with the same scores)
/// as [`RankJoin`](crate::RankJoin) over the equivalent row streams, but
/// pulls, probes and emits whole batches.
pub struct BlockRankJoin<'g> {
    left: BoxedBlockStream<'g>,
    right: BoxedBlockStream<'g>,
    lstate: SideState,
    rstate: SideState,
    out_schema: Vec<Var>,
    output: BinaryHeap<HeapRow>,
    strategy: PullStrategy,
    pull_left_next: bool,
    sizer: BlockSizer,
    metrics: MetricsHandle,
}

impl<'g> BlockRankJoin<'g> {
    /// Creates a block rank join of `left ⋈ right` on `join_vars`, emitting
    /// blocks of up to `block_size` rows.
    pub fn new(
        left: BoxedBlockStream<'g>,
        right: BoxedBlockStream<'g>,
        join_vars: Vec<Var>,
        strategy: PullStrategy,
        metrics: MetricsHandle,
        block_size: usize,
    ) -> Self {
        let mut out_schema: Vec<Var> = left.schema().to_vec();
        for &v in right.schema() {
            if !out_schema.contains(&v) {
                out_schema.push(v);
            }
        }
        out_schema.sort_unstable();
        let lstate = SideState::new(left.schema(), &join_vars, &out_schema);
        let rstate = SideState::new(right.schema(), &join_vars, &out_schema);
        BlockRankJoin {
            left,
            right,
            lstate,
            rstate,
            out_schema,
            output: BinaryHeap::new(),
            strategy,
            pull_left_next: true,
            sizer: BlockSizer::new(block_size),
            metrics,
        }
    }

    /// The corner-bound threshold (same formula as the row join).
    fn threshold(&self) -> Option<Score> {
        if (self.lstate.exhausted && self.lstate.top1.is_none())
            || (self.rstate.exhausted && self.rstate.top1.is_none())
        {
            return None;
        }
        let tl = self.lstate.bound_with(self.rstate.top1);
        let tr = self.rstate.bound_with(self.lstate.top1);
        match (tl, tr) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.max(b)),
        }
    }

    /// Pulls one block from the chosen side, inserts its rows and probes the
    /// other side's hash table row-by-row in a tight loop.
    fn pull_block(&mut self) {
        let pull_left = match self.strategy {
            PullStrategy::Alternate => {
                if self.lstate.exhausted {
                    false
                } else if self.rstate.exhausted {
                    true
                } else {
                    let side = self.pull_left_next;
                    self.pull_left_next = !side;
                    side
                }
            }
            PullStrategy::Adaptive => {
                if self.lstate.exhausted {
                    false
                } else if self.rstate.exhausted || self.lstate.top1.is_none() {
                    // Right done, or the left head is still unknown: the
                    // corner bounds are meaningless until both heads are
                    // seen, so fetch left first (same order as the row
                    // join).
                    true
                } else if self.rstate.top1.is_none() {
                    false
                } else {
                    let tl = self.lstate.bound_with(self.rstate.top1);
                    let tr = self.rstate.bound_with(self.lstate.top1);
                    match (tl, tr) {
                        (Some(a), Some(b)) => a >= b,
                        (Some(_), None) => true,
                        _ => false,
                    }
                }
            }
        };

        let (src, dst, probe) = if pull_left {
            (&mut self.left, &mut self.lstate, &self.rstate)
        } else {
            (&mut self.right, &mut self.rstate, &self.lstate)
        };

        let Some(block) = src.next_block() else {
            dst.exhausted = true;
            return;
        };
        let rows = block.len();
        self.metrics.count_sorted_accesses(rows as u64);
        if dst.top1.is_none() && rows > 0 {
            dst.top1 = Some(block.score(0));
        }
        if rows > 0 {
            dst.cur = Some(block.score(rows - 1));
        }

        let out_width = self.out_schema.len();
        let mut scratch: Vec<TermId> = vec![TermId(0); out_width];
        let mut results = 0u64;
        let mut probes = 0u64;
        for i in 0..rows {
            let row = block.row(i);
            let score = block.score(i);
            let key = key_of(row, &dst.key_idx);
            if let Some(partners) = probe.hash.get(&key) {
                for &pi in partners {
                    probes += 1;
                    let partner = probe.row(pi);
                    // Assemble the merged row positionally: partner columns
                    // first, then this side's (shared slots overwrite with
                    // equal values).
                    for (j, &t) in partner.iter().enumerate() {
                        scratch[probe.out_map[j]] = t;
                    }
                    for (j, &t) in row.iter().enumerate() {
                        scratch[dst.out_map[j]] = t;
                    }
                    self.output.push(HeapRow {
                        score: score + probe.scores[pi as usize],
                        terms: scratch.as_slice().into(),
                    });
                    results += 1;
                }
            }
            let idx = dst.scores.len() as u32;
            dst.terms.extend_from_slice(row);
            dst.scores.push(score);
            dst.hash.entry(key).or_default().push(idx);
        }
        self.metrics.count_random_accesses(probes);
        self.metrics.count_answers(results);
        self.metrics.count_heap_pushes(results);
    }
}

impl BlockStream for BlockRankJoin<'_> {
    fn schema(&self) -> &[Var] {
        &self.out_schema
    }

    /// Strict-threshold emission (`top > T`), mirroring
    /// [`RankJoin::next`](crate::RankJoin): ties are fully queued before any
    /// is emitted, so the drain below pops them in the canonical
    /// (score desc, binding asc) order regardless of pull granularity.
    fn next_block(&mut self) -> Option<AnswerBlock> {
        loop {
            let t = self.threshold();
            match (self.output.peek(), t) {
                (Some(top), Some(t)) if top.score <= t => self.pull_block(),
                (Some(_), bound) => {
                    // Drain every emittable result (threshold can't move
                    // while we're not pulling), up to the block size.
                    let n = self.sizer.take();
                    let mut out = AnswerBlock::with_capacity(self.out_schema.clone(), n);
                    while out.len() < n {
                        match self.output.peek() {
                            Some(top) if bound.is_none_or(|t| top.score > t) => {
                                let row = self.output.pop().expect("peeked");
                                out.push_row(&row.terms, row.score);
                            }
                            _ => break,
                        }
                    }
                    return Some(out);
                }
                (None, None) => return None,
                (None, Some(_)) => self.pull_block(),
            }
        }
    }

    fn upper_bound(&self) -> Option<Score> {
        let heap_top = self.output.peek().map(|a| a.score);
        match (heap_top, self.threshold()) {
            (None, None) => None,
            (Some(h), None) => Some(h),
            (None, Some(t)) => Some(t),
            (Some(h), Some(t)) => Some(h.max(t)),
        }
    }
}

/// Block-at-a-time incremental merge: same max-score deduplication and
/// emission order as [`IncrementalMerge`](crate::IncrementalMerge) — ties
/// across inputs resolve to the earliest input — but heads advance through
/// buffered blocks and the dedup set stores packed term keys instead of
/// cloned [`Binding`](crate::Binding)s.
///
/// All inputs must share one schema (a pattern and its relaxations bind the
/// same variables).
pub struct BlockIncrementalMerge<'g> {
    inputs: Vec<BoxedBlockStream<'g>>,
    /// Buffered current block + cursor per input (`None` = exhausted).
    bufs: Vec<Option<(AnswerBlock, usize)>>,
    schema: Vec<Var>,
    all_idx: Vec<usize>,
    seen: FxHashSet<Key>,
    sizer: BlockSizer,
}

impl<'g> BlockIncrementalMerge<'g> {
    /// Builds a merge over `inputs`, emitting blocks of up to `block_size`
    /// rows.
    ///
    /// # Panics
    /// Panics if the inputs' schemas differ.
    pub fn new(mut inputs: Vec<BoxedBlockStream<'g>>, block_size: usize) -> Self {
        let schema: Vec<Var> = inputs
            .first()
            .map(|s| s.schema().to_vec())
            .unwrap_or_default();
        for s in &inputs {
            assert_eq!(s.schema(), schema.as_slice(), "merge inputs share a schema");
        }
        let bufs = inputs
            .iter_mut()
            .map(|s| s.next_block().map(|b| (b, 0)))
            .collect();
        BlockIncrementalMerge {
            inputs,
            bufs,
            all_idx: (0..schema.len()).collect(),
            schema,
            seen: FxHashSet::default(),
            sizer: BlockSizer::new(block_size),
        }
    }

    /// Index of the input whose buffered head has the maximum score
    /// (earliest input wins ties, as in the row merge), plus the best head
    /// score among the *other* inputs — everything the winner's head run
    /// can be emitted against without re-scanning all heads per row.
    fn best_input(&self) -> Option<(usize, Option<Score>)> {
        let mut best: Option<(usize, Score)> = None;
        let mut second: Option<Score> = None;
        for (i, buf) in self.bufs.iter().enumerate() {
            if let Some((block, cursor)) = buf {
                let score = block.score(*cursor);
                match best {
                    Some((_, cur)) if cur >= score => match second {
                        Some(s) if s >= score => {}
                        _ => second = Some(score),
                    },
                    prev => {
                        second = prev.map(|(_, s)| s);
                        best = Some((i, score));
                    }
                }
            }
        }
        best.map(|(i, _)| (i, second))
    }
}

impl BlockStream for BlockIncrementalMerge<'_> {
    fn schema(&self) -> &[Var] {
        &self.schema
    }

    fn next_block(&mut self) -> Option<AnswerBlock> {
        let n = self.sizer.take();
        let mut out = AnswerBlock::with_capacity(self.schema.clone(), n);
        while out.len() < n {
            let Some((i, second)) = self.best_input() else {
                break;
            };
            // Emit the winner's whole run in one tight loop: every row
            // scoring strictly above the best other head comes from input
            // `i` next, so the per-row head scan is amortized away. Ties
            // with `second` fall back to single-row steps, preserving the
            // row merge's earliest-input-wins order exactly.
            let (block, cursor) = self.bufs[i].as_mut().expect("best input is buffered");
            let mut advanced = *cursor;
            while advanced < block.len() && out.len() < n {
                let score = block.score(advanced);
                if advanced > *cursor && second.is_some_and(|s| score <= s) {
                    break;
                }
                let row = block.row(advanced);
                if self.seen.insert(key_of(row, &self.all_idx)) {
                    out.push_row(row, score);
                }
                // Duplicate binding from a lower-weighted relaxation: skip —
                // the earlier emission already carried the maximum score.
                advanced += 1;
            }
            *cursor = advanced;
            if *cursor >= block.len() {
                self.bufs[i] = self.inputs[i].next_block().map(|b| (b, 0));
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    fn upper_bound(&self) -> Option<Score> {
        self.bufs
            .iter()
            .flatten()
            .map(|(block, cursor)| block.score(*cursor))
            .max()
    }
}

/// Block-at-a-time NRJN: the storage-free nested-loops rank join over two
/// materialized [`AnswerBlock`]s. Keeps NRJN's threshold and re-scan
/// semantics, but exposes rows to the join a block at a time and matches
/// bindings by comparing key columns directly — no per-probe key
/// allocation at all.
pub struct BlockNestedLoopsRankJoin {
    left: AnswerBlock,
    right: AnswerBlock,
    lkey: Vec<usize>,
    rkey: Vec<usize>,
    lmap: Vec<usize>,
    rmap: Vec<usize>,
    lseen: usize,
    rseen: usize,
    out_schema: Vec<Var>,
    output: BinaryHeap<HeapRow>,
    pull_left_next: bool,
    block_size: usize,
    metrics: MetricsHandle,
}

impl BlockNestedLoopsRankJoin {
    /// Creates the join; inputs must be sorted by non-increasing score.
    pub fn new(
        left: AnswerBlock,
        right: AnswerBlock,
        join_vars: Vec<Var>,
        metrics: MetricsHandle,
        block_size: usize,
    ) -> Self {
        let mut out_schema: Vec<Var> = left.schema().to_vec();
        for &v in right.schema() {
            if !out_schema.contains(&v) {
                out_schema.push(v);
            }
        }
        out_schema.sort_unstable();
        let pos = |schema: &[Var], v: Var| {
            schema
                .iter()
                .position(|&w| w == v)
                .expect("join variables must appear in both schemas")
        };
        let map = |schema: &[Var]| -> Vec<usize> {
            schema
                .iter()
                .map(|v| out_schema.iter().position(|w| w == v).expect("subset"))
                .collect()
        };
        BlockNestedLoopsRankJoin {
            lkey: join_vars.iter().map(|&v| pos(left.schema(), v)).collect(),
            rkey: join_vars.iter().map(|&v| pos(right.schema(), v)).collect(),
            lmap: map(left.schema()),
            rmap: map(right.schema()),
            left,
            right,
            lseen: 0,
            rseen: 0,
            out_schema,
            output: BinaryHeap::new(),
            pull_left_next: true,
            block_size: block_size.max(1),
            metrics,
        }
    }

    fn threshold(&self) -> Option<Score> {
        if self.left.is_empty() || self.right.is_empty() {
            return None;
        }
        let cur = |block: &AnswerBlock, seen: usize| {
            if seen == 0 {
                Score::new(f64::INFINITY)
            } else {
                block.score(seen - 1)
            }
        };
        let tl = (self.lseen < self.left.len())
            .then(|| cur(&self.left, self.lseen) + self.right.score(0));
        let tr = (self.rseen < self.right.len())
            .then(|| cur(&self.right, self.rseen) + self.left.score(0));
        match (tl, tr) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.max(b)),
        }
    }

    /// Exposes up to `block_size` new rows from one side and re-scans the
    /// other side's seen prefix for key matches.
    fn pull_block(&mut self) {
        let l_more = self.lseen < self.left.len();
        let r_more = self.rseen < self.right.len();
        let pull_left = if !l_more {
            false
        } else if !r_more {
            true
        } else {
            let side = self.pull_left_next;
            self.pull_left_next = !side;
            side
        };

        let (new_side, new_from, new_to, new_key, old_side, old_seen, old_key) = if pull_left {
            let to = (self.lseen + self.block_size).min(self.left.len());
            let from = self.lseen;
            self.lseen = to;
            (
                &self.left,
                from,
                to,
                &self.lkey,
                &self.right,
                self.rseen,
                &self.rkey,
            )
        } else {
            let to = (self.rseen + self.block_size).min(self.right.len());
            let from = self.rseen;
            self.rseen = to;
            (
                &self.right,
                from,
                to,
                &self.rkey,
                &self.left,
                self.lseen,
                &self.lkey,
            )
        };
        let (new_map, old_map) = if pull_left {
            (&self.lmap, &self.rmap)
        } else {
            (&self.rmap, &self.lmap)
        };

        let out_width = self.out_schema.len();
        let mut scratch: Vec<TermId> = vec![TermId(0); out_width];
        let mut probes = 0u64;
        let mut results = 0u64;
        for i in new_from..new_to {
            let row = new_side.row(i);
            for j in 0..old_seen {
                probes += 1;
                let other = old_side.row(j);
                if new_key
                    .iter()
                    .zip(old_key.iter())
                    .all(|(&a, &b)| row[a] == other[b])
                {
                    for (c, &t) in other.iter().enumerate() {
                        scratch[old_map[c]] = t;
                    }
                    for (c, &t) in row.iter().enumerate() {
                        scratch[new_map[c]] = t;
                    }
                    self.output.push(HeapRow {
                        score: new_side.score(i) + old_side.score(j),
                        terms: scratch.as_slice().into(),
                    });
                    results += 1;
                }
            }
        }
        self.metrics
            .count_sorted_accesses((new_to - new_from) as u64);
        self.metrics.count_random_accesses(probes);
        self.metrics.count_answers(results);
        self.metrics.count_heap_pushes(results);
    }
}

impl BlockStream for BlockNestedLoopsRankJoin {
    fn schema(&self) -> &[Var] {
        &self.out_schema
    }

    /// Strict-threshold emission — see
    /// [`BlockRankJoin::next_block`](BlockRankJoin).
    fn next_block(&mut self) -> Option<AnswerBlock> {
        loop {
            let t = self.threshold();
            match (self.output.peek(), t) {
                (Some(top), Some(t)) if top.score <= t => self.pull_block(),
                (Some(_), bound) => {
                    let mut out =
                        AnswerBlock::with_capacity(self.out_schema.clone(), self.block_size);
                    while out.len() < self.block_size {
                        match self.output.peek() {
                            Some(top) if bound.is_none_or(|t| top.score > t) => {
                                let row = self.output.pop().expect("peeked");
                                out.push_row(&row.terms, row.score);
                            }
                            _ => break,
                        }
                    }
                    return Some(out);
                }
                (None, None) => return None,
                (None, Some(_)) => self.pull_block(),
            }
        }
    }

    fn upper_bound(&self) -> Option<Score> {
        let heap_top = self.output.peek().map(|a| a.score);
        match (heap_top, self.threshold()) {
            (None, None) => None,
            (Some(h), None) => Some(h),
            (None, Some(t)) => Some(t),
            (Some(h), Some(t)) => Some(h.max(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::{Binding, PartialAnswer};
    use crate::block::{top_k_blocks, RowsToBlocks};
    use crate::metrics::OpMetrics;
    use crate::nrjn::NestedLoopsRankJoin;
    use crate::rank_join::RankJoin;
    use crate::stream::{materialize, VecStream};

    fn ans(pairs: &[(u32, u32)], s: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(pairs.iter().map(|&(v, t)| (Var(v), TermId(t))).collect()),
            Score::new(s),
        )
    }

    fn simple(join_val: u32, score: f64) -> PartialAnswer {
        ans(&[(0, join_val)], score)
    }

    fn block_of(rows: &[PartialAnswer], vars: &[u32], size: usize) -> RowsToBlocks<'static> {
        RowsToBlocks::new(
            Box::new(VecStream::new(rows.to_vec())),
            vars.iter().map(|&v| Var(v)).collect(),
            size,
        )
    }

    fn drain<S: BlockStream>(mut s: S) -> Vec<PartialAnswer> {
        let mut out = Vec::new();
        while let Some(b) = s.next_block() {
            out.extend(b.to_answers());
        }
        out
    }

    #[test]
    fn key_packing_matches_wide() {
        let row = [TermId(7), TermId(9), TermId(1)];
        assert_eq!(
            key_of(&row, &[0, 2]),
            key_of(&[TermId(7), TermId(0), TermId(1)], &[0, 2])
        );
        assert_ne!(key_of(&row, &[0, 2]), key_of(&row, &[2, 0]));
        let wide_idx: Vec<usize> = vec![0, 1, 2, 0, 1];
        assert!(matches!(key_of(&row, &wide_idx), Key::Wide(_)));
    }

    #[test]
    fn block_join_matches_row_join_all_strategies_and_sizes() {
        let l: Vec<_> = (0..60)
            .map(|i| simple(i % 7, 1.0 - f64::from(i) * 0.01))
            .collect();
        let r: Vec<_> = (0..60)
            .map(|i| simple(i % 7, 1.0 - f64::from(i) * 0.013))
            .collect();
        for strategy in [PullStrategy::Alternate, PullStrategy::Adaptive] {
            let want = materialize(RankJoin::new(
                Box::new(VecStream::new(l.clone())),
                Box::new(VecStream::new(r.clone())),
                vec![Var(0)],
                strategy,
                OpMetrics::new_handle(),
            ));
            for size in [1, 7, 64] {
                let join = BlockRankJoin::new(
                    Box::new(block_of(&l, &[0], size)),
                    Box::new(block_of(&r, &[0], size)),
                    vec![Var(0)],
                    strategy,
                    OpMetrics::new_handle(),
                    size,
                );
                assert_eq!(drain(join), want, "strategy {strategy:?} size {size}");
            }
        }
    }

    #[test]
    fn block_join_merges_disjoint_side_vars() {
        let l = vec![ans(&[(0, 1), (1, 100)], 1.0)];
        let r = vec![ans(&[(0, 1), (2, 200)], 0.5)];
        let join = BlockRankJoin::new(
            Box::new(block_of(&l, &[0, 1], 8)),
            Box::new(block_of(&r, &[0, 2], 8)),
            vec![Var(0)],
            PullStrategy::Alternate,
            OpMetrics::new_handle(),
            8,
        );
        let out = drain(join);
        assert_eq!(out, vec![ans(&[(0, 1), (1, 100), (2, 200)], 1.5)]);
    }

    #[test]
    fn block_join_empty_side() {
        let join = BlockRankJoin::new(
            Box::new(block_of(&[], &[0], 4)),
            Box::new(block_of(&[simple(1, 1.0)], &[0], 4)),
            vec![Var(0)],
            PullStrategy::Adaptive,
            OpMetrics::new_handle(),
            4,
        );
        assert!(drain(join).is_empty());
    }

    #[test]
    fn block_join_cross_product_when_no_join_vars() {
        let l = vec![ans(&[(1, 10)], 1.0), ans(&[(1, 11)], 0.5)];
        let r = vec![ans(&[(2, 20)], 0.9)];
        let join = BlockRankJoin::new(
            Box::new(block_of(&l, &[1], 4)),
            Box::new(block_of(&r, &[2], 4)),
            vec![],
            PullStrategy::Alternate,
            OpMetrics::new_handle(),
            4,
        );
        let out = drain(join);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].score, Score::new(1.9));
        assert_eq!(out[1].score, Score::new(1.4));
    }

    #[test]
    fn block_join_upper_bound_never_underestimates() {
        let l: Vec<_> = (0..20)
            .map(|i| simple(i % 5, 1.0 - f64::from(i) * 0.04))
            .collect();
        let r: Vec<_> = (0..20)
            .map(|i| simple(i % 5, 1.0 - f64::from(i) * 0.03))
            .collect();
        let mut join = BlockRankJoin::new(
            Box::new(block_of(&l, &[0], 4)),
            Box::new(block_of(&r, &[0], 4)),
            vec![Var(0)],
            PullStrategy::Alternate,
            OpMetrics::new_handle(),
            4,
        );
        loop {
            let bound = join.upper_bound();
            match join.next_block() {
                Some(b) => {
                    let bound = bound.expect("bound exists while answers remain");
                    assert!(bound >= b.score(0), "{bound:?} < {:?}", b.score(0));
                }
                None => break,
            }
        }
    }

    #[test]
    fn block_merge_matches_row_merge_with_dedup() {
        use crate::incr_merge::IncrementalMerge;
        let a = vec![
            ans(&[(0, 7)], 1.0),
            ans(&[(0, 1)], 0.9),
            ans(&[(0, 3)], 0.2),
        ];
        let b = vec![ans(&[(0, 7)], 0.8), ans(&[(0, 2)], 0.5)];
        let want = materialize(IncrementalMerge::new(vec![
            Box::new(VecStream::new(a.clone())),
            Box::new(VecStream::new(b.clone())),
        ]));
        for size in [1, 2, 64] {
            let merge = BlockIncrementalMerge::new(
                vec![
                    Box::new(block_of(&a, &[0], size)),
                    Box::new(block_of(&b, &[0], size)),
                ],
                size,
            );
            assert_eq!(drain(merge), want, "size {size}");
        }
    }

    #[test]
    fn block_merge_empty_inputs() {
        let mut m = BlockIncrementalMerge::new(vec![], 4);
        assert!(m.next_block().is_none());
        assert_eq!(m.upper_bound(), None);
        let mut m2 = BlockIncrementalMerge::new(
            vec![
                Box::new(block_of(&[], &[0], 4)) as BoxedBlockStream<'static>,
                Box::new(block_of(&[], &[0], 4)),
            ],
            4,
        );
        assert!(m2.next_block().is_none());
    }

    #[test]
    fn block_nrjn_agrees_with_row_nrjn() {
        let l: Vec<_> = (0..40)
            .map(|i| simple(i % 6, 1.0 - f64::from(i) * 0.02))
            .collect();
        let r: Vec<_> = (0..40)
            .map(|i| simple(i % 6, 1.0 - f64::from(i) * 0.025))
            .collect();
        let want = materialize(NestedLoopsRankJoin::new(
            l.clone(),
            r.clone(),
            vec![Var(0)],
            OpMetrics::new_handle(),
        ));
        let to_block = |rows: &[PartialAnswer]| {
            let mut b = AnswerBlock::new(vec![Var(0)]);
            for a in rows {
                b.push_row(&[a.binding.get(Var(0)).unwrap()], a.score);
            }
            b
        };
        for size in [1, 3, 64] {
            let m = OpMetrics::new_handle();
            let join =
                BlockNestedLoopsRankJoin::new(to_block(&l), to_block(&r), vec![Var(0)], m, size);
            let got = drain(join);
            assert_eq!(got.len(), want.len(), "size {size}");
            for (x, y) in got.iter().zip(&want) {
                assert_eq!(x.score, y.score, "size {size}");
            }
        }
    }

    #[test]
    fn block_top_k_over_join() {
        let l: Vec<_> = (0..100)
            .map(|i| simple(i, 1.0 - f64::from(i) * 0.005))
            .collect();
        let r: Vec<_> = (0..100)
            .map(|i| simple(i, 1.0 - f64::from(i) * 0.005))
            .collect();
        let mut join = BlockRankJoin::new(
            Box::new(block_of(&l, &[0], 16)),
            Box::new(block_of(&r, &[0], 16)),
            vec![Var(0)],
            PullStrategy::Adaptive,
            OpMetrics::new_handle(),
            16,
        );
        let top = top_k_blocks(&mut join, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].score, Score::new(2.0));
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
