//! Morsel-driven work distribution for intra-query parallelism.
//!
//! A [`MorselDispenser`] slices one pattern's rank range `0..total` into
//! fixed-size *morsels* and hands them out through a single atomic cursor.
//! Every parallel worker owns a private operator tree whose partitioned
//! [`BlockScan`](crate::BlockScan) pulls morsels from the shared dispenser
//! as it drains them — workers that finish cheap morsels immediately steal
//! the next one, so skew in the score distribution balances itself without
//! any static assignment.
//!
//! Because morsels are claimed in ascending rank order and match lists are
//! score-descending, every claim sequence a worker observes is itself
//! score-descending — the [`BlockStream`](crate::BlockStream) bound
//! contract survives partitioning unchanged.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default morsel granularity cap in rows. Small enough that one morsel's
/// gather stays cache-resident, large enough that the atomic claim is noise.
pub const DEFAULT_MORSEL_ROWS: usize = 8192;

/// Atomic hand-out of fixed-size rank ranges over `0..total`.
///
/// ```
/// use operators::MorselDispenser;
///
/// let d = MorselDispenser::new(10, 4);
/// assert_eq!(d.claim(), Some(0..4));
/// assert_eq!(d.claim(), Some(4..8));
/// assert_eq!(d.claim(), Some(8..10));
/// assert_eq!(d.claim(), None);
/// ```
#[derive(Debug)]
pub struct MorselDispenser {
    cursor: AtomicUsize,
    total: usize,
    morsel: usize,
}

impl MorselDispenser {
    /// A dispenser over `0..total` handing out ranges of up to `morsel`
    /// rows (clamped to at least 1).
    pub fn new(total: usize, morsel: usize) -> Self {
        MorselDispenser {
            cursor: AtomicUsize::new(0),
            total,
            morsel: morsel.max(1),
        }
    }

    /// A dispenser sized for `workers` consumers: roughly four morsels per
    /// worker (so stealing has slack to balance skew), capped at
    /// [`DEFAULT_MORSEL_ROWS`].
    pub fn for_workers(total: usize, workers: usize) -> Self {
        let per = total.div_ceil(workers.max(1) * 4);
        MorselDispenser::new(total, per.clamp(1, DEFAULT_MORSEL_ROWS))
    }

    /// Total number of rows being dispensed.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Claims the next unclaimed rank range, or `None` when `0..total` has
    /// been fully handed out. Each row is claimed exactly once across all
    /// callers.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.cursor.fetch_add(self.morsel, Ordering::Relaxed);
        if start >= self.total {
            None
        } else {
            Some(start..(start + self.morsel).min(self.total))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn covers_range_exactly_once() {
        let d = MorselDispenser::new(100, 7);
        let mut seen = [false; 100];
        while let Some(r) = d.claim() {
            for i in r {
                assert!(!seen[i], "row {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(d.claim(), None, "exhausted dispenser stays exhausted");
    }

    #[test]
    fn empty_range_yields_nothing() {
        let d = MorselDispenser::new(0, 8);
        assert_eq!(d.claim(), None);
    }

    #[test]
    fn for_workers_scales_morsel_size() {
        assert_eq!(MorselDispenser::for_workers(100, 4).morsel, 7);
        assert_eq!(MorselDispenser::for_workers(3, 8).morsel, 1);
        assert_eq!(
            MorselDispenser::for_workers(10_000_000, 4).morsel,
            DEFAULT_MORSEL_ROWS
        );
    }

    #[test]
    fn concurrent_claims_partition_the_range() {
        let d = Arc::new(MorselDispenser::new(10_000, 13));
        let mut claimed: Vec<Range<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let d = Arc::clone(&d);
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(r) = d.claim() {
                            mine.push(r);
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        claimed.sort_by_key(|r| r.start);
        let mut next = 0;
        for r in claimed {
            assert_eq!(r.start, next, "gap or overlap at {next}");
            next = r.end;
        }
        assert_eq!(next, 10_000);
    }
}
