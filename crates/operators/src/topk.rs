//! Top-k collection from a ranked stream.

use crate::answer::{Binding, PartialAnswer};
use crate::stream::RankedStream;
use sparql::Var;
use specqp_common::FxHashSet;

/// Pulls the first `k` answers. Because [`RankedStream`]s produce answers in
/// non-increasing order, these are exactly the top-k; the early-termination
/// logic lives inside the operators, which only consume as much of their
/// inputs as the bounds require.
pub fn top_k<S: RankedStream + ?Sized>(stream: &mut S, k: usize) -> Vec<PartialAnswer> {
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        match stream.next() {
            Some(a) => out.push(a),
            None => break,
        }
    }
    out
}

/// Pulls answers until `k` *distinct projections* onto `vars` have been
/// collected; each projected result keeps the score of its best underlying
/// answer (max semantics — duplicates arrive later and are dropped).
pub fn top_k_projected<S: RankedStream + ?Sized>(
    stream: &mut S,
    k: usize,
    vars: &[Var],
) -> Vec<PartialAnswer> {
    let mut out: Vec<PartialAnswer> = Vec::with_capacity(k);
    let mut seen: FxHashSet<Binding> = FxHashSet::default();
    while out.len() < k {
        match stream.next() {
            Some(a) => {
                let projected = a.binding.project(vars);
                if seen.insert(projected.clone()) {
                    out.push(PartialAnswer::new(projected, a.score));
                }
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::VecStream;
    use specqp_common::{Score, TermId};

    fn ans(pairs: &[(u32, u32)], s: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(pairs.iter().map(|&(v, t)| (Var(v), TermId(t))).collect()),
            Score::new(s),
        )
    }

    #[test]
    fn top_k_truncates() {
        let mut s = VecStream::new(vec![
            ans(&[(0, 1)], 0.9),
            ans(&[(0, 2)], 0.8),
            ans(&[(0, 3)], 0.7),
        ]);
        let out = top_k(&mut s, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].score.value(), 0.9);
    }

    #[test]
    fn top_k_handles_short_streams() {
        let mut s = VecStream::new(vec![ans(&[(0, 1)], 0.9)]);
        assert_eq!(top_k(&mut s, 10).len(), 1);
        assert_eq!(top_k(&mut s, 10).len(), 0);
    }

    #[test]
    fn projection_dedups_with_max_semantics() {
        // Two answers project to the same ?0; the higher-scoring one (first)
        // wins. The third distinct projection fills k=2.
        let mut s = VecStream::new(vec![
            ans(&[(0, 1), (1, 10)], 0.9),
            ans(&[(0, 1), (1, 11)], 0.8),
            ans(&[(0, 2), (1, 12)], 0.7),
        ]);
        let out = top_k_projected(&mut s, 2, &[Var(0)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].binding.get(Var(0)), Some(TermId(1)));
        assert_eq!(out[0].score.value(), 0.9);
        assert_eq!(out[1].binding.get(Var(0)), Some(TermId(2)));
    }
}
