//! Top-k collection from a ranked stream.

use crate::answer::{Binding, PartialAnswer};
use crate::stream::RankedStream;
use sparql::Var;
use specqp_common::FxHashSet;

/// Collects the top-`k` answers under the canonical total order
/// (score desc, binding asc). Because [`RankedStream`]s produce answers in
/// non-increasing score order, the first `k` pulls reach the score floor;
/// answers tied *at* the floor are then drained so the boundary is resolved
/// by binding rather than by incidental stream position — every executor
/// (row, block, morsel-parallel) truncates the same total order and returns
/// the same answer set in the same order. The early-termination logic lives
/// inside the operators, which only consume as much of their inputs as the
/// bounds require.
pub fn top_k<S: RankedStream + ?Sized>(stream: &mut S, k: usize) -> Vec<PartialAnswer> {
    let mut out = Vec::with_capacity(k);
    if k == 0 {
        return out;
    }
    while let Some(a) = stream.next() {
        // `out` is in non-increasing score order, so once it holds `k`
        // answers `out[k - 1]` carries the floor; only floor ties may still
        // belong to the canonical top-k.
        if out.len() >= k && a.score != out[k - 1].score {
            break;
        }
        out.push(a);
    }
    out.sort_by(|a, b| b.cmp(a));
    out.truncate(k);
    out
}

/// Pulls answers until `k` *distinct projections* onto `vars` have been
/// collected; each projected result keeps the score of its best underlying
/// answer (max semantics — duplicates arrive later and are dropped).
pub fn top_k_projected<S: RankedStream + ?Sized>(
    stream: &mut S,
    k: usize,
    vars: &[Var],
) -> Vec<PartialAnswer> {
    let mut out: Vec<PartialAnswer> = Vec::with_capacity(k);
    let mut seen: FxHashSet<Binding> = FxHashSet::default();
    while out.len() < k {
        match stream.next() {
            Some(a) => {
                let projected = a.binding.project(vars);
                if seen.insert(projected.clone()) {
                    out.push(PartialAnswer::new(projected, a.score));
                }
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::VecStream;
    use specqp_common::{Score, TermId};

    fn ans(pairs: &[(u32, u32)], s: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(pairs.iter().map(|&(v, t)| (Var(v), TermId(t))).collect()),
            Score::new(s),
        )
    }

    #[test]
    fn top_k_truncates() {
        let mut s = VecStream::new(vec![
            ans(&[(0, 1)], 0.9),
            ans(&[(0, 2)], 0.8),
            ans(&[(0, 3)], 0.7),
        ]);
        let out = top_k(&mut s, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].score.value(), 0.9);
    }

    #[test]
    fn top_k_handles_short_streams() {
        let mut s = VecStream::new(vec![ans(&[(0, 1)], 0.9)]);
        assert_eq!(top_k(&mut s, 10).len(), 1);
        assert_eq!(top_k(&mut s, 10).len(), 0);
    }

    #[test]
    fn projection_dedups_with_max_semantics() {
        // Two answers project to the same ?0; the higher-scoring one (first)
        // wins. The third distinct projection fills k=2.
        let mut s = VecStream::new(vec![
            ans(&[(0, 1), (1, 10)], 0.9),
            ans(&[(0, 1), (1, 11)], 0.8),
            ans(&[(0, 2), (1, 12)], 0.7),
        ]);
        let out = top_k_projected(&mut s, 2, &[Var(0)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].binding.get(Var(0)), Some(TermId(1)));
        assert_eq!(out[0].score.value(), 0.9);
        assert_eq!(out[1].binding.get(Var(0)), Some(TermId(2)));
    }
}
