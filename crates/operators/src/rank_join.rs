//! The HRJN hash rank join (Ilyas et al., VLDB'03; refs \[15,16,17\]).
//!
//! A rank join consumes two descending [`RankedStream`]s and produces the
//! join results in descending order of the score sum, pulling as few input
//! tuples as possible. It maintains:
//!
//! * a hash table per input keyed by the join variables,
//! * the *corner bound* threshold
//!   `T = max(top₁(L) + cur(R), cur(L) + top₁(R))` — no unseen combination
//!   can score above `T`,
//! * a priority queue of join results found so far; a result is emitted once
//!   its score is ≥ `T`.
//!
//! The pull order is a [`PullStrategy`]: strict alternation (classic HRJN)
//! or the adaptive strategy of HRJN\* that always pulls from the input
//! currently responsible for the larger corner-bound term, which tightens
//! `T` fastest.

use crate::answer::PartialAnswer;
use crate::metrics::MetricsHandle;
use crate::stream::{BoxedStream, RankedStream};
use sparql::Var;
use specqp_common::{FxHashMap, Score, TermId};
use std::collections::BinaryHeap;

/// Which input a rank join pulls from next.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PullStrategy {
    /// Strict left/right alternation (classic HRJN).
    #[default]
    Alternate,
    /// Pull from the side whose corner-bound term is larger (HRJN\*).
    Adaptive,
}

#[derive(Default)]
struct Side {
    hash: FxHashMap<Box<[TermId]>, Vec<PartialAnswer>>,
    /// Score of the first tuple ever pulled (top₁).
    top1: Option<Score>,
    /// Score of the most recent tuple pulled (cur).
    cur: Option<Score>,
    exhausted: bool,
    pulled: u64,
}

impl Side {
    /// The corner-bound term where this side contributes `cur` and the
    /// other side contributes `top₁`. `None` = no future result can involve
    /// an unseen tuple of this side.
    fn bound_with(&self, other_top1: Option<Score>) -> Option<Score> {
        if self.exhausted {
            return None;
        }
        match (self.cur, other_top1) {
            // Nothing pulled here yet: unbounded until we see the head —
            // callers treat `Score::new(f64::INFINITY)` as "must pull".
            (None, _) => Some(Score::new(f64::INFINITY)),
            // Other side never produced anything *and is done*: handled by
            // caller via exhaustion checks; a plain missing top₁ means it
            // may still produce, so stay conservative.
            (Some(cur), Some(top1)) => Some(cur + top1),
            (Some(_), None) => Some(Score::new(f64::INFINITY)),
        }
    }
}

/// Binary hash rank join over two descending streams.
pub struct RankJoin<'g> {
    left: BoxedStream<'g>,
    right: BoxedStream<'g>,
    lstate: Side,
    rstate: Side,
    join_vars: Vec<Var>,
    output: BinaryHeap<PartialAnswer>,
    strategy: PullStrategy,
    pull_left_next: bool,
    metrics: MetricsHandle,
}

impl<'g> RankJoin<'g> {
    /// Creates a rank join of `left ⋈ right` on `join_vars` (the variables
    /// shared by the two inputs; an empty list yields a ranked cross
    /// product).
    pub fn new(
        left: BoxedStream<'g>,
        right: BoxedStream<'g>,
        join_vars: Vec<Var>,
        strategy: PullStrategy,
        metrics: MetricsHandle,
    ) -> Self {
        RankJoin {
            left,
            right,
            lstate: Side::default(),
            rstate: Side::default(),
            join_vars,
            output: BinaryHeap::new(),
            strategy,
            pull_left_next: true,
            metrics,
        }
    }

    /// Total tuples pulled from both inputs (diagnostics / tests of early
    /// termination).
    pub fn tuples_pulled(&self) -> u64 {
        self.lstate.pulled + self.rstate.pulled
    }

    /// The corner-bound threshold: max over the two one-sided bounds;
    /// `None` when no unseen combination remains.
    fn threshold(&self) -> Option<Score> {
        // A future result needs an unseen tuple from at least one side.
        // Respect sides that produced nothing at all (top1 = None): if a
        // side is exhausted with top1 = None, no join result can ever exist.
        if (self.lstate.exhausted && self.lstate.top1.is_none())
            || (self.rstate.exhausted && self.rstate.top1.is_none())
        {
            return None;
        }
        let tl = self.lstate.bound_with(self.rstate.top1);
        let tr = self.rstate.bound_with(self.lstate.top1);
        match (tl, tr) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.max(b)),
        }
    }

    /// Pulls one tuple from the chosen side, updates bounds, probes the
    /// other hash table and enqueues any join results.
    fn pull_once(&mut self) {
        let pull_left = match self.strategy {
            PullStrategy::Alternate => {
                if self.lstate.exhausted {
                    false
                } else if self.rstate.exhausted {
                    true
                } else {
                    let side = self.pull_left_next;
                    self.pull_left_next = !side;
                    side
                }
            }
            PullStrategy::Adaptive => {
                if self.lstate.exhausted {
                    false
                } else if self.rstate.exhausted {
                    true
                } else if self.lstate.top1.is_none() {
                    // Both corner-bound terms are meaningless until each
                    // side's head score is known — fetch the heads first.
                    true
                } else if self.rstate.top1.is_none() {
                    false
                } else {
                    let tl = self.lstate.bound_with(self.rstate.top1);
                    let tr = self.rstate.bound_with(self.lstate.top1);
                    // The larger term is reduced by pulling from the side
                    // whose `cur` appears in it; `bound_with(self=L)` uses
                    // cur(L), so pull left when its term is the max.
                    match (tl, tr) {
                        (Some(a), Some(b)) => a >= b,
                        (Some(_), None) => true,
                        _ => false,
                    }
                }
            }
        };

        let (src, dst_state, probe_state) = if pull_left {
            (&mut self.left, &mut self.lstate, &self.rstate)
        } else {
            (&mut self.right, &mut self.rstate, &self.lstate)
        };

        let Some(tuple) = src.next() else {
            dst_state.exhausted = true;
            return;
        };
        self.metrics.count_sorted_access();
        dst_state.pulled += 1;
        if dst_state.top1.is_none() {
            dst_state.top1 = Some(tuple.score);
        }
        dst_state.cur = Some(tuple.score);

        let key = tuple
            .binding
            .key_for(&self.join_vars)
            .expect("join variables must be bound on both inputs");

        // Probe the opposite table and enqueue results.
        if let Some(partners) = probe_state.hash.get(&key) {
            for p in partners {
                self.metrics.count_random_access();
                let merged =
                    PartialAnswer::new(tuple.binding.merged(&p.binding), tuple.score + p.score);
                self.metrics.count_answer();
                self.metrics.count_heap_push();
                self.output.push(merged);
            }
        }
        dst_state.hash.entry(key).or_default().push(tuple);
    }
}

impl RankedStream for RankJoin<'_> {
    /// Emits the best queued result once it scores **strictly above** the
    /// threshold (or the threshold is gone). Strictness matters for
    /// determinism: at `top == T` further results with the same score may
    /// still be discovered, so emitting early would order ties by discovery
    /// (i.e. by pull granularity). Holding until `T` drops puts every tie in
    /// the heap first, making the output the canonical
    /// (score desc, binding asc) order — identical across the row executor,
    /// the block executor and the naive executor's full sort.
    ///
    /// The cost of canonical ties: a score *plateau* at the corner bound is
    /// fully enumerated before its first result is emitted, so degenerate
    /// inputs whose scores are all identical (e.g. a score-less TSV load
    /// where every triple defaults to the same score) materialize the whole
    /// join even for small `k`. That is inherent — the canonical first `k`
    /// of a tie plateau cannot be known without seeing the plateau — and
    /// such data carries no ranking signal for a top-k engine anyway.
    fn next(&mut self) -> Option<PartialAnswer> {
        loop {
            match (self.output.peek(), self.threshold()) {
                (Some(top), Some(t)) if top.score > t => return self.output.pop(),
                (Some(_), None) => return self.output.pop(),
                (None, None) => return None,
                _ => self.pull_once(),
            }
        }
    }

    fn upper_bound(&self) -> Option<Score> {
        let heap_top = self.output.peek().map(|a| a.score);
        match (heap_top, self.threshold()) {
            (None, None) => None,
            (Some(h), None) => Some(h),
            (None, Some(t)) => Some(t),
            (Some(h), Some(t)) => Some(h.max(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Binding;
    use crate::metrics::OpMetrics;
    use crate::stream::{materialize, VecStream};
    use specqp_common::TermId;

    /// Answer binding ?0=entity with an extra distinct var per side so the
    /// merge is observable.
    fn ans(join_val: u32, side_var: u32, side_val: u32, score: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(vec![
                (Var(0), TermId(join_val)),
                (Var(side_var), TermId(side_val)),
            ]),
            Score::new(score),
        )
    }

    fn simple(join_val: u32, score: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(vec![(Var(0), TermId(join_val))]),
            Score::new(score),
        )
    }

    /// Brute-force reference: all compatible pairs, sorted by score sum.
    fn naive_join(
        l: &[PartialAnswer],
        r: &[PartialAnswer],
        join_vars: &[Var],
    ) -> Vec<PartialAnswer> {
        let mut out = Vec::new();
        for a in l {
            for b in r {
                if a.binding.key_for(join_vars) == b.binding.key_for(join_vars) {
                    out.push(PartialAnswer::new(
                        a.binding.merged(&b.binding),
                        a.score + b.score,
                    ));
                }
            }
        }
        out.sort_by(|x, y| y.cmp(x));
        out
    }

    fn run_join(
        l: Vec<PartialAnswer>,
        r: Vec<PartialAnswer>,
        strategy: PullStrategy,
    ) -> Vec<PartialAnswer> {
        let m = OpMetrics::new_handle();
        let join = RankJoin::new(
            Box::new(VecStream::new(l)),
            Box::new(VecStream::new(r)),
            vec![Var(0)],
            strategy,
            m,
        );
        materialize(join)
    }

    #[test]
    fn join_matches_naive_reference() {
        let l = vec![simple(1, 1.0), simple(2, 0.8), simple(3, 0.3)];
        let r = vec![simple(2, 0.9), simple(1, 0.5), simple(9, 0.4)];
        for strategy in [PullStrategy::Alternate, PullStrategy::Adaptive] {
            let got = run_join(l.clone(), r.clone(), strategy);
            let want = naive_join(&l, &r, &[Var(0)]);
            assert_eq!(got, want, "strategy {strategy:?}");
        }
    }

    #[test]
    fn join_merges_side_bindings() {
        let l = vec![ans(1, 1, 100, 1.0)];
        let r = vec![ans(1, 2, 200, 0.5)];
        let out = run_join(l, r, PullStrategy::Alternate);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].binding.get(Var(1)), Some(TermId(100)));
        assert_eq!(out[0].binding.get(Var(2)), Some(TermId(200)));
        assert_eq!(out[0].score.value(), 1.5);
    }

    #[test]
    fn early_termination_pulls_few_tuples() {
        // Large inputs where the top answer joins the two heads: after a few
        // pulls the threshold drops below the found result.
        let l: Vec<_> = (0..1000)
            .map(|i| simple(i, 1.0 - i as f64 * 1e-3))
            .collect();
        let r: Vec<_> = (0..1000)
            .map(|i| simple(i, 1.0 - i as f64 * 1e-3))
            .collect();
        let m = OpMetrics::new_handle();
        let mut join = RankJoin::new(
            Box::new(VecStream::new(l)),
            Box::new(VecStream::new(r)),
            vec![Var(0)],
            PullStrategy::Adaptive,
            m,
        );
        let first = join.next().unwrap();
        assert_eq!(first.score.value(), 2.0);
        assert!(
            join.tuples_pulled() < 100,
            "pulled {} tuples for top-1",
            join.tuples_pulled()
        );
    }

    #[test]
    fn empty_side_yields_empty_join() {
        let out = run_join(vec![], vec![simple(1, 1.0)], PullStrategy::Alternate);
        assert!(out.is_empty());
        let out = run_join(vec![simple(1, 1.0)], vec![], PullStrategy::Adaptive);
        assert!(out.is_empty());
    }

    #[test]
    fn cross_product_when_no_join_vars() {
        let m = OpMetrics::new_handle();
        // Join on no vars: every pair combines; sides bind disjoint vars.
        let l = vec![
            PartialAnswer::new(
                Binding::from_pairs(vec![(Var(1), TermId(10))]),
                Score::new(1.0),
            ),
            PartialAnswer::new(
                Binding::from_pairs(vec![(Var(1), TermId(11))]),
                Score::new(0.5),
            ),
        ];
        let r = vec![PartialAnswer::new(
            Binding::from_pairs(vec![(Var(2), TermId(20))]),
            Score::new(0.9),
        )];
        let join = RankJoin::new(
            Box::new(VecStream::new(l)),
            Box::new(VecStream::new(r)),
            vec![],
            PullStrategy::Alternate,
            m,
        );
        let out = materialize(join);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].score.value(), 1.9);
        assert_eq!(out[1].score.value(), 1.4);
    }

    #[test]
    fn output_scores_non_increasing() {
        let l: Vec<_> = (0..50)
            .map(|i| simple(i % 7, 1.0 - i as f64 * 0.01))
            .collect();
        let r: Vec<_> = (0..50)
            .map(|i| simple(i % 7, 1.0 - i as f64 * 0.015))
            .collect();
        let out = run_join(l, r, PullStrategy::Adaptive);
        for w in out.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn upper_bound_never_underestimates() {
        let l: Vec<_> = (0..20)
            .map(|i| simple(i % 5, 1.0 - i as f64 * 0.04))
            .collect();
        let r: Vec<_> = (0..20)
            .map(|i| simple(i % 5, 1.0 - i as f64 * 0.03))
            .collect();
        let m = OpMetrics::new_handle();
        let mut join = RankJoin::new(
            Box::new(VecStream::new(l)),
            Box::new(VecStream::new(r)),
            vec![Var(0)],
            PullStrategy::Alternate,
            m,
        );
        loop {
            let bound = join.upper_bound();
            match join.next() {
                Some(a) => {
                    let b = bound.expect("bound must exist while answers remain");
                    assert!(
                        b >= a.score,
                        "bound {b:?} underestimates next answer {:?}",
                        a.score
                    );
                }
                None => break,
            }
        }
    }
}
