//! Stream adapters: score scaling and binding projection.
//!
//! These make *derived* answer sources composable with the primitive ones —
//! most importantly the chain-relaxation streams (the paper's future-work
//! extension implemented in `relax::chain`), where a rank join over a chain
//! of patterns must look, to the consuming [`IncrementalMerge`], exactly
//! like a weighted single-pattern scan: scores scaled into the rule-weight
//! range and bindings projected onto the original pattern's variables.
//!
//! [`IncrementalMerge`]: crate::IncrementalMerge

use crate::answer::PartialAnswer;
use crate::stream::RankedStream;
use sparql::Var;
use specqp_common::Score;

/// Multiplies every answer score (and the upper bound) by a positive
/// constant. Order is preserved because scaling by a positive factor is
/// monotone.
pub struct Scaled<S> {
    inner: S,
    factor: f64,
}

impl<S: RankedStream> Scaled<S> {
    /// Wraps `inner`, scaling by `factor > 0`.
    pub fn new(inner: S, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive, got {factor}");
        Scaled { inner, factor }
    }
}

impl<S: RankedStream> RankedStream for Scaled<S> {
    fn next(&mut self) -> Option<PartialAnswer> {
        self.inner
            .next()
            .map(|a| PartialAnswer::new(a.binding, a.score * self.factor))
    }

    fn upper_bound(&self) -> Option<Score> {
        self.inner.upper_bound().map(|b| b * self.factor)
    }
}

/// Projects every answer's binding onto a fixed variable set (dropping
/// auxiliary variables such as the fresh intermediates of a chain
/// relaxation). Scores and order are untouched; deduplication of answers
/// that collapse under the projection is the downstream merge's job.
pub struct Projected<S> {
    inner: S,
    keep: Vec<Var>,
}

impl<S: RankedStream> Projected<S> {
    /// Wraps `inner`, keeping only `keep` variables in each binding.
    pub fn new(inner: S, keep: Vec<Var>) -> Self {
        Projected { inner, keep }
    }
}

impl<S: RankedStream> RankedStream for Projected<S> {
    fn next(&mut self) -> Option<PartialAnswer> {
        self.inner
            .next()
            .map(|a| PartialAnswer::new(a.binding.project(&self.keep), a.score))
    }

    fn upper_bound(&self) -> Option<Score> {
        self.inner.upper_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Binding;
    use crate::stream::{materialize, VecStream};
    use specqp_common::TermId;

    fn ans(pairs: &[(u32, u32)], s: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(pairs.iter().map(|&(v, t)| (Var(v), TermId(t))).collect()),
            Score::new(s),
        )
    }

    #[test]
    fn scaled_scales_scores_and_bounds() {
        let mut s = Scaled::new(
            VecStream::new(vec![ans(&[(0, 1)], 1.0), ans(&[(0, 2)], 0.5)]),
            0.4,
        );
        assert_eq!(s.upper_bound(), Some(Score::new(0.4)));
        assert!(s.next().unwrap().score.approx_eq(Score::new(0.4), 1e-12));
        assert!(s.next().unwrap().score.approx_eq(Score::new(0.2), 1e-12));
        assert_eq!(s.upper_bound(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_rejected() {
        let _ = Scaled::new(VecStream::new(vec![]), 0.0);
    }

    #[test]
    fn projected_drops_aux_vars() {
        let s = Projected::new(
            VecStream::new(vec![ans(&[(0, 1), (7, 99)], 1.0)]),
            vec![Var(0)],
        );
        let out = materialize(s);
        assert_eq!(out[0].binding.len(), 1);
        assert_eq!(out[0].binding.get(Var(0)), Some(TermId(1)));
        assert_eq!(out[0].binding.get(Var(7)), None);
    }

    #[test]
    fn composition_scaled_then_projected() {
        let s = Projected::new(
            Scaled::new(
                VecStream::new(vec![
                    ans(&[(0, 1), (5, 2)], 0.9),
                    ans(&[(0, 3), (5, 4)], 0.6),
                ]),
                0.5,
            ),
            vec![Var(0)],
        );
        let out = materialize(s);
        assert_eq!(out.len(), 2);
        assert!(out[0].score.approx_eq(Score::new(0.45), 1e-12));
        assert_eq!(out[1].binding.len(), 1);
    }
}
