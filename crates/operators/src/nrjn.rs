//! The nested-loops rank join (NRJN, ref \[15\]).
//!
//! NRJN maintains the same corner-bound threshold as HRJN but stores **no
//! hash tables**: whenever a new tuple arrives from one input, it is joined
//! by *re-scanning* the prefix of the other input seen so far. This trades
//! CPU (O(|L|·|R|) comparisons in the worst case) for memory, exactly the
//! trade-off discussed in the paper's related work. It is used by the
//! ablation bench `rank_join.rs`, not by the engine's default plans.
//!
//! Because the operator re-scans, its inputs must be materialized vectors.

use crate::answer::PartialAnswer;
use crate::metrics::MetricsHandle;
use crate::stream::RankedStream;
use sparql::Var;
use specqp_common::Score;
use std::collections::BinaryHeap;

/// Storage-free rank join over two materialized, descending-sorted inputs.
pub struct NestedLoopsRankJoin {
    left: Vec<PartialAnswer>,
    right: Vec<PartialAnswer>,
    /// Number of tuples "pulled" (exposed to the join) per side.
    lseen: usize,
    rseen: usize,
    join_vars: Vec<Var>,
    output: BinaryHeap<PartialAnswer>,
    pull_left_next: bool,
    metrics: MetricsHandle,
}

impl NestedLoopsRankJoin {
    /// Creates the join; inputs must be sorted by non-increasing score.
    pub fn new(
        left: Vec<PartialAnswer>,
        right: Vec<PartialAnswer>,
        join_vars: Vec<Var>,
        metrics: MetricsHandle,
    ) -> Self {
        debug_assert!(left.windows(2).all(|w| w[0].score >= w[1].score));
        debug_assert!(right.windows(2).all(|w| w[0].score >= w[1].score));
        NestedLoopsRankJoin {
            left,
            right,
            lseen: 0,
            rseen: 0,
            join_vars,
            output: BinaryHeap::new(),
            pull_left_next: true,
            metrics,
        }
    }

    fn top1(side: &[PartialAnswer]) -> Option<Score> {
        side.first().map(|a| a.score)
    }

    fn threshold(&self) -> Option<Score> {
        let l_more = self.lseen < self.left.len();
        let r_more = self.rseen < self.right.len();
        if self.left.is_empty() || self.right.is_empty() {
            return None;
        }
        let cur_l = if self.lseen == 0 {
            Some(Score::new(f64::INFINITY))
        } else {
            Some(self.left[self.lseen - 1].score)
        };
        let cur_r = if self.rseen == 0 {
            Some(Score::new(f64::INFINITY))
        } else {
            Some(self.right[self.rseen - 1].score)
        };
        let tl = if l_more {
            cur_l.zip(Self::top1(&self.right)).map(|(a, b)| a + b)
        } else {
            None
        };
        let tr = if r_more {
            cur_r.zip(Self::top1(&self.left)).map(|(a, b)| a + b)
        } else {
            None
        };
        match (tl, tr) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.max(b)),
        }
    }

    fn pull_once(&mut self) {
        let l_more = self.lseen < self.left.len();
        let r_more = self.rseen < self.right.len();
        let pull_left = if !l_more {
            false
        } else if !r_more {
            true
        } else {
            let side = self.pull_left_next;
            self.pull_left_next = !side;
            side
        };

        if pull_left {
            let tuple = self.left[self.lseen].clone();
            self.lseen += 1;
            self.metrics.count_sorted_access();
            let key = tuple.binding.key_for(&self.join_vars);
            // Re-scan the seen prefix of the other side (no hash table).
            for r in &self.right[..self.rseen] {
                self.metrics.count_random_access();
                if r.binding.key_for(&self.join_vars) == key {
                    let merged =
                        PartialAnswer::new(tuple.binding.merged(&r.binding), tuple.score + r.score);
                    self.metrics.count_answer();
                    self.metrics.count_heap_push();
                    self.output.push(merged);
                }
            }
        } else {
            let tuple = self.right[self.rseen].clone();
            self.rseen += 1;
            self.metrics.count_sorted_access();
            let key = tuple.binding.key_for(&self.join_vars);
            for l in &self.left[..self.lseen] {
                self.metrics.count_random_access();
                if l.binding.key_for(&self.join_vars) == key {
                    let merged =
                        PartialAnswer::new(l.binding.merged(&tuple.binding), l.score + tuple.score);
                    self.metrics.count_answer();
                    self.metrics.count_heap_push();
                    self.output.push(merged);
                }
            }
        }
    }
}

impl RankedStream for NestedLoopsRankJoin {
    /// Strict-threshold emission, for the same canonical-order reason as
    /// [`RankJoin::next`](crate::RankJoin): ties must all be queued before
    /// any of them is emitted.
    fn next(&mut self) -> Option<PartialAnswer> {
        loop {
            match (self.output.peek(), self.threshold()) {
                (Some(top), Some(t)) if top.score > t => return self.output.pop(),
                (Some(_), None) => return self.output.pop(),
                (None, None) => return None,
                _ => self.pull_once(),
            }
        }
    }

    fn upper_bound(&self) -> Option<Score> {
        let heap_top = self.output.peek().map(|a| a.score);
        match (heap_top, self.threshold()) {
            (None, None) => None,
            (Some(h), None) => Some(h),
            (None, Some(t)) => Some(t),
            (Some(h), Some(t)) => Some(h.max(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Binding;
    use crate::metrics::OpMetrics;
    use crate::rank_join::{PullStrategy, RankJoin};
    use crate::stream::{materialize, VecStream};
    use specqp_common::TermId;

    fn simple(join_val: u32, score: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(vec![(Var(0), TermId(join_val))]),
            Score::new(score),
        )
    }

    #[test]
    fn agrees_with_hrjn() {
        let l: Vec<_> = (0..40)
            .map(|i| simple(i % 6, 1.0 - i as f64 * 0.02))
            .collect();
        let r: Vec<_> = (0..40)
            .map(|i| simple(i % 6, 1.0 - i as f64 * 0.025))
            .collect();

        let m1 = OpMetrics::new_handle();
        let nrjn = NestedLoopsRankJoin::new(l.clone(), r.clone(), vec![Var(0)], m1);
        let got = materialize(nrjn);

        let m2 = OpMetrics::new_handle();
        let hrjn = RankJoin::new(
            Box::new(VecStream::new(l)),
            Box::new(VecStream::new(r)),
            vec![Var(0)],
            PullStrategy::Alternate,
            m2,
        );
        let want = materialize(hrjn);

        // Same multiset of results and same score sequence.
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.score, b.score);
        }
    }

    #[test]
    fn empty_inputs() {
        let m = OpMetrics::new_handle();
        let mut j = NestedLoopsRankJoin::new(vec![], vec![simple(1, 1.0)], vec![Var(0)], m);
        assert!(j.next().is_none());
        assert_eq!(j.upper_bound(), None);
    }

    #[test]
    fn uses_no_hash_storage_but_more_comparisons() {
        let l: Vec<_> = (0..30).map(|i| simple(i, 1.0 - i as f64 * 0.01)).collect();
        let r: Vec<_> = (0..30).map(|i| simple(i, 1.0 - i as f64 * 0.01)).collect();
        let m = OpMetrics::new_handle();
        let j = NestedLoopsRankJoin::new(l, r, vec![Var(0)], m.clone());
        let _ = materialize(j);
        // Quadratic-ish probing shows up as random accesses.
        assert!(m.random_accesses() > 200, "{}", m.random_accesses());
    }
}
