//! Block-at-a-time (vectorized) execution primitives.
//!
//! The row-at-a-time operator stack ([`RankedStream`]) pays a virtual
//! dispatch, a `Binding` allocation and a per-pair sort for every single
//! tuple it moves. Over the columnar store that overhead dominates: the
//! storage layer can hand out thousands of `(s, p, o, score)` rows with four
//! memcpys, but the operators consume them one `PartialAnswer` at a time.
//!
//! This module is the batched alternative:
//!
//! * [`Block`] — a batch of raw triples as parallel `s`/`p`/`o`/`score`
//!   columns, filled straight from [`kgstore::TripleColumns`] ranges
//!   ([`kgstore::TripleColumns::gather_into`]);
//! * [`AnswerBlock`] — a batch of partial answers sharing one variable
//!   *schema*, so a row is a flat `&[TermId]` slice instead of a sorted
//!   `Vec<(Var, TermId)>` per answer;
//! * [`BlockStream`] — the pull interface between block operators
//!   (the batched sibling of [`RankedStream`]);
//! * [`RowsToBlocks`] — adapter that packs any row stream into blocks, used
//!   for sources that have no native block implementation (chain-relaxation
//!   subtrees);
//! * [`top_k_blocks`] — result collection, converting only the `k` winning
//!   rows back into [`PartialAnswer`]s;
//! * [`ExecutionMode`] — the engine-level knob selecting row or block
//!   execution (`SPECQP_EXEC=row|block|block:N` flips whole test suites).
//!
//! Both paths produce **identical answers in identical order with identical
//! scores** (same normalization/weighting expressions, same commutative
//! score sums, same total tie-break order); the differential harness in
//! `tests/diff_exec.rs` locks that equivalence in.
//!
//! [`RankedStream`]: crate::RankedStream

use crate::answer::{Binding, PartialAnswer};
use crate::stream::RankedStream;
use kgstore::{MatchList, Triple};
use sparql::Var;
use specqp_common::{Score, TermId};

/// Block size used when [`ExecutionMode::Block`] is selected without an
/// explicit size (and by `SPECQP_EXEC=block`). 128 sits at the sweet spot
/// measured on the seeded XKG probe workload: big enough to amortize
/// per-block overhead, small enough that strict-threshold tie plateaus
/// don't drag in whole oversized batches.
pub const DEFAULT_BLOCK_SIZE: usize = 128;

/// How the engine executes plans: the classic tuple-at-a-time operator tree
/// (the reference implementation) or the vectorized block pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One [`PartialAnswer`] per operator call (reference path).
    #[default]
    RowAtATime,
    /// Batches of up to `size` answers per operator call.
    Block(usize),
}

impl ExecutionMode {
    /// Reads the mode from the `SPECQP_EXEC` environment variable: `row`
    /// (or unset) selects [`ExecutionMode::RowAtATime`]; `block` selects
    /// [`ExecutionMode::Block`] with [`DEFAULT_BLOCK_SIZE`]; `block:N` (or
    /// `block=N`) selects an explicit block size. CI runs the whole
    /// workspace test suite once per setting.
    ///
    /// # Panics
    /// Panics when the variable is set to something unparsable — a typo in
    /// a CI matrix (`blocks`, `block:12b8`, …) must fail loudly, not
    /// silently re-run the row suite with the block gate green.
    pub fn from_env() -> Self {
        match std::env::var("SPECQP_EXEC") {
            Ok(v) => Self::parse(&v).unwrap_or_else(|| {
                panic!(
                    "SPECQP_EXEC={v:?} is not a valid execution mode \
                     (expected row | block | block:N)"
                )
            }),
            Err(_) => ExecutionMode::RowAtATime,
        }
    }

    /// Parses `row`, `block`, `block:N` or `block=N`.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("row") {
            return Some(ExecutionMode::RowAtATime);
        }
        if s.eq_ignore_ascii_case("block") {
            return Some(ExecutionMode::Block(DEFAULT_BLOCK_SIZE));
        }
        let rest = s
            .strip_prefix("block:")
            .or_else(|| s.strip_prefix("block="))?;
        let n: usize = rest.parse().ok()?;
        if n == 0 {
            None
        } else {
            Some(ExecutionMode::Block(n))
        }
    }

    /// The configured block size (`None` in row mode).
    pub fn block_size(self) -> Option<usize> {
        match self {
            ExecutionMode::RowAtATime => None,
            ExecutionMode::Block(n) => Some(n.max(1)),
        }
    }
}

/// A batch of scored triples as four parallel columns — the unit a
/// [`BlockScan`](crate::BlockScan) gathers from the store's
/// [`TripleColumns`](kgstore::TripleColumns) before normalizing scores and
/// projecting variable positions into an [`AnswerBlock`].
///
/// ```
/// use operators::Block;
/// use kgstore::Triple;
/// use specqp_common::{Score, TermId};
///
/// let mut b = Block::new();
/// b.push(Triple::new(TermId(1), TermId(2), TermId(3)), Score::new(0.9));
/// b.push(Triple::new(TermId(4), TermId(2), TermId(5)), Score::new(0.4));
/// assert_eq!(b.len(), 2);
/// assert_eq!(b.s[1], TermId(4));
/// assert_eq!(b.score[0], Score::new(0.9));
/// b.clear();
/// assert!(b.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct Block {
    /// Subject column.
    pub s: Vec<TermId>,
    /// Predicate column.
    pub p: Vec<TermId>,
    /// Object column.
    pub o: Vec<TermId>,
    /// Raw score column (normalization happens when the block is projected
    /// into an [`AnswerBlock`]).
    pub score: Vec<Score>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty block with capacity for `n` rows in every column.
    pub fn with_capacity(n: usize) -> Self {
        Block {
            s: Vec::with_capacity(n),
            p: Vec::with_capacity(n),
            o: Vec::with_capacity(n),
            score: Vec::with_capacity(n),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.score.len()
    }

    /// `true` when the block holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.score.is_empty()
    }

    /// Removes all rows, keeping the column allocations.
    pub fn clear(&mut self) {
        self.s.clear();
        self.p.clear();
        self.o.clear();
        self.score.clear();
    }

    /// Appends one row.
    #[inline]
    pub fn push(&mut self, t: Triple, score: Score) {
        self.s.push(t.s);
        self.p.push(t.p);
        self.o.push(t.o);
        self.score.push(score);
    }

    /// Appends the matches of `list` at `ranks` via one column-wise gather
    /// through [`kgstore::KnowledgeGraph::gather_into`] (which dispatches
    /// each id to the base columns or the live-write overlay).
    pub fn fill_from(&mut self, list: &MatchList<'_>, ranks: std::ops::Range<usize>) {
        let ids = &list.ids()[ranks];
        list.graph()
            .gather_into(ids, &mut self.s, &mut self.p, &mut self.o, &mut self.score);
    }
}

/// A batch of partial answers sharing one variable schema.
///
/// `vars` is sorted and duplicate-free; row `i` occupies
/// `terms[i*width .. (i+1)*width]` with `terms[i*width + j]` bound to
/// `vars[j]`. Because [`Binding`] also keeps its pairs sorted by variable,
/// comparing two same-schema rows as term slices is exactly the row path's
/// binding tie-break order — which is what keeps the two executors'
/// output orders identical.
#[derive(Debug, Clone)]
pub struct AnswerBlock {
    vars: Vec<Var>,
    terms: Vec<TermId>,
    scores: Vec<Score>,
}

impl AnswerBlock {
    /// An empty block over `vars` (must be sorted and duplicate-free).
    pub fn new(vars: Vec<Var>) -> Self {
        debug_assert!(
            vars.windows(2).all(|w| w[0] < w[1]),
            "schema must be sorted"
        );
        AnswerBlock {
            vars,
            terms: Vec::new(),
            scores: Vec::new(),
        }
    }

    /// An empty block over `vars` with room for `rows` rows.
    pub fn with_capacity(vars: Vec<Var>, rows: usize) -> Self {
        let width = vars.len();
        debug_assert!(
            vars.windows(2).all(|w| w[0] < w[1]),
            "schema must be sorted"
        );
        AnswerBlock {
            vars,
            terms: Vec::with_capacity(rows * width),
            scores: Vec::with_capacity(rows),
        }
    }

    /// The variable schema shared by every row.
    #[inline]
    pub fn schema(&self) -> &[Var] {
        &self.vars
    }

    /// Terms per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.vars.len()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// `true` when the block holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// The term slice of row `i`, in schema order.
    #[inline]
    pub fn row(&self, i: usize) -> &[TermId] {
        let w = self.width();
        &self.terms[i * w..(i + 1) * w]
    }

    /// The score of row `i`.
    #[inline]
    pub fn score(&self, i: usize) -> Score {
        self.scores[i]
    }

    /// Appends a row (`terms` must match the schema width and order).
    #[inline]
    pub fn push_row(&mut self, terms: &[TermId], score: Score) {
        debug_assert_eq!(terms.len(), self.width());
        self.terms.extend_from_slice(terms);
        self.scores.push(score);
    }

    /// Reserves one uninitialized row and returns `(terms, score slot)` for
    /// in-place construction (join output assembly).
    pub fn push_row_with(&mut self, score: Score, fill: impl FnOnce(&mut [TermId])) {
        let w = self.width();
        let at = self.terms.len();
        self.terms.resize(at + w, TermId(0));
        fill(&mut self.terms[at..at + w]);
        self.scores.push(score);
    }

    /// Columnar append access for same-crate fast paths (scan fills): the
    /// caller must push exactly `width` terms per score.
    #[inline]
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<TermId>, &mut Vec<Score>) {
        (&mut self.terms, &mut self.scores)
    }

    /// Row `i` as a row-path [`PartialAnswer`] (allocates — used only at
    /// the top-k boundary and in tests).
    pub fn answer(&self, i: usize) -> PartialAnswer {
        let pairs = self
            .vars
            .iter()
            .copied()
            .zip(self.row(i).iter().copied())
            .collect();
        PartialAnswer::new(Binding::from_pairs(pairs), self.score(i))
    }

    /// All rows as [`PartialAnswer`]s.
    pub fn to_answers(&self) -> Vec<PartialAnswer> {
        (0..self.len()).map(|i| self.answer(i)).collect()
    }
}

/// A pull-based stream of [`AnswerBlock`]s in non-increasing score order
/// (across and within blocks) — the batched sibling of
/// [`RankedStream`], with the same bound contract.
///
/// # Contract
/// * every block's rows are in non-increasing score order, and the first
///   row of a block scores no higher than the last row of the previous
///   block;
/// * `upper_bound()` is `None` iff exhausted, otherwise ≥ every future
///   score, and never advances the stream;
/// * `schema()` is constant over the stream's lifetime; every emitted block
///   uses exactly that schema.
pub trait BlockStream {
    /// The variable schema of every emitted block.
    fn schema(&self) -> &[Var];

    /// Produces the next non-empty batch, or `None` when exhausted.
    fn next_block(&mut self) -> Option<AnswerBlock>;

    /// Upper bound on all future answer scores (see trait docs).
    fn upper_bound(&self) -> Option<Score>;
}

/// Boxed block-operator node borrowing a graph for `'g`.
pub type BoxedBlockStream<'g> = Box<dyn BlockStream + 'g>;

impl BlockStream for BoxedBlockStream<'_> {
    fn schema(&self) -> &[Var] {
        (**self).schema()
    }
    fn next_block(&mut self) -> Option<AnswerBlock> {
        (**self).next_block()
    }
    fn upper_bound(&self) -> Option<Score> {
        (**self).upper_bound()
    }
}

/// Emitted-block-size ramp: operators start with small blocks (cheap when a
/// top-k consumer stops after a handful of rows) and double up to the
/// configured size, so deep pipelines don't overshoot `k` by a full block
/// per tier.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockSizer {
    next: usize,
    max: usize,
}

impl BlockSizer {
    pub(crate) fn new(block_size: usize) -> Self {
        let max = block_size.max(1);
        BlockSizer {
            next: max.min(32),
            max,
        }
    }

    /// The size to use for the next emitted block (doubles per call).
    pub(crate) fn take(&mut self) -> usize {
        let n = self.next;
        self.next = (self.next * 2).min(self.max);
        n
    }
}

/// Packs any [`RankedStream`] into blocks over a fixed
/// schema. Used for sources with no native block implementation — the
/// chain-relaxation subtrees, whose scaled/projected row streams are reused
/// verbatim (so both executors compute chain scores identically).
///
/// # Panics
/// Panics if a pulled answer does not bind every schema variable.
pub struct RowsToBlocks<'g> {
    inner: Box<dyn RankedStream + 'g>,
    vars: Vec<Var>,
    sizer: BlockSizer,
}

impl<'g> RowsToBlocks<'g> {
    /// Wraps `inner`, emitting blocks of up to `block_size` rows over the
    /// sorted schema `vars`.
    pub fn new(inner: Box<dyn RankedStream + 'g>, mut vars: Vec<Var>, block_size: usize) -> Self {
        vars.sort_unstable();
        vars.dedup();
        RowsToBlocks {
            inner,
            vars,
            sizer: BlockSizer::new(block_size),
        }
    }
}

impl BlockStream for RowsToBlocks<'_> {
    fn schema(&self) -> &[Var] {
        &self.vars
    }

    fn next_block(&mut self) -> Option<AnswerBlock> {
        let n = self.sizer.take();
        let mut out = AnswerBlock::with_capacity(self.vars.clone(), n);
        while out.len() < n {
            let Some(a) = self.inner.next() else { break };
            let vars = &self.vars;
            out.push_row_with(a.score, |slot| {
                for (j, &v) in vars.iter().enumerate() {
                    slot[j] = a
                        .binding
                        .get(v)
                        .expect("row stream must bind every schema variable");
                }
            });
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    fn upper_bound(&self) -> Option<Score> {
        self.inner.upper_bound()
    }
}

/// Collects the top-`k` answers out of a block stream under the canonical
/// total order (score desc, binding asc), converting only the winning rows
/// into [`PartialAnswer`]s. Mirrors [`top_k`](crate::top_k): after `k`
/// answers the stream has reached the score floor, and rows tied at the
/// floor are drained so the boundary is resolved by binding rather than by
/// incidental stream position — the block executor returns exactly what the
/// row executor and the morsel-parallel merge return.
pub fn top_k_blocks<S: BlockStream + ?Sized>(stream: &mut S, k: usize) -> Vec<PartialAnswer> {
    let mut out = Vec::with_capacity(k);
    if k == 0 {
        return out;
    }
    'stream: while let Some(block) = stream.next_block() {
        for i in 0..block.len() {
            let a = block.answer(i);
            if out.len() >= k && a.score != out[k - 1].score {
                break 'stream;
            }
            out.push(a);
        }
    }
    out.sort_by(|a, b| b.cmp(a));
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::VecStream;

    fn ans(pairs: &[(u32, u32)], s: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(pairs.iter().map(|&(v, t)| (Var(v), TermId(t))).collect()),
            Score::new(s),
        )
    }

    #[test]
    fn execution_mode_parsing() {
        assert_eq!(ExecutionMode::parse("row"), Some(ExecutionMode::RowAtATime));
        assert_eq!(
            ExecutionMode::parse("block"),
            Some(ExecutionMode::Block(DEFAULT_BLOCK_SIZE))
        );
        assert_eq!(
            ExecutionMode::parse("block:64"),
            Some(ExecutionMode::Block(64))
        );
        assert_eq!(
            ExecutionMode::parse("block=7"),
            Some(ExecutionMode::Block(7))
        );
        assert_eq!(ExecutionMode::parse("block:0"), None);
        assert_eq!(ExecutionMode::parse("speculative"), None);
        assert_eq!(ExecutionMode::RowAtATime.block_size(), None);
        assert_eq!(ExecutionMode::Block(9).block_size(), Some(9));
    }

    #[test]
    fn answer_block_rows_round_trip() {
        let mut b = AnswerBlock::new(vec![Var(0), Var(2)]);
        b.push_row(&[TermId(1), TermId(5)], Score::new(0.9));
        b.push_row(&[TermId(2), TermId(6)], Score::new(0.4));
        assert_eq!(b.len(), 2);
        assert_eq!(b.width(), 2);
        assert_eq!(b.row(1), &[TermId(2), TermId(6)]);
        let a = b.answer(0);
        assert_eq!(a, ans(&[(0, 1), (2, 5)], 0.9));
        assert_eq!(b.to_answers().len(), 2);
    }

    #[test]
    fn rows_to_blocks_packs_and_ramps() {
        let rows: Vec<PartialAnswer> = (0..100)
            .map(|i| ans(&[(0, i), (1, i + 1000)], 1.0 - f64::from(i) * 0.001))
            .collect();
        let mut s = RowsToBlocks::new(
            Box::new(VecStream::new(rows.clone())),
            vec![Var(1), Var(0)],
            64,
        );
        assert_eq!(s.schema(), &[Var(0), Var(1)]);
        assert_eq!(s.upper_bound(), Some(Score::new(1.0)));
        let b1 = s.next_block().unwrap();
        assert_eq!(b1.len(), 32, "first block uses the ramped size");
        let b2 = s.next_block().unwrap();
        assert_eq!(b2.len(), 64);
        let mut got: Vec<PartialAnswer> = b1.to_answers();
        got.extend(b2.to_answers());
        while let Some(b) = s.next_block() {
            got.extend(b.to_answers());
        }
        assert_eq!(got, rows);
        assert_eq!(s.upper_bound(), None);
    }

    #[test]
    fn top_k_blocks_truncates_mid_block() {
        let rows: Vec<PartialAnswer> = (0..10)
            .map(|i| ans(&[(0, i)], 1.0 - f64::from(i) * 0.05))
            .collect();
        let mut s = RowsToBlocks::new(Box::new(VecStream::new(rows.clone())), vec![Var(0)], 4);
        let got = top_k_blocks(&mut s, 3);
        assert_eq!(got, rows[..3].to_vec());
        let mut s2 = RowsToBlocks::new(Box::new(VecStream::new(rows.clone())), vec![Var(0)], 4);
        assert_eq!(top_k_blocks(&mut s2, 99), rows);
    }

    #[test]
    fn block_sizer_ramps_to_max() {
        let mut z = BlockSizer::new(256);
        assert_eq!(z.take(), 32);
        assert_eq!(z.take(), 64);
        assert_eq!(z.take(), 128);
        assert_eq!(z.take(), 256);
        assert_eq!(z.take(), 256);
        let mut one = BlockSizer::new(1);
        assert_eq!(one.take(), 1);
        assert_eq!(one.take(), 1);
    }
}
