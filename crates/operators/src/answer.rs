//! Bindings and partial answers.

use sparql::Var;
use specqp_common::{Score, TermId};
use std::fmt;

/// A variable→term mapping, kept sorted by variable for cheap equality,
/// hashing and merging. This is the paper's *answer* (Def. 4) or a partial
/// answer while the join tree is still being evaluated.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Binding {
    pairs: Vec<(Var, TermId)>,
}

impl Binding {
    /// The empty binding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a binding from pairs (sorted + deduplicated; duplicate
    /// variables must agree).
    ///
    /// # Panics
    /// Panics if the same variable is bound to two different terms.
    pub fn from_pairs(mut pairs: Vec<(Var, TermId)>) -> Self {
        pairs.sort_unstable_by_key(|&(v, _)| v);
        pairs.dedup();
        for w in pairs.windows(2) {
            assert!(
                w[0].0 != w[1].0,
                "conflicting binding for {:?}: {:?} vs {:?}",
                w[0].0,
                w[0].1,
                w[1].1
            );
        }
        Binding { pairs }
    }

    /// Value bound to `v`, if any.
    pub fn get(&self, v: Var) -> Option<TermId> {
        self.pairs
            .binary_search_by_key(&v, |&(v, _)| v)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates `(var, term)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, TermId)> + '_ {
        self.pairs.iter().copied()
    }

    /// `true` if both bindings assign identical values to every variable
    /// they share.
    pub fn compatible(&self, other: &Binding) -> bool {
        // Merge-walk the two sorted pair lists.
        let (mut i, mut j) = (0, 0);
        while i < self.pairs.len() && j < other.pairs.len() {
            match self.pairs[i].0.cmp(&other.pairs[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if self.pairs[i].1 != other.pairs[j].1 {
                        return false;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// Merges two compatible bindings (sorted-merge of the pair lists).
    ///
    /// # Panics
    /// Panics in debug builds if the bindings are incompatible.
    pub fn merged(&self, other: &Binding) -> Binding {
        debug_assert!(self.compatible(other), "merging incompatible bindings");
        let mut pairs = Vec::with_capacity(self.pairs.len() + other.pairs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.pairs.len() && j < other.pairs.len() {
            match self.pairs[i].0.cmp(&other.pairs[j].0) {
                std::cmp::Ordering::Less => {
                    pairs.push(self.pairs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    pairs.push(other.pairs[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    pairs.push(self.pairs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        pairs.extend_from_slice(&self.pairs[i..]);
        pairs.extend_from_slice(&other.pairs[j..]);
        Binding { pairs }
    }

    /// Projects the binding onto `vars` (in the given order); variables not
    /// bound are skipped.
    pub fn project(&self, vars: &[Var]) -> Binding {
        let pairs = vars
            .iter()
            .filter_map(|&v| self.get(v).map(|t| (v, t)))
            .collect();
        Binding::from_pairs(pairs)
    }

    /// Extracts the join key for `vars`: the bound terms in the given
    /// variable order. Returns `None` if any variable is unbound.
    pub fn key_for(&self, vars: &[Var]) -> Option<Box<[TermId]>> {
        let mut key = Vec::with_capacity(vars.len());
        for &v in vars {
            key.push(self.get(v)?);
        }
        Some(key.into_boxed_slice())
    }
}

impl fmt::Debug for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}={t}")?;
        }
        write!(f, "}}")
    }
}

/// A binding with its (partial) score — the unit flowing through the
/// operator tree. Scores are sums of per-pattern normalized, weighted
/// triple scores (Defs. 5, 6, 8).
#[derive(Clone, PartialEq, Debug)]
pub struct PartialAnswer {
    /// The variable assignment.
    pub binding: Binding,
    /// The accumulated score.
    pub score: Score,
}

impl PartialAnswer {
    /// Creates a partial answer.
    pub fn new(binding: Binding, score: Score) -> Self {
        PartialAnswer { binding, score }
    }
}

impl Eq for PartialAnswer {}

impl Ord for PartialAnswer {
    /// Orders by score, breaking ties by binding so heap contents are
    /// deterministic across runs.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| other.binding.pairs.cmp(&self.binding.pairs))
    }
}

impl PartialOrd for PartialAnswer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pairs: &[(u32, u32)]) -> Binding {
        Binding::from_pairs(pairs.iter().map(|&(v, t)| (Var(v), TermId(t))).collect())
    }

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let x = Binding::from_pairs(vec![
            (Var(2), TermId(20)),
            (Var(0), TermId(10)),
            (Var(2), TermId(20)),
        ]);
        assert_eq!(x.len(), 2);
        assert_eq!(x.get(Var(0)), Some(TermId(10)));
        assert_eq!(x.get(Var(2)), Some(TermId(20)));
        assert_eq!(x.get(Var(1)), None);
    }

    #[test]
    #[should_panic(expected = "conflicting binding")]
    fn conflicting_pairs_panic() {
        let _ = Binding::from_pairs(vec![(Var(0), TermId(1)), (Var(0), TermId(2))]);
    }

    #[test]
    fn compatibility() {
        let x = b(&[(0, 1), (1, 5)]);
        let y = b(&[(1, 5), (2, 9)]);
        let z = b(&[(1, 6)]);
        assert!(x.compatible(&y));
        assert!(!x.compatible(&z));
        assert!(x.compatible(&Binding::new()));
    }

    #[test]
    fn merge_unions_pairs() {
        let x = b(&[(0, 1), (1, 5)]);
        let y = b(&[(1, 5), (2, 9)]);
        let m = x.merged(&y);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(Var(2)), Some(TermId(9)));
    }

    #[test]
    fn project_keeps_requested_vars() {
        let x = b(&[(0, 1), (1, 5), (2, 9)]);
        let p = x.project(&[Var(2), Var(0)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(Var(1)), None);
    }

    #[test]
    fn key_extraction() {
        let x = b(&[(0, 1), (1, 5)]);
        assert_eq!(
            x.key_for(&[Var(1), Var(0)]).unwrap().as_ref(),
            &[TermId(5), TermId(1)]
        );
        assert!(x.key_for(&[Var(3)]).is_none());
    }

    #[test]
    fn answer_ordering_is_total_and_deterministic() {
        let a1 = PartialAnswer::new(b(&[(0, 1)]), Score::new(0.5));
        let a2 = PartialAnswer::new(b(&[(0, 2)]), Score::new(0.5));
        let a3 = PartialAnswer::new(b(&[(0, 1)]), Score::new(0.9));
        assert!(a3 > a1);
        // Equal scores: smaller binding ranks higher (deterministic).
        assert!(a1 > a2);
        let mut v = vec![a2.clone(), a3.clone(), a1.clone()];
        v.sort();
        assert_eq!(v, vec![a2, a1, a3]);
    }
}
