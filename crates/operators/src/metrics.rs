//! Operator instrumentation.
//!
//! The paper reports "no. of answer objects created" as its memory metric
//! (§4.3). Every operator in this crate routes answer construction through a
//! shared [`OpMetrics`] handle so that a query run can report exactly that
//! number, along with list-access counts useful for diagnosing operator
//! behaviour.

use std::cell::Cell;
use std::rc::Rc;

/// Shared, interior-mutable counters for one query execution.
///
/// Execution is single-threaded (operators are pull-based trees), so plain
/// `Cell`s suffice; the handle is an `Rc` cloned into each operator.
#[derive(Default, Debug)]
pub struct OpMetrics {
    answers_created: Cell<u64>,
    sorted_accesses: Cell<u64>,
    random_accesses: Cell<u64>,
    heap_pushes: Cell<u64>,
}

/// Cheap cloneable handle to [`OpMetrics`].
pub type MetricsHandle = Rc<OpMetrics>;

impl OpMetrics {
    /// Fresh all-zero counters.
    pub fn new_handle() -> MetricsHandle {
        Rc::new(OpMetrics::default())
    }

    /// Records the materialization of one answer object
    /// (scan emission or join result).
    #[inline]
    pub fn count_answer(&self) {
        self.answers_created.set(self.answers_created.get() + 1);
    }

    /// Records `n` answer objects at once.
    #[inline]
    pub fn count_answers(&self, n: u64) {
        self.answers_created.set(self.answers_created.get() + n);
    }

    /// Records one sequential (sorted) access to an input list.
    #[inline]
    pub fn count_sorted_access(&self) {
        self.sorted_accesses.set(self.sorted_accesses.get() + 1);
    }

    /// Records one random access (hash probe hit enumeration).
    #[inline]
    pub fn count_random_access(&self) {
        self.random_accesses.set(self.random_accesses.get() + 1);
    }

    /// Records one priority-queue push.
    #[inline]
    pub fn count_heap_push(&self) {
        self.heap_pushes.set(self.heap_pushes.get() + 1);
    }

    /// Total answer objects created — the paper's memory metric.
    pub fn answers_created(&self) -> u64 {
        self.answers_created.get()
    }

    /// Total sequential list accesses.
    pub fn sorted_accesses(&self) -> u64 {
        self.sorted_accesses.get()
    }

    /// Total random accesses.
    pub fn random_accesses(&self) -> u64 {
        self.random_accesses.get()
    }

    /// Total priority-queue pushes.
    pub fn heap_pushes(&self) -> u64 {
        self.heap_pushes.get()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.answers_created.set(0);
        self.sorted_accesses.set(0);
        self.random_accesses.set(0);
        self.heap_pushes.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = OpMetrics::new_handle();
        m.count_answer();
        m.count_answers(4);
        m.count_sorted_access();
        m.count_random_access();
        m.count_heap_push();
        assert_eq!(m.answers_created(), 5);
        assert_eq!(m.sorted_accesses(), 1);
        assert_eq!(m.random_accesses(), 1);
        assert_eq!(m.heap_pushes(), 1);
        m.reset();
        assert_eq!(m.answers_created(), 0);
    }

    #[test]
    fn handle_is_shared() {
        let m = OpMetrics::new_handle();
        let m2 = Rc::clone(&m);
        m2.count_answer();
        assert_eq!(m.answers_created(), 1);
    }
}
