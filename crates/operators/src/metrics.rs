//! Operator instrumentation.
//!
//! The paper reports "no. of answer objects created" as its memory metric
//! (§4.3). Every operator in this crate routes answer construction through a
//! shared [`OpMetrics`] handle so that a query run can report exactly that
//! number, along with list-access counts useful for diagnosing operator
//! behaviour.
//!
//! [`CacheMetrics`] is the thread-safe sibling used by cross-query caches
//! (the engine's plan cache): plain atomics, shareable between service
//! worker threads.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, interior-mutable counters for one query execution.
///
/// Execution is single-threaded (operators are pull-based trees), so plain
/// `Cell`s suffice; the handle is an `Rc` cloned into each operator.
#[derive(Default, Debug)]
pub struct OpMetrics {
    answers_created: Cell<u64>,
    sorted_accesses: Cell<u64>,
    random_accesses: Cell<u64>,
    heap_pushes: Cell<u64>,
    fallback_stages: Cell<u64>,
    wasted_answers: Cell<u64>,
}

/// Cheap cloneable handle to [`OpMetrics`].
pub type MetricsHandle = Rc<OpMetrics>;

impl OpMetrics {
    /// Fresh all-zero counters.
    pub fn new_handle() -> MetricsHandle {
        Rc::new(OpMetrics::default())
    }

    /// Records the materialization of one answer object
    /// (scan emission or join result).
    #[inline]
    pub fn count_answer(&self) {
        self.answers_created.set(self.answers_created.get() + 1);
    }

    /// Records `n` answer objects at once.
    #[inline]
    pub fn count_answers(&self, n: u64) {
        self.answers_created.set(self.answers_created.get() + n);
    }

    /// Records one sequential (sorted) access to an input list.
    #[inline]
    pub fn count_sorted_access(&self) {
        self.sorted_accesses.set(self.sorted_accesses.get() + 1);
    }

    /// Records `n` sequential accesses at once (block-at-a-time gathers).
    #[inline]
    pub fn count_sorted_accesses(&self, n: u64) {
        self.sorted_accesses.set(self.sorted_accesses.get() + n);
    }

    /// Records `n` random accesses at once (block-at-a-time probes).
    #[inline]
    pub fn count_random_accesses(&self, n: u64) {
        self.random_accesses.set(self.random_accesses.get() + n);
    }

    /// Records `n` priority-queue pushes at once.
    #[inline]
    pub fn count_heap_pushes(&self, n: u64) {
        self.heap_pushes.set(self.heap_pushes.get() + n);
    }

    /// Records one random access (hash probe hit enumeration).
    #[inline]
    pub fn count_random_access(&self) {
        self.random_accesses.set(self.random_accesses.get() + 1);
    }

    /// Records one priority-queue push.
    #[inline]
    pub fn count_heap_push(&self) {
        self.heap_pushes.set(self.heap_pushes.get() + 1);
    }

    /// Records one fallback re-execution stage taken by the speculation
    /// lifecycle (the engine escalates a mis-speculated plan and re-runs).
    #[inline]
    pub fn count_fallback_stage(&self) {
        self.fallback_stages.set(self.fallback_stages.get() + 1);
    }

    /// Records `n` answer objects whose work was discarded because the run
    /// that produced them was abandoned by a fallback stage — the price of a
    /// wrong speculative guess, measured instead of hidden.
    #[inline]
    pub fn count_wasted_answers(&self, n: u64) {
        self.wasted_answers.set(self.wasted_answers.get() + n);
    }

    /// Total answer objects created — the paper's memory metric.
    pub fn answers_created(&self) -> u64 {
        self.answers_created.get()
    }

    /// Total sequential list accesses.
    pub fn sorted_accesses(&self) -> u64 {
        self.sorted_accesses.get()
    }

    /// Total random accesses.
    pub fn random_accesses(&self) -> u64 {
        self.random_accesses.get()
    }

    /// Total priority-queue pushes.
    pub fn heap_pushes(&self) -> u64 {
        self.heap_pushes.get()
    }

    /// Fallback re-execution stages taken across this run.
    pub fn fallback_stages(&self) -> u64 {
        self.fallback_stages.get()
    }

    /// Answer objects created by abandoned (mis-speculated) executions.
    pub fn wasted_answers(&self) -> u64 {
        self.wasted_answers.get()
    }

    /// Folds another counter set into this one — how parallel morsel
    /// workers' private (non-`Send`) metrics are merged back into the
    /// query's main handle after the worker threads join.
    pub fn absorb(&self, other: &OpMetrics) {
        self.count_answers(other.answers_created());
        self.count_sorted_accesses(other.sorted_accesses());
        self.count_random_accesses(other.random_accesses());
        self.count_heap_pushes(other.heap_pushes());
        self.fallback_stages
            .set(self.fallback_stages.get() + other.fallback_stages());
        self.count_wasted_answers(other.wasted_answers());
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.answers_created.set(0);
        self.sorted_accesses.set(0);
        self.random_accesses.set(0);
        self.heap_pushes.set(0);
        self.fallback_stages.set(0);
        self.wasted_answers.set(0);
    }
}

/// Thread-safe hit/miss/eviction accounting for a cross-query cache.
///
/// Unlike [`OpMetrics`] (single-threaded, per-execution), these counters are
/// atomics: one handle is cloned into every service worker thread hitting the
/// same cache. Invariant maintained by well-behaved caches:
/// `hits() + misses() == lookups()`.
#[derive(Default, Debug)]
pub struct CacheMetrics {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    stale: AtomicU64,
}

/// Cheap cloneable handle to [`CacheMetrics`].
pub type CacheMetricsHandle = Arc<CacheMetrics>;

impl CacheMetrics {
    /// Fresh all-zero counters behind an [`Arc`].
    pub fn new_handle() -> CacheMetricsHandle {
        Arc::new(CacheMetrics::default())
    }

    /// Records one lookup that found a cached entry.
    #[inline]
    pub fn count_hit(&self) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one lookup that found nothing.
    #[inline]
    pub fn count_miss(&self) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one entry inserted into the cache.
    #[inline]
    pub fn count_insertion(&self) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one entry evicted to make room.
    #[inline]
    pub fn count_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one entry dropped because it was built against an older
    /// statistics generation (a feedback refit made it stale). Counted in
    /// addition to the miss the same lookup reports.
    #[inline]
    pub fn count_stale(&self) {
        self.stale.fetch_add(1, Ordering::Relaxed);
    }

    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Lookups that found a cached entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries inserted.
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Entries evicted.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries dropped as generation-stale.
    pub fn stale(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0, 1]`; 0 when nothing has been looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = OpMetrics::new_handle();
        m.count_answer();
        m.count_answers(4);
        m.count_sorted_access();
        m.count_random_access();
        m.count_heap_push();
        assert_eq!(m.answers_created(), 5);
        assert_eq!(m.sorted_accesses(), 1);
        assert_eq!(m.random_accesses(), 1);
        assert_eq!(m.heap_pushes(), 1);
        m.reset();
        assert_eq!(m.answers_created(), 0);
    }

    #[test]
    fn handle_is_shared() {
        let m = OpMetrics::new_handle();
        let m2 = Rc::clone(&m);
        m2.count_answer();
        assert_eq!(m.answers_created(), 1);
    }

    #[test]
    fn cache_metrics_invariant_and_rate() {
        let c = CacheMetrics::new_handle();
        c.count_miss();
        c.count_insertion();
        c.count_hit();
        c.count_hit();
        c.count_eviction();
        assert_eq!(c.lookups(), 3);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.insertions(), 1);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.hits() + c.misses(), c.lookups());
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cache_metrics_shared_across_threads() {
        let c = CacheMetrics::new_handle();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..100 {
                        c.count_miss();
                    }
                });
            }
        });
        assert_eq!(c.misses(), 400);
        assert_eq!(c.lookups(), 400);
    }
}
