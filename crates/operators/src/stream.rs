//! The ranked-stream abstraction all operators implement.

use crate::answer::PartialAnswer;
use specqp_common::Score;

/// A pull-based stream of [`PartialAnswer`]s in non-increasing score order
/// that can bound the score of everything it has not yet produced.
///
/// The bound is what enables early termination: once a consumer holds `k`
/// answers with scores ≥ `upper_bound()`, no future answer can displace
/// them.
///
/// # Contract
/// * `next()` returns answers with non-increasing scores;
/// * `upper_bound()` returns `None` iff the stream will never produce
///   another answer; otherwise `Some(b)` with `b ≥` every future score;
/// * calling `upper_bound()` never advances the stream.
pub trait RankedStream {
    /// Produces the next-best answer, or `None` when exhausted.
    fn next(&mut self) -> Option<PartialAnswer>;

    /// Upper bound on all future answers (see trait docs).
    fn upper_bound(&self) -> Option<Score>;
}

/// Convenience alias for boxed operator-tree nodes borrowing a graph for
/// lifetime `'g`.
pub type BoxedStream<'g> = Box<dyn RankedStream + 'g>;

impl RankedStream for BoxedStream<'_> {
    fn next(&mut self) -> Option<PartialAnswer> {
        (**self).next()
    }
    fn upper_bound(&self) -> Option<Score> {
        (**self).upper_bound()
    }
}

/// A stream replaying a pre-sorted vector — used by tests and by the
/// nested-loops rank join, which requires materialized inputs.
#[derive(Debug, Clone)]
pub struct VecStream {
    items: Vec<PartialAnswer>,
    pos: usize,
}

impl VecStream {
    /// Wraps `items`, which must already be sorted by non-increasing score.
    ///
    /// # Panics
    /// Panics in debug builds if the order is violated.
    pub fn new(items: Vec<PartialAnswer>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0].score >= w[1].score),
            "VecStream input must be sorted by non-increasing score"
        );
        VecStream { items, pos: 0 }
    }

    /// Sorts `items` by descending score (deterministic tie-break) and wraps
    /// them.
    pub fn from_unsorted(mut items: Vec<PartialAnswer>) -> Self {
        items.sort_by(|a, b| b.cmp(a));
        VecStream { items, pos: 0 }
    }

    /// Remaining (unconsumed) items.
    pub fn remaining(&self) -> usize {
        self.items.len() - self.pos
    }
}

impl RankedStream for VecStream {
    fn next(&mut self) -> Option<PartialAnswer> {
        let item = self.items.get(self.pos)?.clone();
        self.pos += 1;
        Some(item)
    }

    fn upper_bound(&self) -> Option<Score> {
        self.items.get(self.pos).map(|a| a.score)
    }
}

/// Drains a stream into a vector (sorted by construction).
pub fn materialize<S: RankedStream>(mut stream: S) -> Vec<PartialAnswer> {
    let mut out = Vec::new();
    while let Some(a) = stream.next() {
        out.push(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Binding;
    use sparql::Var;
    use specqp_common::TermId;

    fn ans(v: u32, s: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(vec![(Var(0), TermId(v))]),
            Score::new(s),
        )
    }

    #[test]
    fn vec_stream_replays_in_order() {
        let mut s = VecStream::new(vec![ans(1, 0.9), ans(2, 0.5), ans(3, 0.1)]);
        assert_eq!(s.upper_bound(), Some(Score::new(0.9)));
        assert_eq!(s.next().unwrap().score.value(), 0.9);
        assert_eq!(s.upper_bound(), Some(Score::new(0.5)));
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next().unwrap().score.value(), 0.5);
        assert_eq!(s.next().unwrap().score.value(), 0.1);
        assert_eq!(s.upper_bound(), None);
        assert!(s.next().is_none());
    }

    #[test]
    fn from_unsorted_sorts_descending() {
        let s = VecStream::from_unsorted(vec![ans(1, 0.1), ans(2, 0.9), ans(3, 0.5)]);
        let scores: Vec<f64> = materialize(s).iter().map(|a| a.score.value()).collect();
        assert_eq!(scores, vec![0.9, 0.5, 0.1]);
    }

    #[test]
    fn boxed_stream_dispatch() {
        let mut s: BoxedStream<'static> = Box::new(VecStream::new(vec![ans(1, 1.0)]));
        assert_eq!(s.upper_bound(), Some(Score::ONE));
        assert!(s.next().is_some());
        assert!(s.next().is_none());
    }
}
