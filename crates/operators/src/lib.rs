//! Top-k query operators: sorted scans, incremental merge, and rank joins.
//!
//! This crate implements the physical operators of §2.1 of the paper:
//!
//! * [`PatternScan`] — streams the (optionally weighted) normalized matches
//!   of one triple pattern in descending score order (Def. 5),
//! * [`IncrementalMerge`] — merges a pattern and its relaxations into one
//!   descending stream with max-score deduplication (Theobald et al.,
//!   SIGIR'05, cited as \[29\]),
//! * [`RankJoin`] — the HRJN hash rank join with corner-bound thresholds and
//!   a pluggable pull strategy, including the HRJN\* adaptive strategy
//!   (Ilyas et al., VLDB'03/VLDB J.'04, cited as \[15,16\]),
//! * [`NestedLoopsRankJoin`] — the storage-free NRJN variant used by the
//!   ablation benches,
//! * [`top_k`] / [`top_k_projected`] — result collection with early
//!   termination.
//!
//! All operators implement [`RankedStream`]: a pull-based iterator of
//! [`PartialAnswer`]s in non-increasing score order that also exposes an
//! [`upper bound`](RankedStream::upper_bound) on every future answer, which
//! is what lets a consumer stop early once `k` answers at or above the bound
//! have been seen.
//!
//! Every answer object the operators materialize is counted through a shared
//! [`OpMetrics`] handle — the paper's memory metric (§4.3: "the total no. of
//! answer objects created directly corresponds to the amount of search space
//! traversed").

//! # Block-at-a-time execution
//!
//! Every operator above also has a vectorized sibling moving
//! [`AnswerBlock`] batches instead of single answers — [`BlockScan`],
//! [`BlockRankJoin`], [`BlockIncrementalMerge`], [`BlockNestedLoopsRankJoin`]
//! and [`top_k_blocks`] — behind the [`BlockStream`] trait. Both paths
//! produce identical answers in identical order; [`ExecutionMode`] is the
//! engine-level switch (see the `block` module docs).

pub mod adapt;
pub mod answer;
pub mod block;
pub mod block_join;
pub mod incr_merge;
pub mod metrics;
pub mod morsel;
pub mod nrjn;
pub mod rank_join;
pub mod scan;
pub mod stream;
pub mod topk;

pub use adapt::{Projected, Scaled};
pub use answer::{Binding, PartialAnswer};
pub use block::{
    top_k_blocks, AnswerBlock, Block, BlockStream, BoxedBlockStream, ExecutionMode, RowsToBlocks,
    DEFAULT_BLOCK_SIZE,
};
pub use block_join::{BlockIncrementalMerge, BlockNestedLoopsRankJoin, BlockRankJoin};
pub use incr_merge::IncrementalMerge;
pub use metrics::{CacheMetrics, CacheMetricsHandle, MetricsHandle, OpMetrics};
pub use morsel::{MorselDispenser, DEFAULT_MORSEL_ROWS};
pub use nrjn::NestedLoopsRankJoin;
pub use rank_join::{PullStrategy, RankJoin};
pub use scan::{BlockScan, PatternScan};
pub use stream::{materialize, BoxedStream, RankedStream, VecStream};
pub use topk::{top_k, top_k_projected};
