//! Sorted scans of one triple pattern's match list — tuple-at-a-time
//! ([`PatternScan`]) and block-at-a-time ([`BlockScan`]).

use crate::answer::{Binding, PartialAnswer};
use crate::block::{AnswerBlock, Block, BlockSizer, BlockStream};
use crate::metrics::MetricsHandle;
use crate::morsel::MorselDispenser;
use crate::stream::RankedStream;
use kgstore::{KnowledgeGraph, MatchList, PatternKey, Triple};
use sparql::{Term, TriplePattern, Var};
use specqp_common::Score;
use std::sync::Arc;

/// Streams the matches of one triple pattern in descending score order,
/// binding the pattern's variables and emitting **normalized, weighted**
/// scores:
///
/// * normalization per Def. 5 — each score is divided by the best score in
///   this pattern's own match list, so the head of the stream is 1.0;
/// * the `weight` factor implements Def. 8 — a relaxed pattern's stream is
///   scaled by its rule weight `w`, so its head is exactly `w` (this is the
///   property PLANGEN exploits: "the top score from each relaxation is equal
///   to its weight").
///
/// Patterns with a repeated variable (e.g. `?x p ?x`) are filtered to
/// matches where the repeated positions agree, and the normalizer is the
/// best score among the *filtered* matches.
pub struct PatternScan<'g> {
    list: MatchList<'g>,
    pattern: TriplePattern,
    weight: Score,
    normalizer: Score,
    /// Rank of the next match satisfying the repeated-variable constraint.
    next_rank: usize,
    metrics: MetricsHandle,
}

impl<'g> PatternScan<'g> {
    /// Creates a scan of `pattern` over `graph` with relaxation weight
    /// `weight` (1.0 for an original, un-relaxed pattern).
    pub fn new(
        graph: &'g KnowledgeGraph,
        pattern: TriplePattern,
        weight: Score,
        metrics: MetricsHandle,
    ) -> Self {
        let (s, p, o) = pattern.const_parts();
        let list = graph.matches(PatternKey { s, p, o });
        let mut scan = PatternScan {
            list,
            pattern,
            weight,
            normalizer: Score::ZERO,
            next_rank: 0,
            metrics,
        };
        scan.next_rank = scan.find_satisfying(0);
        if scan.next_rank < scan.list.len() {
            scan.normalizer = scan.list.score_at(scan.next_rank);
        }
        scan
    }

    /// The number of matches the scan can produce in total (after the
    /// repeated-variable filter this is an upper bound).
    pub fn match_count(&self) -> usize {
        self.list.len()
    }

    fn satisfies(&self, t: &Triple) -> bool {
        // Repeated variables force component equality.
        let same = |x: Term, y: Term| x.is_var() && x == y;
        if same(self.pattern.s, self.pattern.p) && t.s != t.p {
            return false;
        }
        if same(self.pattern.s, self.pattern.o) && t.s != t.o {
            return false;
        }
        if same(self.pattern.p, self.pattern.o) && t.p != t.o {
            return false;
        }
        true
    }

    fn find_satisfying(&self, from: usize) -> usize {
        let mut r = from;
        while r < self.list.len() && !self.satisfies(&self.list.triple_at(r)) {
            r += 1;
        }
        r
    }

    fn bind(&self, t: &Triple) -> Binding {
        let mut pairs: Vec<(Var, specqp_common::TermId)> = Vec::with_capacity(3);
        if let Term::Var(v) = self.pattern.s {
            pairs.push((v, t.s));
        }
        if let Term::Var(v) = self.pattern.p {
            pairs.push((v, t.p));
        }
        if let Term::Var(v) = self.pattern.o {
            pairs.push((v, t.o));
        }
        Binding::from_pairs(pairs)
    }

    #[inline]
    fn weighted_score(&self, rank: usize) -> Score {
        if self.normalizer == Score::ZERO {
            return Score::ZERO;
        }
        self.weight * (self.list.score_at(rank) / self.normalizer.value())
    }
}

impl RankedStream for PatternScan<'_> {
    fn next(&mut self) -> Option<PartialAnswer> {
        if self.next_rank >= self.list.len() {
            return None;
        }
        let rank = self.next_rank;
        self.next_rank = self.find_satisfying(rank + 1);
        let triple = self.list.triple_at(rank);
        let answer = PartialAnswer::new(self.bind(&triple), self.weighted_score(rank));
        self.metrics.count_sorted_access();
        self.metrics.count_answer();
        Some(answer)
    }

    fn upper_bound(&self) -> Option<Score> {
        if self.next_rank >= self.list.len() {
            None
        } else {
            Some(self.weighted_score(self.next_rank))
        }
    }
}

/// Which triple component supplies a schema slot's value.
#[derive(Clone, Copy, Debug)]
enum Slot {
    S,
    P,
    O,
}

/// Block-at-a-time sibling of [`PatternScan`]: streams the same normalized,
/// weighted matches, but as [`AnswerBlock`] batches gathered column-wise
/// from the store ([`Block::fill_from`]) instead of one allocated
/// [`PartialAnswer`] at a time. Scores use the identical normalization
/// expression, so the two scans are bit-for-bit interchangeable.
///
/// ```
/// use kgstore::KnowledgeGraphBuilder;
/// use operators::{BlockScan, BlockStream, OpMetrics};
/// use sparql::{TriplePattern, Var};
/// use specqp_common::Score;
///
/// let mut b = KnowledgeGraphBuilder::new();
/// b.add("a", "type", "singer", 10.0);
/// b.add("b", "type", "singer", 5.0);
/// let g = b.build();
/// let d = g.dictionary();
/// let pat = TriplePattern::new(Var(0), d.lookup("type").unwrap(), d.lookup("singer").unwrap());
/// let mut scan = BlockScan::new(&g, pat, Score::ONE, OpMetrics::new_handle(), 128);
/// let block = scan.next_block().unwrap();
/// assert_eq!(block.len(), 2);
/// assert_eq!(block.score(0), Score::ONE); // head normalized to the weight
/// assert_eq!(block.score(1), Score::new(0.5));
/// assert!(scan.next_block().is_none());
/// ```
pub struct BlockScan<'g> {
    list: MatchList<'g>,
    weight: Score,
    normalizer: Score,
    /// Rank of the next match satisfying the repeated-variable constraint.
    next_rank: usize,
    /// Exclusive end of the rank range this scan may emit — `list.len()`
    /// for a whole-list scan, the current morsel's end when partitioned.
    range_end: usize,
    /// Shared morsel source for partitioned (parallel) scans.
    dispenser: Option<Arc<MorselDispenser>>,
    /// Repeated-variable equality requirements (`?x p ?x` and friends).
    req_sp: bool,
    req_so: bool,
    req_po: bool,
    schema: Vec<Var>,
    slots: Vec<Slot>,
    sizer: BlockSizer,
    /// Reused raw-gather scratch.
    raw: Block,
    metrics: MetricsHandle,
}

impl<'g> BlockScan<'g> {
    /// Creates a block scan of `pattern` over `graph` with relaxation
    /// weight `weight`, emitting blocks of up to `block_size` rows.
    pub fn new(
        graph: &'g KnowledgeGraph,
        pattern: TriplePattern,
        weight: Score,
        metrics: MetricsHandle,
        block_size: usize,
    ) -> Self {
        let (s, p, o) = pattern.const_parts();
        let list = graph.matches(PatternKey { s, p, o });
        let same = |x: Term, y: Term| x.is_var() && x == y;
        let mut pairs: Vec<(Var, Slot)> = Vec::with_capacity(3);
        for (t, slot) in [
            (pattern.s, Slot::S),
            (pattern.p, Slot::P),
            (pattern.o, Slot::O),
        ] {
            if let Term::Var(v) = t {
                if !pairs.iter().any(|&(w, _)| w == v) {
                    pairs.push((v, slot));
                }
            }
        }
        pairs.sort_unstable_by_key(|&(v, _)| v);
        let range_end = list.len();
        let mut scan = BlockScan {
            list,
            weight,
            normalizer: Score::ZERO,
            next_rank: 0,
            range_end,
            dispenser: None,
            req_sp: same(pattern.s, pattern.p),
            req_so: same(pattern.s, pattern.o),
            req_po: same(pattern.p, pattern.o),
            schema: pairs.iter().map(|&(v, _)| v).collect(),
            slots: pairs.iter().map(|&(_, s)| s).collect(),
            sizer: BlockSizer::new(block_size),
            raw: Block::with_capacity(block_size.clamp(1, 32)),
            metrics,
        };
        scan.next_rank = scan.find_satisfying(0);
        if scan.next_rank < scan.list.len() {
            scan.normalizer = scan.list.score_at(scan.next_rank);
        }
        scan
    }

    /// A partitioned scan for morsel-driven parallel execution: identical
    /// weighting to [`BlockScan::new`] (the normalizer comes from the *full*
    /// match list), but the scan only emits ranks it claims from the shared
    /// `dispenser` — one dispenser, one worker tree per scan, and the union
    /// of all workers' rows is exactly the sequential scan's output.
    ///
    /// The dispenser must have been created over this pattern's match-list
    /// length (ranks outside `0..list.len()` are never claimed by
    /// construction).
    pub fn with_morsels(
        graph: &'g KnowledgeGraph,
        pattern: TriplePattern,
        weight: Score,
        metrics: MetricsHandle,
        block_size: usize,
        dispenser: Arc<MorselDispenser>,
    ) -> Self {
        let mut scan = BlockScan::new(graph, pattern, weight, metrics, block_size);
        debug_assert_eq!(dispenser.total(), scan.list.len());
        scan.dispenser = Some(dispenser);
        // Own nothing until the first claim.
        scan.next_rank = 0;
        scan.range_end = 0;
        scan.advance_to_morsel();
        scan
    }

    /// Claims morsels until one contains a satisfying rank (or the
    /// dispenser runs dry, which pins the scan exhausted). No-op for
    /// whole-list scans and while the current range still has rows.
    fn advance_to_morsel(&mut self) {
        let Some(d) = self.dispenser.as_ref() else {
            return;
        };
        while self.next_rank >= self.range_end {
            let Some(r) = d.claim() else {
                self.next_rank = self.list.len();
                self.range_end = self.list.len();
                return;
            };
            let first = self.find_satisfying(r.start);
            if first < r.end {
                self.next_rank = first;
                self.range_end = r.end;
            }
        }
    }

    fn has_repeat(&self) -> bool {
        self.req_sp || self.req_so || self.req_po
    }

    fn satisfies(&self, t: &Triple) -> bool {
        !(self.req_sp && t.s != t.p || self.req_so && t.s != t.o || self.req_po && t.p != t.o)
    }

    fn find_satisfying(&self, from: usize) -> usize {
        if !self.has_repeat() {
            return from;
        }
        let mut r = from;
        while r < self.list.len() && !self.satisfies(&self.list.triple_at(r)) {
            r += 1;
        }
        r
    }

    /// Same expression as [`PatternScan`]'s weighting, evaluated on a raw
    /// score (bit-identical results between the two paths).
    #[inline]
    fn weighted(&self, raw: Score) -> Score {
        if self.normalizer == Score::ZERO {
            return Score::ZERO;
        }
        self.weight * (raw / self.normalizer.value())
    }
}

impl BlockStream for BlockScan<'_> {
    fn schema(&self) -> &[Var] {
        &self.schema
    }

    fn next_block(&mut self) -> Option<AnswerBlock> {
        if self.next_rank >= self.range_end {
            return None;
        }
        let n = self.sizer.take();
        self.raw.clear();
        if !self.has_repeat() {
            let end = (self.next_rank + n).min(self.range_end);
            self.raw.fill_from(&self.list, self.next_rank..end);
            self.next_rank = end;
        } else {
            // next_rank points at a satisfying rank, so at least one row
            // lands in the block.
            let mut rank = self.next_rank;
            while rank < self.range_end && self.raw.len() < n {
                let t = self.list.triple_at(rank);
                if self.satisfies(&t) {
                    self.raw.push(t, self.list.score_at(rank));
                }
                rank += 1;
            }
            self.next_rank = self.find_satisfying(rank);
        }

        let rows = self.raw.len();
        let mut out = AnswerBlock::with_capacity(self.schema.clone(), rows);
        let (raw, slots) = (&self.raw, &self.slots);
        let col = |slot: Slot| -> &[specqp_common::TermId] {
            match slot {
                Slot::S => &raw.s,
                Slot::P => &raw.p,
                Slot::O => &raw.o,
            }
        };
        {
            let (terms, scores) = out.parts_mut();
            match *slots.as_slice() {
                // Width-specialized fills: one columnar memcpy (width 1) or
                // an interleaving loop without per-row dispatch.
                [a] => terms.extend_from_slice(col(a)),
                [a, b] => {
                    let (ca, cb) = (col(a), col(b));
                    for i in 0..rows {
                        terms.push(ca[i]);
                        terms.push(cb[i]);
                    }
                }
                [a, b, c] => {
                    let (ca, cb, cc) = (col(a), col(b), col(c));
                    for i in 0..rows {
                        terms.push(ca[i]);
                        terms.push(cb[i]);
                        terms.push(cc[i]);
                    }
                }
                _ => {}
            }
            // Same float expression (and op order) as the row scan's
            // `weighted_score`, evaluated over the whole score column.
            if self.normalizer == Score::ZERO {
                scores.extend(std::iter::repeat_n(Score::ZERO, rows));
            } else {
                let (w, norm) = (self.weight, self.normalizer.value());
                scores.extend(raw.score.iter().map(|&s| w * (s / norm)));
            }
        }
        self.metrics.count_sorted_accesses(rows as u64);
        self.metrics.count_answers(rows as u64);
        // Claim the next morsel eagerly so `upper_bound` (which cannot
        // mutate) is already accurate for the consumer's threshold checks.
        self.advance_to_morsel();
        Some(out)
    }

    fn upper_bound(&self) -> Option<Score> {
        if self.next_rank >= self.range_end {
            None
        } else {
            Some(self.weighted(self.list.score_at(self.next_rank)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OpMetrics;
    use crate::stream::materialize;
    use kgstore::KnowledgeGraphBuilder;
    use sparql::Var;

    fn graph() -> KnowledgeGraph {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("a", "type", "singer", 10.0);
        b.add("b", "type", "singer", 5.0);
        b.add("c", "type", "singer", 1.0);
        b.add("x", "type", "vocalist", 8.0);
        b.add("y", "type", "vocalist", 2.0);
        b.add("loop", "self", "loop", 4.0);
        b.add("loop2", "self", "other", 9.0);
        b.build()
    }

    fn type_pattern(g: &KnowledgeGraph, class: &str) -> TriplePattern {
        let d = g.dictionary();
        TriplePattern::new(Var(0), d.lookup("type").unwrap(), d.lookup(class).unwrap())
    }

    #[test]
    fn emits_normalized_descending_scores() {
        let g = graph();
        let m = OpMetrics::new_handle();
        let scan = PatternScan::new(&g, type_pattern(&g, "singer"), Score::ONE, m.clone());
        let out = materialize(scan);
        let scores: Vec<f64> = out.iter().map(|a| a.score.value()).collect();
        assert_eq!(scores, vec![1.0, 0.5, 0.1]);
        assert_eq!(m.answers_created(), 3);
        assert_eq!(m.sorted_accesses(), 3);
    }

    #[test]
    fn weight_scales_head_to_w() {
        let g = graph();
        let m = OpMetrics::new_handle();
        let scan = PatternScan::new(&g, type_pattern(&g, "vocalist"), Score::new(0.8), m);
        let out = materialize(scan);
        let scores: Vec<f64> = out.iter().map(|a| a.score.value()).collect();
        assert_eq!(scores, vec![0.8, 0.2]);
    }

    #[test]
    fn upper_bound_tracks_next_score() {
        let g = graph();
        let m = OpMetrics::new_handle();
        let mut scan = PatternScan::new(&g, type_pattern(&g, "singer"), Score::ONE, m);
        assert_eq!(scan.upper_bound(), Some(Score::ONE));
        scan.next();
        assert_eq!(scan.upper_bound(), Some(Score::new(0.5)));
        scan.next();
        scan.next();
        assert_eq!(scan.upper_bound(), None);
        assert!(scan.next().is_none());
    }

    #[test]
    fn binds_all_var_positions() {
        let g = graph();
        let d = g.dictionary();
        let m = OpMetrics::new_handle();
        let pat = TriplePattern::new(Var(0), Var(1), d.lookup("singer").unwrap());
        let scan = PatternScan::new(&g, pat, Score::ONE, m);
        let out = materialize(scan);
        assert_eq!(out.len(), 3);
        assert!(out[0].binding.get(Var(1)).is_some());
    }

    #[test]
    fn repeated_var_filters_and_renormalizes() {
        let g = graph();
        let d = g.dictionary();
        let m = OpMetrics::new_handle();
        // ?x <self> ?x matches only the "loop" triple (score 4), not loop2
        // (score 9) — and normalization must use 4, not 9.
        let pat = TriplePattern::new(Var(0), d.lookup("self").unwrap(), Var(0));
        let scan = PatternScan::new(&g, pat, Score::ONE, m);
        let out = materialize(scan);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].score, Score::ONE);
        assert_eq!(out[0].binding.get(Var(0)), Some(d.lookup("loop").unwrap()));
    }

    #[test]
    fn empty_match_list() {
        let g = graph();
        let d = g.dictionary();
        let m = OpMetrics::new_handle();
        let pat = TriplePattern::new(
            Var(0),
            d.lookup("type").unwrap(),
            d.lookup("a").unwrap(), // "a" is never an object of type
        );
        let mut scan = PatternScan::new(&g, pat, Score::ONE, m);
        assert_eq!(scan.upper_bound(), None);
        assert!(scan.next().is_none());
    }

    /// Drains a block scan into row answers.
    fn drain_blocks(mut scan: BlockScan<'_>) -> Vec<PartialAnswer> {
        let mut out = Vec::new();
        while let Some(b) = scan.next_block() {
            out.extend(b.to_answers());
        }
        out
    }

    #[test]
    fn block_scan_matches_row_scan_bitwise() {
        let g = graph();
        let d = g.dictionary();
        let patterns = vec![
            type_pattern(&g, "singer"),
            type_pattern(&g, "vocalist"),
            TriplePattern::new(Var(0), Var(1), d.lookup("singer").unwrap()),
            // Repeated variable: filter + renormalization must agree.
            TriplePattern::new(Var(0), d.lookup("self").unwrap(), Var(0)),
            // Empty match list.
            TriplePattern::new(Var(0), d.lookup("type").unwrap(), d.lookup("a").unwrap()),
        ];
        for pat in patterns {
            for weight in [Score::ONE, Score::new(0.8)] {
                let rows = materialize(PatternScan::new(&g, pat, weight, OpMetrics::new_handle()));
                for size in [1, 2, 64] {
                    let m = OpMetrics::new_handle();
                    let scan = BlockScan::new(&g, pat, weight, m.clone(), size);
                    let got = drain_blocks(scan);
                    assert_eq!(got, rows, "{pat:?} size {size}");
                    assert_eq!(m.answers_created(), rows.len() as u64);
                    assert_eq!(m.sorted_accesses(), rows.len() as u64);
                }
            }
        }
    }

    #[test]
    fn morsel_scans_union_to_the_sequential_scan() {
        let g = graph();
        let d = g.dictionary();
        let patterns = vec![
            type_pattern(&g, "singer"),
            TriplePattern::new(Var(0), Var(1), d.lookup("singer").unwrap()),
            // Repeated variable: morsels must respect the filter.
            TriplePattern::new(Var(0), d.lookup("self").unwrap(), Var(0)),
            // Empty match list.
            TriplePattern::new(Var(0), d.lookup("type").unwrap(), d.lookup("a").unwrap()),
        ];
        for pat in patterns {
            let sequential = drain_blocks(BlockScan::new(
                &g,
                pat,
                Score::ONE,
                OpMetrics::new_handle(),
                3,
            ));
            for (workers, morsel) in [(1, 2), (2, 1), (3, 2), (8, 1)] {
                let (s, p, o) = pat.const_parts();
                let total = g.matches(PatternKey { s, p, o }).len();
                let dispenser = Arc::new(MorselDispenser::new(total, morsel));
                let mut got: Vec<PartialAnswer> = (0..workers)
                    .flat_map(|_| {
                        drain_blocks(BlockScan::with_morsels(
                            &g,
                            pat,
                            Score::ONE,
                            OpMetrics::new_handle(),
                            3,
                            Arc::clone(&dispenser),
                        ))
                    })
                    .collect();
                got.sort_by(|a, b| b.cmp(a));
                assert_eq!(got, sequential, "{pat:?} workers {workers}");
            }
        }
    }

    #[test]
    fn morsel_scan_upper_bound_never_increases() {
        let g = graph();
        let dispenser = Arc::new(MorselDispenser::new(3, 1));
        let mut scan = BlockScan::with_morsels(
            &g,
            type_pattern(&g, "singer"),
            Score::ONE,
            OpMetrics::new_handle(),
            2,
            dispenser,
        );
        let mut last = scan.upper_bound();
        let mut rows = 0;
        while let Some(b) = scan.next_block() {
            rows += b.len();
            let now = scan.upper_bound();
            if let (Some(prev), Some(cur)) = (last, now) {
                assert!(cur <= prev, "bound rose from {prev:?} to {cur:?}");
            }
            last = now;
        }
        assert_eq!(rows, 3, "single worker claims the whole list");
        assert_eq!(scan.upper_bound(), None);
    }

    #[test]
    fn block_scan_upper_bound_tracks_blocks() {
        let g = graph();
        let mut scan = BlockScan::new(
            &g,
            type_pattern(&g, "singer"),
            Score::ONE,
            OpMetrics::new_handle(),
            2,
        );
        assert_eq!(scan.schema(), &[Var(0)]);
        assert_eq!(scan.upper_bound(), Some(Score::ONE));
        let b = scan.next_block().unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(scan.upper_bound(), Some(Score::new(0.1)));
        let b = scan.next_block().unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(scan.upper_bound(), None);
        assert!(scan.next_block().is_none());
    }
}
