//! Service throughput bench: queries/sec of the concurrent query service at
//! 1, 2 and 4 worker threads over a repeated XKG workload — the BENCH
//! headline for the serving layer. The repeated shapes keep the plan cache
//! hot, so this measures execution + dispatch, the steady-state serving
//! cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{XkgConfig, XkgGenerator};
use specqp_service::{QueryJob, QueryService, ServiceConfig};
use std::sync::Arc;

fn bench_service(c: &mut Criterion) {
    let ds = XkgGenerator::new(XkgConfig::small(0x5e41ce)).generate();
    let jobs: Vec<QueryJob> = ds
        .workload
        .queries
        .iter()
        .cycle()
        .take(48)
        .map(|q| QueryJob::specqp(q.clone(), 10))
        .collect();
    let graph = Arc::new(ds.graph);
    let registry = Arc::new(ds.registry);

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        let service = QueryService::new(
            Arc::clone(&graph),
            Arc::clone(&registry),
            ServiceConfig::with_threads(threads),
        );
        // Warm the plan/stats caches so samples measure steady state.
        let _ = service.run_batch(&jobs);
        group.bench_with_input(
            BenchmarkId::new("batch48_threads", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    let report = service.run_batch(&jobs);
                    assert_eq!(report.outcomes.len(), jobs.len());
                    report.stats.queries_per_sec
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
