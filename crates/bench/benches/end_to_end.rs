//! End-to-end bench: Spec-QP vs TriniT per dataset and k on a workload
//! sample — the headline comparison behind Figures 6–9, in Criterion form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{TwitterConfig, TwitterGenerator, XkgConfig, XkgGenerator};
use specqp::Engine;

fn bench_dataset(c: &mut Criterion, name: &str, ds: &datagen::Dataset, sample: usize) {
    let engine = Engine::new(&ds.graph, &ds.registry);
    let queries: Vec<_> = ds.workload.queries.iter().take(sample).collect();
    for q in &queries {
        engine.warm(q, 20);
    }
    let mut group = c.benchmark_group(format!("end_to_end_{name}"));
    group.sample_size(10);
    for &k in &[10usize, 20] {
        group.bench_with_input(BenchmarkId::new("specqp", k), &k, |b, &k| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &queries {
                    total += engine.run_specqp(q, k).answers.len();
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("trinit", k), &k, |b, &k| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &queries {
                    total += engine.run_trinit(q, k).answers.len();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let xkg = XkgGenerator::new(XkgConfig::small(0xE2E)).generate();
    bench_dataset(c, "xkg", &xkg, 6);
    let twitter = TwitterGenerator::new(TwitterConfig::small(0xE2E)).generate();
    bench_dataset(c, "twitter", &twitter, 6);
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
