//! Microbench: rank-join variants (HRJN alternate, HRJN* adaptive, NRJN)
//! against a full-sort join, to a fixed k — the operator ablation behind
//! the related-work discussion (\[15,16,27\]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use operators::{
    top_k, top_k_blocks, AnswerBlock, Binding, BlockNestedLoopsRankJoin, NestedLoopsRankJoin,
    OpMetrics, PartialAnswer, PullStrategy, RankJoin, RankedStream, VecStream,
};
use sparql::Var;
use specqp_common::{Score, TermId};

fn side(len: usize, keys: u32, salt: u32) -> Vec<PartialAnswer> {
    (0..len)
        .map(|i| {
            PartialAnswer::new(
                Binding::from_pairs(vec![
                    (Var(0), TermId((i as u32 * 31 + salt) % keys)),
                    (Var(1 + salt), TermId(i as u32)),
                ]),
                Score::new(1.0 - i as f64 / len as f64),
            )
        })
        .collect()
}

fn bench_rank_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_join_top10");
    let len = 5_000;
    let keys = 512;
    let l = side(len, keys, 0);
    let r = side(len, keys, 1);

    for (name, strategy) in [
        ("hrjn_alternate", PullStrategy::Alternate),
        ("hrjn_star_adaptive", PullStrategy::Adaptive),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let m = OpMetrics::new_handle();
                let mut join = RankJoin::new(
                    Box::new(VecStream::new(l.clone())),
                    Box::new(VecStream::new(r.clone())),
                    vec![Var(0)],
                    strategy,
                    m,
                );
                top_k(&mut join, 10).len()
            })
        });
    }

    group.bench_function("nrjn", |b| {
        b.iter(|| {
            let m = OpMetrics::new_handle();
            let mut join = NestedLoopsRankJoin::new(l.clone(), r.clone(), vec![Var(0)], m);
            top_k(&mut join, 10).len()
        })
    });

    // Block-at-a-time NRJN: same threshold/re-scan semantics, rows exposed
    // in batches and matched by direct key-column comparison.
    let to_block = |rows: &[PartialAnswer], side_var: u32| {
        let mut blk = AnswerBlock::new(vec![Var(0), Var(1 + side_var)]);
        for a in rows {
            blk.push_row(
                &[
                    a.binding.get(Var(0)).unwrap(),
                    a.binding.get(Var(1 + side_var)).unwrap(),
                ],
                a.score,
            );
        }
        blk
    };
    let (lb, rb) = (to_block(&l, 0), to_block(&r, 1));
    group.bench_function("nrjn_block_64", |b| {
        b.iter(|| {
            let m = OpMetrics::new_handle();
            let mut join =
                BlockNestedLoopsRankJoin::new(lb.clone(), rb.clone(), vec![Var(0)], m, 64);
            top_k_blocks(&mut join, 10).len()
        })
    });

    group.bench_function("full_sort_join", |b| {
        b.iter(|| {
            // Materialize-everything baseline: hash join + sort + truncate.
            let mut table: std::collections::HashMap<Option<Box<[TermId]>>, Vec<&PartialAnswer>> =
                std::collections::HashMap::new();
            for a in &l {
                table
                    .entry(a.binding.key_for(&[Var(0)]))
                    .or_default()
                    .push(a);
            }
            let mut out: Vec<PartialAnswer> = Vec::new();
            for bb in &r {
                if let Some(partners) = table.get(&bb.binding.key_for(&[Var(0)])) {
                    for a in partners {
                        out.push(PartialAnswer::new(
                            a.binding.merged(&bb.binding),
                            a.score + bb.score,
                        ));
                    }
                }
            }
            out.sort_by(|x, y| y.cmp(x));
            out.truncate(10);
            out.len()
        })
    });

    group.finish();

    // Early-termination scaling: how many tuples HRJN* pulls for top-1.
    let mut group = c.benchmark_group("rank_join_pulls");
    for &len in &[1_000usize, 10_000, 100_000] {
        let l = side(len, 64, 0);
        let r = side(len, 64, 1);
        group.bench_with_input(BenchmarkId::new("top1", len), &len, |b, _| {
            b.iter(|| {
                let m = OpMetrics::new_handle();
                let mut join = RankJoin::new(
                    Box::new(VecStream::new(l.clone())),
                    Box::new(VecStream::new(r.clone())),
                    vec![Var(0)],
                    PullStrategy::Adaptive,
                    m,
                );
                join.next().map(|a| a.score)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rank_join);
criterion_main!(benches);
