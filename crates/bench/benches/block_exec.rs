//! Row-at-a-time vs block-at-a-time executor on the seeded XKG workload —
//! the criterion view of the `block` object the probe records in
//! `BENCH_probe.json` (the CI gate enforces the speedup; this bench charts
//! how it scales with block size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{Dataset, XkgConfig, XkgGenerator};
use operators::ExecutionMode;
use specqp::{Engine, EngineConfig};

fn engine(ds: &Dataset, execution: ExecutionMode) -> Engine<'_> {
    let e = Engine::with_config(
        &ds.graph,
        &ds.registry,
        EngineConfig::default().with_execution(execution),
    );
    // Warm plans + statistics so iterations time execution, not planning.
    for q in &ds.workload.queries {
        e.warm(q, 10);
    }
    e
}

fn workload(e: &Engine<'_>, ds: &Dataset, k: usize) -> usize {
    ds.workload
        .queries
        .iter()
        .map(|q| e.run_specqp(q, k).answers.len())
        .sum()
}

fn bench_block_exec(c: &mut Criterion) {
    let ds = XkgGenerator::new(XkgConfig::small(0x5eed001)).generate();
    let mut group = c.benchmark_group("executor_workload_top10");

    let row = engine(&ds, ExecutionMode::RowAtATime);
    group.bench_function("row_at_a_time", |b| b.iter(|| workload(&row, &ds, 10)));

    for size in [32usize, 128, 1024] {
        let block = engine(&ds, ExecutionMode::Block(size));
        group.bench_with_input(BenchmarkId::new("block", size), &size, |b, _| {
            b.iter(|| workload(&block, &ds, 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_exec);
criterion_main!(benches);
