//! Microbench: Incremental Merge throughput as a function of the number of
//! relaxation lists and list length (the per-pattern operator of Fig. 1/2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use operators::{Binding, BoxedStream, IncrementalMerge, PartialAnswer, RankedStream, VecStream};
use sparql::Var;
use specqp_common::{Score, TermId};

fn make_list(len: usize, weight: f64, salt: u32) -> Vec<PartialAnswer> {
    (0..len)
        .map(|i| {
            PartialAnswer::new(
                Binding::from_pairs(vec![(Var(0), TermId(salt * 100_000 + i as u32))]),
                Score::new(weight * (1.0 - i as f64 / len as f64)),
            )
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_merge");
    for &n_lists in &[2usize, 5, 10, 20] {
        group.bench_with_input(
            BenchmarkId::new("drain_lists", n_lists),
            &n_lists,
            |b, &n_lists| {
                b.iter(|| {
                    let inputs: Vec<BoxedStream<'static>> = (0..n_lists)
                        .map(|i| {
                            Box::new(VecStream::new(make_list(
                                1_000,
                                1.0 - i as f64 * 0.04,
                                i as u32,
                            ))) as BoxedStream<'static>
                        })
                        .collect();
                    let mut merge = IncrementalMerge::new(inputs);
                    let mut n = 0usize;
                    while merge.next().is_some() {
                        n += 1;
                    }
                    n
                })
            },
        );
    }
    for &len in &[100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("top100_of_len", len), &len, |b, &len| {
            b.iter(|| {
                let inputs: Vec<BoxedStream<'static>> = (0..10)
                    .map(|i| {
                        Box::new(VecStream::new(make_list(len, 1.0 - i as f64 * 0.05, i)))
                            as BoxedStream<'static>
                    })
                    .collect();
                let mut merge = IncrementalMerge::new(inputs);
                let mut out = Vec::with_capacity(100);
                for _ in 0..100 {
                    match merge.next() {
                        Some(a) => out.push(a),
                        None => break,
                    }
                }
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
