//! Microbench: PLANGEN end-to-end planning latency per query (warm
//! statistics), and the exact-oracle vs independence-estimator cardinality
//! ablation. This is the "additional time spent on speculative planning"
//! visible in Figures 7/9 when every pattern ends up relaxed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{XkgConfig, XkgGenerator};
use relax::RelaxationRegistry;
use specqp::plan_query;
use specqp_stats::{
    CardinalityEstimator, ExactCardinality, IndependenceEstimator, RefitMode, StatsCatalog,
};

fn bench_planner(c: &mut Criterion) {
    let ds = XkgGenerator::new(XkgConfig::small(0x91a)).generate();
    let catalog = StatsCatalog::new();
    let exact = ExactCardinality::new();
    let indep = IndependenceEstimator::new();
    let registry: &RelaxationRegistry = &ds.registry;

    // Warm both cardinality backends and the catalog.
    for q in &ds.workload.queries {
        let _ = plan_query(
            &ds.graph,
            q,
            10,
            &catalog,
            &exact,
            registry,
            RefitMode::TwoBucket,
            false,
        );
        let _ = plan_query(
            &ds.graph,
            q,
            10,
            &catalog,
            &indep,
            registry,
            RefitMode::TwoBucket,
            false,
        );
    }

    let mut group = c.benchmark_group("plangen");
    for (qid, q) in ds.workload.queries.iter().enumerate().take(6) {
        group.bench_with_input(
            BenchmarkId::new(format!("exact_tp{}", q.len()), qid),
            q,
            |b, q| {
                b.iter(|| {
                    plan_query(
                        &ds.graph,
                        q,
                        10,
                        &catalog,
                        &exact,
                        registry,
                        RefitMode::TwoBucket,
                        false,
                    )
                    .relaxed_count()
                })
            },
        );
    }
    group.finish();

    // Cardinality backend ablation on a fixed query (cold-cache costs).
    let q = &ds.workload.queries[1];
    let mut group = c.benchmark_group("cardinality_backend");
    group.bench_function("exact_warm", |b| {
        b.iter(|| exact.cardinality(&ds.graph, q.patterns()))
    });
    group.bench_function("independence_warm", |b| {
        b.iter(|| indep.cardinality(&ds.graph, q.patterns()))
    });
    group.bench_function("exact_cold", |b| {
        b.iter(|| {
            let fresh = ExactCardinality::new();
            fresh.cardinality(&ds.graph, q.patterns())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
