//! Microbench: the expected-score estimator — two-bucket refit (paper
//! default) vs multi-bucket exact-ish folding, across query sizes. This is
//! the ablation behind §4.5.2's remark that multi-bucket histograms "will
//! lead to higher planning time overheads".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{XkgConfig, XkgGenerator};
use specqp_stats::{ExactCardinality, RefitMode, ScoreEstimator, StatsCatalog};

fn bench_estimator(c: &mut Criterion) {
    let ds = XkgGenerator::new(XkgConfig::small(0xE57)).generate();
    let catalog = StatsCatalog::new();
    let oracle = ExactCardinality::new();

    // Pick one query per pattern count.
    let mut by_tp: Vec<(usize, &sparql::Query)> = Vec::new();
    for q in &ds.workload.queries {
        if !by_tp.iter().any(|(n, _)| *n == q.len()) {
            by_tp.push((q.len(), q));
        }
    }

    // Warm caches so the bench isolates convolution + quantile math.
    for (_, q) in &by_tp {
        let weighted: Vec<_> = q.patterns().iter().map(|p| (*p, 1.0)).collect();
        let est = ScoreEstimator::new(&catalog, &oracle);
        let _ = est.estimate(&ds.graph, &weighted);
    }

    let mut group = c.benchmark_group("estimator");
    for (tp, q) in &by_tp {
        let weighted: Vec<_> = q.patterns().iter().map(|p| (*p, 1.0)).collect();
        group.bench_with_input(BenchmarkId::new("two_bucket", tp), q, |b, _| {
            let est = ScoreEstimator::new(&catalog, &oracle);
            b.iter(|| {
                est.estimate(&ds.graph, &weighted)
                    .expected_score_at_rank(10)
            })
        });
        for buckets in [16usize, 64, 256] {
            group.bench_with_input(
                BenchmarkId::new(format!("multi_bucket_{buckets}"), tp),
                q,
                |b, _| {
                    let est = ScoreEstimator::with_mode(
                        &catalog,
                        &oracle,
                        RefitMode::MultiBucket(buckets),
                    );
                    b.iter(|| {
                        est.estimate(&ds.graph, &weighted)
                            .expected_score_at_rank(10)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
