//! Experiment harness: runs the paper's workloads through Spec-QP and the
//! TriniT baseline and renders every table and figure of §4.
//!
//! Protocol (matching §4.4): per query and per `k ∈ {10, 15, 20}` the
//! engine is warmed (statistics + cardinality caches — the paper's
//! precomputed metadata plus warm DB cache), then each technique is run
//! [`RUNS`] consecutive times and the average of the last
//! [`MEASURED_RUNS`] is reported.

pub mod harness;
pub mod openloop;
pub mod tables;

pub use harness::{
    ablation_summary, measure_workload, DatasetReport, QueryMeasurement, KS, MEASURED_RUNS, RUNS,
};
pub use openloop::{drive, poisson_schedule, OpenLoopConfig, OpenLoopReport};
pub use tables::{
    render_fig_by_relaxed, render_fig_by_tp, render_table2, render_table3, render_table4,
};
