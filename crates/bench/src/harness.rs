//! Workload measurement.

use datagen::Dataset;
use specqp::{
    precision_at_k, prediction_covering, prediction_exact, required_relaxations, score_error,
    Engine, ScoreError,
};

/// The k values of the paper's evaluation (§4.4).
pub const KS: [usize; 3] = [10, 15, 20];
/// Consecutive runs per (query, technique) pair.
pub const RUNS: usize = 5;
/// Trailing runs that enter the average.
pub const MEASURED_RUNS: usize = 3;

/// Everything measured for one (query, k) cell.
#[derive(Clone, Debug)]
pub struct QueryMeasurement {
    /// Query index in the workload.
    pub qid: usize,
    /// Number of triple patterns (`#TP`).
    pub tp: usize,
    /// The k of this run.
    pub k: usize,
    /// Spec-QP planning time (ms, averaged).
    pub spec_plan_ms: f64,
    /// Spec-QP total time = plan + execute (ms, averaged).
    pub spec_total_ms: f64,
    /// TriniT total time (ms, averaged).
    pub trinit_total_ms: f64,
    /// Spec-QP answer objects created.
    pub spec_mem: u64,
    /// TriniT answer objects created.
    pub trinit_mem: u64,
    /// Number of patterns Spec-QP decided to relax.
    pub relaxed_by_spec: usize,
    /// Number of patterns whose relaxations contribute to the true top-k.
    pub relaxed_required: usize,
    /// Exact-prediction indicator (Table 3 criterion).
    pub prediction_exact: bool,
    /// Covering-prediction indicator (every required pattern relaxed;
    /// supersets allowed — quality-preserving misses).
    pub prediction_covering: bool,
    /// Precision (= recall) against the TriniT top-k.
    pub precision: f64,
    /// Score error against the TriniT top-k.
    pub error: ScoreError,
}

/// All measurements over one dataset.
#[derive(Clone, Debug)]
pub struct DatasetReport {
    /// Dataset name ("xkg"/"twitter").
    pub name: String,
    /// One row per (query, k).
    pub rows: Vec<QueryMeasurement>,
}

impl DatasetReport {
    /// Rows for one k.
    pub fn for_k(&self, k: usize) -> impl Iterator<Item = &QueryMeasurement> {
        self.rows.iter().filter(move |r| r.k == k)
    }
}

/// Runs the full §4.4 protocol over a dataset.
///
/// `ks` selects the top-k values (the paper uses 10/15/20). Progress is
/// reported through `progress` (e.g. `|msg| eprintln!("{msg}")`).
pub fn measure_workload(
    dataset: &Dataset,
    ks: &[usize],
    mut progress: impl FnMut(&str),
) -> DatasetReport {
    let engine = Engine::new(&dataset.graph, &dataset.registry);
    let mut rows = Vec::with_capacity(dataset.workload.len() * ks.len());

    for (qid, query) in dataset.workload.queries.iter().enumerate() {
        for &k in ks {
            // Warm: statistics catalog + cardinality oracle + OS caches.
            engine.warm(query, k);

            // Spec-QP: RUNS consecutive runs, average the last MEASURED.
            let mut spec_plan = 0.0;
            let mut spec_total = 0.0;
            let mut spec_last = None;
            for run in 0..RUNS {
                let out = engine.run_specqp(query, k);
                if run >= RUNS - MEASURED_RUNS {
                    spec_plan += out.report.planning.as_secs_f64() * 1e3;
                    spec_total += out.report.total_time().as_secs_f64() * 1e3;
                }
                spec_last = Some(out);
            }
            let spec = spec_last.expect("RUNS > 0");
            spec_plan /= MEASURED_RUNS as f64;
            spec_total /= MEASURED_RUNS as f64;

            let mut trinit_total = 0.0;
            let mut trinit_last = None;
            for run in 0..RUNS {
                let out = engine.run_trinit(query, k);
                if run >= RUNS - MEASURED_RUNS {
                    trinit_total += out.report.total_time().as_secs_f64() * 1e3;
                }
                trinit_last = Some(out);
            }
            let trinit = trinit_last.expect("RUNS > 0");
            trinit_total /= MEASURED_RUNS as f64;

            let required =
                required_relaxations(&dataset.graph, query, &dataset.registry, &trinit.answers);
            let row = QueryMeasurement {
                qid,
                tp: query.len(),
                k,
                spec_plan_ms: spec_plan,
                spec_total_ms: spec_total,
                trinit_total_ms: trinit_total,
                spec_mem: spec.report.answers_created,
                trinit_mem: trinit.report.answers_created,
                relaxed_by_spec: spec.plan.relaxed_count(),
                relaxed_required: required.len(),
                prediction_exact: prediction_exact(&spec.plan, &required),
                prediction_covering: prediction_covering(&spec.plan, &required),
                precision: precision_at_k(&spec.answers, &trinit.answers, k),
                error: score_error(&spec.answers, &trinit.answers, k),
            };
            rows.push(row);
        }
        if (qid + 1) % 10 == 0 || qid + 1 == dataset.workload.len() {
            progress(&format!(
                "  [{}] {}/{} queries measured",
                dataset.name,
                qid + 1,
                dataset.workload.len()
            ));
        }
    }

    DatasetReport {
        name: dataset.name.clone(),
        rows,
    }
}

/// Planner-configuration ablation over one dataset: Spec-QP with the
/// paper-default configuration (exact cardinalities, two-bucket refit)
/// against (a) the independence-assumption cardinality estimator and
/// (b) multi-bucket refit, reporting precision and plan agreement. Used by
/// `experiments -- ablation`.
pub fn ablation_summary(dataset: &Dataset, k: usize) -> String {
    use operators::PullStrategy;
    use specqp::{EngineConfig, QueryPlan};
    use specqp_stats::{IndependenceEstimator, RefitMode};
    use std::fmt::Write;

    let baseline = Engine::new(&dataset.graph, &dataset.registry);
    let indep = Engine::new(&dataset.graph, &dataset.registry)
        .with_cardinality(Box::new(IndependenceEstimator::new()));
    let multi = Engine::with_config(
        &dataset.graph,
        &dataset.registry,
        EngineConfig {
            refit: RefitMode::MultiBucket(64),
            pull: PullStrategy::Adaptive,
            ..EngineConfig::default()
        },
    );

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Planner ablation over {} (k={k}): precision vs TriniT and plan agreement with the default planner.",
        dataset.name
    );
    let _ = writeln!(
        out,
        "  {:<28} {:>10} {:>12} {:>14}",
        "configuration", "precision", "avg #relaxed", "plans == base"
    );

    let mut rows: Vec<(&str, &Engine, Vec<QueryPlan>)> = Vec::new();
    for (name, engine) in [
        ("exact + two-bucket (paper)", &baseline),
        ("independence cardinality", &indep),
        ("multi-bucket refit (64)", &multi),
    ] {
        let mut precision_sum = 0.0;
        let mut relaxed_sum = 0usize;
        let mut plans = Vec::new();
        for q in &dataset.workload.queries {
            engine.warm(q, k);
            let spec = engine.run_specqp(q, k);
            let trinit = baseline.run_trinit(q, k);
            precision_sum += precision_at_k(&spec.answers, &trinit.answers, k);
            relaxed_sum += spec.plan.relaxed_count();
            plans.push(spec.plan);
        }
        rows.push((name, engine, plans));
        let n = dataset.workload.len() as f64;
        let agree = if let Some((_, _, base)) = rows.first() {
            rows.last()
                .map(|(_, _, p)| p.iter().zip(base).filter(|(a, b)| a == b).count())
                .unwrap_or(0)
        } else {
            0
        };
        let _ = writeln!(
            out,
            "  {:<28} {:>10.2} {:>12.2} {:>11}/{}",
            name,
            precision_sum / n,
            relaxed_sum as f64 / n,
            agree,
            dataset.workload.len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{XkgConfig, XkgGenerator};

    #[test]
    fn harness_produces_consistent_rows() {
        let mut cfg = XkgConfig::small(11);
        cfg.queries = 3;
        let ds = XkgGenerator::new(cfg).generate();
        let report = measure_workload(&ds, &[10], |_| {});
        assert_eq!(report.rows.len(), 3);
        let summary = ablation_summary(&ds, 10);
        assert!(summary.contains("paper"));
        assert!(summary.contains("independence"));
        for r in &report.rows {
            assert!((2..=4).contains(&r.tp));
            assert!(r.precision >= 0.0 && r.precision <= 1.0);
            assert!(r.spec_total_ms >= r.spec_plan_ms);
            assert!(r.relaxed_by_spec <= r.tp);
            assert!(r.relaxed_required <= r.tp);
            assert!(r.trinit_mem > 0);
        }
    }
}
