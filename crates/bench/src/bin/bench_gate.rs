//! CI gate over `BENCH_probe.json` reports.
//!
//! Three subcommands, all exiting non-zero on failure so they can gate a
//! workflow:
//!
//! ```text
//! bench_gate regression <baseline.json> <current.json> [tolerance]
//! bench_gate determinism <a.json> <b.json>
//! bench_gate snapshot <current.json> [min_speedup]
//! bench_gate block <current.json> [min_speedup]
//! bench_gate quality <current.json> [min_precision] [max_overhead]
//! bench_gate learned <current.json> [max_mis_rate] [max_overhead]
//! bench_gate overload <baseline.json> <current.json> [tolerance]
//! bench_gate parallel <current.json> [min_speedup] [min_snapshot_speedup]
//! bench_gate churn <current.json> [min_load_speedup]
//! ```
//!
//! * `regression` compares `planning_us` / `execution_us` (Spec-QP executor)
//!   and the service `queries_per_sec` against the committed baseline with a
//!   generous noise tolerance (default 3×, plus a 2 ms absolute grace on
//!   latencies): only order-of-magnitude regressions fail, not scheduler
//!   jitter on shared CI runners.
//! * `determinism` asserts two reports describe identical query *results*
//!   (plan, ground truth, prediction flags, answer scores) while ignoring
//!   timings — used to check the snapshot-loaded graph answers exactly like
//!   the TSV/builder path.
//! * `snapshot` asserts the report's snapshot-vs-TSV load `speedup` meets
//!   the floor (default 3×).
//! * `block` asserts the report's block-vs-row executor `speedup` meets the
//!   floor (default 1.3×) **and** that the two executors returned identical
//!   answers (`answers_match`) — a fast wrong executor must never pass.
//! * `quality` asserts the `speculation` object (emitted under
//!   `probe --quality`) shows precision@k against TriniT of at least
//!   `min_precision` (default 0.95) with the fallback lifecycle enabled,
//!   at a total-runtime overhead of at most `max_overhead` (default 1.25×)
//!   versus speculation off — quality recovered cheaply, not bought with a
//!   TriniT-priced rerun of everything.
//! * `learned` gates the `learned` object (emitted under `probe --learned`).
//!   Correctness is unconditional: the cold learned engine must have
//!   answered and planned byte-identically to the static engine
//!   (`cold_identical` — empty models mean every confidence gate is closed,
//!   so the histogram fallback path must be exact). The taught engine's
//!   mis-speculation rate must come in below both the absolute ceiling
//!   (default 0.06, the static first-pass rate the ROADMAP targets) and the
//!   report's own static first-pass rate, at a cold planning+verify overhead
//!   of at most `max_overhead` (default 1.25×) versus a cold static engine
//!   (fresh engine pairs, where PLANGEN does real work), with at least one
//!   observation actually recorded.
//! * `overload` asserts the `server` object (emitted under `probe --server`,
//!   which offers the workload open-loop at 2× the measured saturation rate)
//!   shows admission control doing its job: some requests accepted, some
//!   shed with `RetryAfter`, zero protocol/internal errors, and the p99
//!   latency of *accepted* requests held to the committed baseline (same
//!   tolerance discipline as `regression`) — overload must degrade into
//!   explicit rejection, never into unbounded queueing.
//! * `parallel` gates the `parallel` and `snapshot_v2` objects (emitted under
//!   `probe --morsels N`). Correctness is unconditional: the morsel-parallel
//!   executor must return answers bit-identical to sequential block execution
//!   (`answers_match`). The throughput floor (default 2×) only applies when
//!   the machine actually has at least as many cores as workers — the report
//!   records `cores`, and a 1-core runner cannot speed anything up, so there
//!   the floor is waived with a printed notice rather than failing the build
//!   on physics. The snapshot v2 floor (default 5×) asserts the aligned
//!   fixed-stride layout loads at least that much faster than the seed-style
//!   hash-insertion decode it replaced.
//! * `churn` gates the `churn` object (emitted under `probe --churn`, which
//!   interleaves writer batches into a live engine). Correctness is
//!   unconditional: answers must be byte-stable within every epoch and
//!   across the irrelevant churn (`answers_stable`), a version pinned
//!   before the churn must still answer epoch 0 (`pinned_stable`), and the
//!   post-compaction graph must answer identically to the pre-churn
//!   baseline (`post_compaction_match`). The load floor (default 5×)
//!   asserts the compacted base reloads through the v2 snapshot layout at
//!   least that much faster than the seed-style v1 decode.
//!
//! The workspace is dependency-free, so instead of a JSON library this uses
//! a small field scanner that understands exactly the shape `probe` emits.

use std::process::exit;

/// Returns the balanced `{...}` object slice following `"key":`.
fn object_slice<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)?;
    let rest = &json[at + pat.len()..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    let mut in_str = false;
    let mut esc = false;
    for (i, c) in rest[open..].char_indices() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' if !in_str => depth += 1,
            '}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open..open + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the numeric value following `"key":` inside `slice`.
fn num_field(slice: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = slice.find(&pat)?;
    let rest = slice[at + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the raw `[...]` text following `"key":` inside `slice`.
fn array_field<'a>(slice: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = slice.find(&pat)?;
    let rest = &slice[at + pat.len()..];
    let open = rest.find('[')?;
    let close = rest[open..].find(']')?;
    Some(&rest[open..open + close + 1])
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        exit(2);
    })
}

fn require_num(json: &str, object: &str, key: &str, path: &str) -> f64 {
    let slice = if object.is_empty() {
        json
    } else {
        object_slice(json, object).unwrap_or_else(|| {
            eprintln!("bench_gate: {path} has no \"{object}\" object");
            exit(2);
        })
    };
    num_field(slice, key).unwrap_or_else(|| {
        eprintln!("bench_gate: {path} lacks numeric {object}.{key}");
        exit(2);
    })
}

/// Latency grace: CI runners jitter by whole milliseconds on sub-millisecond
/// measurements, so small absolutes never fail on ratio alone.
const LATENCY_SLACK_US: f64 = 2000.0;

fn regression(baseline_path: &str, current_path: &str, tol: f64) -> i32 {
    let baseline = read(baseline_path);
    let current = read(current_path);
    let mut failures = Vec::new();

    for key in ["planning_us", "execution_us"] {
        let base = require_num(&baseline, "specqp", key, baseline_path);
        let cur = require_num(&current, "specqp", key, current_path);
        let limit = base * tol + LATENCY_SLACK_US;
        let ok = cur <= limit;
        println!(
            "specqp.{key}: baseline {base:.0}us, current {cur:.0}us, limit {limit:.0}us -> {}",
            if ok { "ok" } else { "REGRESSION" }
        );
        if !ok {
            failures.push(format!("specqp.{key} {cur:.0}us > {limit:.0}us"));
        }
    }

    // block_execution_us only gates when both reports carry a block object
    // (older baselines predate block execution).
    match (
        object_slice(&baseline, "block").and_then(|s| num_field(s, "block_execution_us")),
        object_slice(&current, "block").and_then(|s| num_field(s, "block_execution_us")),
    ) {
        (Some(base), Some(cur)) => {
            let limit = base * tol + LATENCY_SLACK_US;
            let ok = cur <= limit;
            println!(
                "block.block_execution_us: baseline {base:.0}us, current {cur:.0}us, \
                 limit {limit:.0}us -> {}",
                if ok { "ok" } else { "REGRESSION" }
            );
            if !ok {
                failures.push(format!(
                    "block.block_execution_us {cur:.0}us > {limit:.0}us"
                ));
            }
        }
        _ => println!("block.block_execution_us: absent in baseline or current, skipped"),
    }

    // queries_per_sec only gates when both reports carry a service object
    // (the probe only emits one under --service N).
    match (
        object_slice(&baseline, "service").and_then(|s| num_field(s, "queries_per_sec")),
        object_slice(&current, "service").and_then(|s| num_field(s, "queries_per_sec")),
    ) {
        (Some(base), Some(cur)) => {
            let floor = base / tol;
            let ok = cur >= floor;
            println!(
                "service.queries_per_sec: baseline {base:.1}, current {cur:.1}, floor {floor:.1} -> {}",
                if ok { "ok" } else { "REGRESSION" }
            );
            if !ok {
                failures.push(format!("service.queries_per_sec {cur:.1} < {floor:.1}"));
            }
        }
        _ => println!("service.queries_per_sec: absent in baseline or current, skipped"),
    }

    if failures.is_empty() {
        println!("bench_gate regression: ok (tolerance {tol}x)");
        0
    } else {
        eprintln!("bench_gate regression FAILED: {}", failures.join("; "));
        1
    }
}

fn determinism(a_path: &str, b_path: &str) -> i32 {
    let a = read(a_path);
    let b = read(b_path);
    let mut failures = Vec::new();

    // Top-level result-bearing fields (timings deliberately excluded).
    for key in ["plan_singletons", "required"] {
        let (x, y) = (array_field(&a, key), array_field(&b, key));
        if x.is_none() || x != y {
            failures.push(format!("{key}: {x:?} vs {y:?}"));
        }
    }
    for key in ["prediction_exact", "prediction_covers", "k", "query"] {
        // Booleans and small ints both parse as the token after the colon.
        let tok = |json: &str| {
            let pat = format!("\"{key}\":");
            json.find(&pat).map(|at| {
                json[at + pat.len()..]
                    .trim_start()
                    .chars()
                    .take_while(|c| !",}\n".contains(*c))
                    .collect::<String>()
            })
        };
        let (x, y) = (tok(&a), tok(&b));
        if x.is_none() || x != y {
            failures.push(format!("{key}: {x:?} vs {y:?}"));
        }
    }
    for exec in ["specqp", "trinit"] {
        let (sa, sb) = (object_slice(&a, exec), object_slice(&b, exec));
        match (sa, sb) {
            (Some(sa), Some(sb)) => {
                let (x, y) = (array_field(sa, "scores"), array_field(sb, "scores"));
                if x.is_none() || x != y {
                    failures.push(format!("{exec}.scores differ: {x:?} vs {y:?}"));
                }
                let (x, y) = (num_field(sa, "top_k"), num_field(sb, "top_k"));
                if x.is_none() || x != y {
                    failures.push(format!("{exec}.top_k: {x:?} vs {y:?}"));
                }
            }
            _ => failures.push(format!("{exec} object missing")),
        }
    }

    if failures.is_empty() {
        println!("bench_gate determinism: ok ({a_path} == {b_path} on results)");
        0
    } else {
        eprintln!("bench_gate determinism FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        1
    }
}

fn snapshot_gate(path: &str, min_speedup: f64) -> i32 {
    let json = read(path);
    let speedup = require_num(&json, "snapshot", "speedup", path);
    let load = require_num(&json, "snapshot", "load_us", path);
    let tsv = require_num(&json, "snapshot", "tsv_load_us", path);
    println!(
        "snapshot load {load:.0}us vs TSV rebuild {tsv:.0}us -> {speedup:.2}x (floor {min_speedup}x)"
    );
    if speedup >= min_speedup {
        println!("bench_gate snapshot: ok");
        0
    } else {
        eprintln!("bench_gate snapshot FAILED: {speedup:.2}x < {min_speedup}x");
        1
    }
}

/// `true`-literal check for a boolean field inside `slice`.
fn bool_field(slice: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let at = slice.find(&pat)?;
    let rest = slice[at + pat.len()..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn block_gate(path: &str, min_speedup: f64) -> i32 {
    let json = read(path);
    let slice = object_slice(&json, "block").unwrap_or_else(|| {
        eprintln!("bench_gate: {path} has no \"block\" object");
        exit(2);
    });
    let speedup = require_num(&json, "block", "speedup", path);
    let row = require_num(&json, "block", "row_execution_us", path);
    let block = require_num(&json, "block", "block_execution_us", path);
    let answers_match = bool_field(slice, "answers_match").unwrap_or_else(|| {
        eprintln!("bench_gate: {path} lacks boolean block.answers_match");
        exit(2);
    });
    println!(
        "block executor {block:.0}us vs row executor {row:.0}us -> {speedup:.2}x \
         (floor {min_speedup}x, answers_match={answers_match})"
    );
    if !answers_match {
        eprintln!("bench_gate block FAILED: block and row executors disagreed on answers");
        return 1;
    }
    if speedup >= min_speedup {
        println!("bench_gate block: ok");
        0
    } else {
        eprintln!("bench_gate block FAILED: {speedup:.2}x < {min_speedup}x");
        1
    }
}

fn quality_gate(path: &str, min_precision: f64, max_overhead: f64) -> i32 {
    let json = read(path);
    let precision = require_num(&json, "speculation", "precision_fallback", path);
    let overhead = require_num(&json, "speculation", "overhead", path);
    let mis_rate = require_num(&json, "speculation", "mis_speculation_rate", path);
    let fallback_rate = require_num(&json, "speculation", "fallback_rate", path);
    println!(
        "speculation quality: precision@k {precision:.3} (floor {min_precision}), \
         lifecycle overhead {overhead:.2}x (ceiling {max_overhead}x), \
         mis-speculation rate {mis_rate:.2}, fallback rate {fallback_rate:.2}"
    );
    let mut failures = Vec::new();
    if precision < min_precision {
        failures.push(format!("precision {precision:.3} < {min_precision}"));
    }
    if overhead > max_overhead {
        failures.push(format!("overhead {overhead:.2}x > {max_overhead}x"));
    }
    if failures.is_empty() {
        println!("bench_gate quality: ok");
        0
    } else {
        eprintln!("bench_gate quality FAILED: {}", failures.join("; "));
        1
    }
}

fn learned_gate(path: &str, max_mis_rate: f64, max_overhead: f64) -> i32 {
    let json = read(path);
    let slice = object_slice(&json, "learned").unwrap_or_else(|| {
        eprintln!("bench_gate: {path} has no \"learned\" object (run probe with --learned)");
        exit(2);
    });
    let mis_static = require_num(&json, "learned", "mis_rate_static", path);
    let mis_learned = require_num(&json, "learned", "mis_rate_learned", path);
    let overhead = require_num(&json, "learned", "overhead", path);
    let observations = require_num(&json, "learned", "observations", path);
    let cold_identical = bool_field(slice, "cold_identical").unwrap_or_else(|| {
        eprintln!("bench_gate: {path} lacks boolean learned.cold_identical");
        exit(2);
    });
    println!(
        "learned predictor: mis rate {mis_learned:.3} taught vs {mis_static:.3} static \
         first-pass (ceiling {max_mis_rate}), planning+verify overhead {overhead:.2}x \
         (ceiling {max_overhead}x), {observations:.0} observations, \
         cold_identical={cold_identical}"
    );
    let mut failures = Vec::new();
    if !cold_identical {
        failures.push(
            "cold learned engine diverged from the histogram engine — the confidence \
             fallback is broken"
                .to_string(),
        );
    }
    if mis_learned >= max_mis_rate {
        failures.push(format!(
            "taught mis rate {mis_learned:.3} >= ceiling {max_mis_rate}"
        ));
    }
    if mis_learned > mis_static {
        failures.push(format!(
            "taught mis rate {mis_learned:.3} worse than static first-pass {mis_static:.3}"
        ));
    }
    if overhead > max_overhead {
        failures.push(format!("overhead {overhead:.2}x > {max_overhead}x"));
    }
    if observations < 1.0 {
        failures.push("no observations recorded — the feedback loop never fed".to_string());
    }
    if failures.is_empty() {
        println!("bench_gate learned: ok");
        0
    } else {
        eprintln!("bench_gate learned FAILED: {}", failures.join("; "));
        1
    }
}

fn overload_gate(baseline_path: &str, current_path: &str, tol: f64) -> i32 {
    let baseline = read(baseline_path);
    let current = read(current_path);
    let offered = require_num(&current, "server", "offered", current_path);
    let accepted = require_num(&current, "server", "accepted", current_path);
    let shed = require_num(&current, "server", "shed_retry_after", current_path);
    let other = require_num(&current, "server", "other_errors", current_path);
    let p99 = require_num(&current, "server", "p99_accepted_us", current_path);
    println!(
        "overload: offered {offered:.0} at 2x saturation -> accepted {accepted:.0}, \
         shed(RetryAfter) {shed:.0}, other errors {other:.0}, accepted p99 {p99:.0}us"
    );
    let mut failures = Vec::new();
    if accepted < 1.0 {
        failures.push("no requests accepted under overload".to_string());
    }
    if shed < 1.0 {
        failures.push(
            "2x saturation shed nothing — admission control is queueing unboundedly".to_string(),
        );
    }
    if other > 0.0 {
        failures.push(format!(
            "{other:.0} protocol/internal errors under overload"
        ));
    }
    // The latency bound only gates when the baseline carries a server object
    // (older baselines predate the wire front-end).
    match object_slice(&baseline, "server").and_then(|s| num_field(s, "p99_accepted_us")) {
        Some(base) => {
            let limit = base * tol + LATENCY_SLACK_US;
            let ok = p99 <= limit;
            println!(
                "server.p99_accepted_us: baseline {base:.0}us, current {p99:.0}us, \
                 limit {limit:.0}us -> {}",
                if ok { "ok" } else { "REGRESSION" }
            );
            if !ok {
                failures.push(format!("p99_accepted_us {p99:.0}us > {limit:.0}us"));
            }
        }
        None => println!("server.p99_accepted_us: absent in baseline, latency bound skipped"),
    }
    if failures.is_empty() {
        println!("bench_gate overload: ok (tolerance {tol}x)");
        0
    } else {
        eprintln!("bench_gate overload FAILED: {}", failures.join("; "));
        1
    }
}

fn parallel_gate(path: &str, min_speedup: f64, min_snapshot_speedup: f64) -> i32 {
    let json = read(path);
    let mut failures = Vec::new();

    let par = object_slice(&json, "parallel").unwrap_or_else(|| {
        eprintln!("bench_gate: {path} has no \"parallel\" object");
        exit(2);
    });
    let workers = require_num(&json, "parallel", "workers", path);
    let cores = require_num(&json, "parallel", "cores", path);
    let speedup = require_num(&json, "parallel", "speedup", path);
    let seq = require_num(&json, "parallel", "seq_execution_us", path);
    let par_us = require_num(&json, "parallel", "par_execution_us", path);
    let answers_match = bool_field(par, "answers_match").unwrap_or_else(|| {
        eprintln!("bench_gate: {path} lacks boolean parallel.answers_match");
        exit(2);
    });
    println!(
        "parallel: {workers:.0} workers on {cores:.0} cores -> {par_us:.0}us vs sequential \
         {seq:.0}us ({speedup:.2}x, floor {min_speedup}x, answers_match={answers_match})"
    );
    // Correctness gates unconditionally: a parallel executor that disagrees
    // with sequential block execution is wrong no matter how fast it is.
    if !answers_match {
        failures.push("parallel and sequential execution disagreed on answers".to_string());
    }
    // The throughput floor only gates on hardware that can express a speedup.
    if cores >= workers {
        if speedup < min_speedup {
            failures.push(format!("parallel speedup {speedup:.2}x < {min_speedup}x"));
        }
    } else {
        println!(
            "parallel speedup floor waived: {cores:.0} cores < {workers:.0} workers \
             (no hardware parallelism to measure)"
        );
    }

    let v2 = require_num(&json, "snapshot_v2", "speedup", path);
    let v2_load = require_num(&json, "snapshot_v2", "v2_load_us", path);
    let v1_decode = require_num(&json, "snapshot_v2", "v1_decode_us", path);
    println!(
        "snapshot_v2: load {v2_load:.0}us vs v1 hash decode {v1_decode:.0}us \
         -> {v2:.2}x (floor {min_snapshot_speedup}x)"
    );
    if v2 < min_snapshot_speedup {
        failures.push(format!(
            "snapshot_v2 speedup {v2:.2}x < {min_snapshot_speedup}x"
        ));
    }

    if failures.is_empty() {
        println!("bench_gate parallel: ok");
        0
    } else {
        eprintln!("bench_gate parallel FAILED: {}", failures.join("; "));
        1
    }
}

fn churn_gate(path: &str, min_load_speedup: f64) -> i32 {
    let json = read(path);
    let slice = object_slice(&json, "churn").unwrap_or_else(|| {
        eprintln!("bench_gate: {path} has no \"churn\" object");
        exit(2);
    });
    let mut failures = Vec::new();
    let require_bool = |key: &str| {
        bool_field(slice, key).unwrap_or_else(|| {
            eprintln!("bench_gate: {path} lacks boolean churn.{key}");
            exit(2);
        })
    };
    let answers_stable = require_bool("answers_stable");
    let pinned_stable = require_bool("pinned_stable");
    let post_compaction_match = require_bool("post_compaction_match");
    let epochs = require_num(&json, "churn", "epochs", path);
    let speedup = require_num(&json, "churn", "load_speedup", path);
    let v2_load = require_num(&json, "churn", "v2_load_us", path);
    let v1_decode = require_num(&json, "churn", "v1_decode_us", path);
    println!(
        "churn: {epochs:.0} epochs; answers_stable={answers_stable} \
         pinned_stable={pinned_stable} post_compaction_match={post_compaction_match}; \
         post-compaction load {v2_load:.0}us vs v1 decode {v1_decode:.0}us \
         -> {speedup:.2}x (floor {min_load_speedup}x)"
    );
    // Correctness gates unconditionally — a live engine that wobbles its
    // answers under irrelevant writes is wrong no matter how fast it loads.
    if !answers_stable {
        failures.push("answers not byte-stable across churn epochs".to_string());
    }
    if !pinned_stable {
        failures.push("pinned version leaked later commits".to_string());
    }
    if !post_compaction_match {
        failures.push("compaction changed the answers".to_string());
    }
    if speedup < min_load_speedup {
        failures.push(format!(
            "post-compaction load speedup {speedup:.2}x < {min_load_speedup}x"
        ));
    }
    if failures.is_empty() {
        println!("bench_gate churn: ok");
        0
    } else {
        eprintln!("bench_gate churn FAILED: {}", failures.join("; "));
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || -> ! {
        eprintln!(
            "usage: bench_gate regression <baseline.json> <current.json> [tolerance]\n\
             \x20      bench_gate determinism <a.json> <b.json>\n\
             \x20      bench_gate snapshot <current.json> [min_speedup]\n\
             \x20      bench_gate block <current.json> [min_speedup]\n\
             \x20      bench_gate quality <current.json> [min_precision] [max_overhead]\n\
             \x20      bench_gate learned <current.json> [max_mis_rate] [max_overhead]\n\
             \x20      bench_gate overload <baseline.json> <current.json> [tolerance]\n\
             \x20      bench_gate parallel <current.json> [min_speedup] [min_snapshot_speedup]\n\
             \x20      bench_gate churn <current.json> [min_load_speedup]"
        );
        exit(2);
    };
    let code = match args.first().map(String::as_str) {
        Some("regression") if args.len() >= 3 => {
            let tol = args
                .get(3)
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
                .unwrap_or(3.0);
            regression(&args[1], &args[2], tol)
        }
        Some("determinism") if args.len() == 3 => determinism(&args[1], &args[2]),
        Some("snapshot") if args.len() >= 2 => {
            let floor = args
                .get(2)
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
                .unwrap_or(3.0);
            snapshot_gate(&args[1], floor)
        }
        Some("block") if args.len() >= 2 => {
            let floor = args
                .get(2)
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
                .unwrap_or(1.3);
            block_gate(&args[1], floor)
        }
        Some("quality") if args.len() >= 2 => {
            let min_precision = args
                .get(2)
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
                .unwrap_or(0.95);
            let max_overhead = args
                .get(3)
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
                .unwrap_or(1.25);
            quality_gate(&args[1], min_precision, max_overhead)
        }
        Some("learned") if args.len() >= 2 => {
            let max_mis = args
                .get(2)
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
                .unwrap_or(0.06);
            let max_overhead = args
                .get(3)
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
                .unwrap_or(1.25);
            learned_gate(&args[1], max_mis, max_overhead)
        }
        Some("overload") if args.len() >= 3 => {
            let tol = args
                .get(3)
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
                .unwrap_or(3.0);
            overload_gate(&args[1], &args[2], tol)
        }
        Some("parallel") if args.len() >= 2 => {
            let floor = args
                .get(2)
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
                .unwrap_or(2.0);
            let snap_floor = args
                .get(3)
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
                .unwrap_or(5.0);
            parallel_gate(&args[1], floor, snap_floor)
        }
        Some("churn") if args.len() >= 2 => {
            let floor = args
                .get(2)
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
                .unwrap_or(5.0);
            churn_gate(&args[1], floor)
        }
        _ => usage(),
    };
    exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "dataset": "xkg",
  "summary": "dataset xkg: 10 triples",
  "query": 2,
  "k": 10,
  "plan_singletons": [0, 1, 2, 3],
  "required": [0, 2, 3],
  "prediction_exact": false,
  "prediction_covers": true,
  "specqp": {"planning_us":754,"execution_us":2249,"top_k":10,"scores":[2.6,2.5]},
  "trinit": {"planning_us":0,"execution_us":1994,"top_k":10,"scores":[2.6,2.5]},
  "snapshot": {"triples":10,"bytes":123,"load_us":100,"tsv_load_us":900,"speedup":9.000,"from_snapshot":false},
  "block": {"block_size":256,"queries":18,"k":10,"row_execution_us":9000,"block_execution_us":4000,"speedup":2.250,"answers_match":true},
  "parallel": {"workers":4,"cores":8,"rows":200000,"k":10,"block_size":256,"seq_execution_us":40000,"par_execution_us":14000,"speedup":2.857,"answers_match":true},
  "snapshot_v2": {"triples":200000,"terms":2200,"v2_bytes":9000000,"v1_bytes":9000000,"v2_load_us":5500,"v1_decode_us":122000,"v1_load_us":12400,"speedup":22.182,"compat_speedup":2.255},
  "churn": {"rows":30000,"rounds":24,"batch_size":128,"epochs":25,"delta_rows_at_fold":1600,"compact_us":8200,"answers_stable":true,"pinned_stable":true,"post_compaction_match":true,"v2_load_us":900,"v1_decode_us":14000,"load_speedup":15.556},
  "speculation": {"policy":"fallback:3","queries":18,"k":10,"mis_speculation_rate":0.1111,"fallback_rate":0.0556,"fallback_stages":2,"wasted_answers":120,"precision_fallback":0.9815,"precision_off":0.9259,"off_total_us":5000,"fallback_total_us":5600,"overhead":1.120},
  "learned": {"queries":18,"k":10,"teaching_laps":3,"cold_identical":true,"mis_rate_static":0.0556,"mis_rate_learned":0.0000,"planning_verify_static_us":900,"planning_verify_learned_us":1000,"overhead":1.111,"observations":90,"predictions":40,"revisions":12},
  "service": {"threads":4,"queries_per_sec":730.059,"cache":{"hits":37}},
  "server": {"threads":4,"offered":400,"rate_per_sec":8000.0,"saturation_per_sec":4000.0,"accepted":231,"shed_retry_after":169,"shed_deadline":0,"other_errors":0,"p50_accepted_us":812,"p99_accepted_us":3420,"mean_accepted_us":990,"max_accepted_us":5100,"wall_us":61000,"connections":1,"quota_rejected":0,"protocol_errors":0}
}"#;

    #[test]
    fn object_slice_is_brace_balanced() {
        let svc = object_slice(SAMPLE, "service").unwrap();
        assert!(svc.starts_with('{') && svc.ends_with('}'));
        assert!(svc.contains("\"hits\":37"));
        let spec = object_slice(SAMPLE, "specqp").unwrap();
        assert!(!spec.contains("trinit"));
        assert!(object_slice(SAMPLE, "missing").is_none());
    }

    #[test]
    fn num_field_parses_ints_and_floats() {
        let svc = object_slice(SAMPLE, "service").unwrap();
        assert_eq!(num_field(svc, "queries_per_sec"), Some(730.059));
        let spec = object_slice(SAMPLE, "specqp").unwrap();
        assert_eq!(num_field(spec, "planning_us"), Some(754.0));
        assert_eq!(num_field(spec, "nope"), None);
    }

    #[test]
    fn array_field_returns_raw_text() {
        assert_eq!(array_field(SAMPLE, "required"), Some("[0, 2, 3]"));
        let spec = object_slice(SAMPLE, "specqp").unwrap();
        assert_eq!(array_field(spec, "scores"), Some("[2.6,2.5]"));
    }

    #[test]
    fn snapshot_speedup_readable() {
        let snap = object_slice(SAMPLE, "snapshot").unwrap();
        assert_eq!(num_field(snap, "speedup"), Some(9.0));
    }

    #[test]
    fn speculation_object_fields_readable() {
        let spec = object_slice(SAMPLE, "speculation").unwrap();
        assert_eq!(num_field(spec, "precision_fallback"), Some(0.9815));
        assert_eq!(num_field(spec, "overhead"), Some(1.12));
        assert_eq!(num_field(spec, "mis_speculation_rate"), Some(0.1111));
        assert_eq!(num_field(spec, "fallback_rate"), Some(0.0556));
        // The sample passes the default gate thresholds.
        assert!(num_field(spec, "precision_fallback").unwrap() >= 0.95);
        assert!(num_field(spec, "overhead").unwrap() <= 1.25);
    }

    #[test]
    fn learned_object_fields_readable_and_sample_passes_gate() {
        let learned = object_slice(SAMPLE, "learned").unwrap();
        assert_eq!(bool_field(learned, "cold_identical"), Some(true));
        assert_eq!(num_field(learned, "mis_rate_static"), Some(0.0556));
        assert_eq!(num_field(learned, "mis_rate_learned"), Some(0.0));
        assert_eq!(num_field(learned, "overhead"), Some(1.111));
        assert_eq!(num_field(learned, "observations"), Some(90.0));
        // The sample passes the default gate thresholds: learned rate below
        // the ceiling and no worse than static, overhead within budget.
        assert!(num_field(learned, "mis_rate_learned").unwrap() < 0.06);
        assert!(
            num_field(learned, "mis_rate_learned").unwrap()
                <= num_field(learned, "mis_rate_static").unwrap()
        );
        assert!(num_field(learned, "overhead").unwrap() <= 1.25);
    }

    #[test]
    fn server_object_fields_readable_and_sample_passes_gate() {
        let server = object_slice(SAMPLE, "server").unwrap();
        assert_eq!(num_field(server, "accepted"), Some(231.0));
        assert_eq!(num_field(server, "shed_retry_after"), Some(169.0));
        assert_eq!(num_field(server, "other_errors"), Some(0.0));
        assert_eq!(num_field(server, "p99_accepted_us"), Some(3420.0));
        // The sample passes the gate's structural requirements against
        // itself as baseline: accepted ≥ 1, shed ≥ 1, zero errors, and
        // p99 ≤ p99 × tol + slack trivially.
        assert!(num_field(server, "accepted").unwrap() >= 1.0);
        assert!(num_field(server, "shed_retry_after").unwrap() >= 1.0);
        let p99 = num_field(server, "p99_accepted_us").unwrap();
        assert!(p99 <= p99 * 3.0 + LATENCY_SLACK_US);
    }

    #[test]
    fn parallel_object_fields_readable_and_sample_passes_gate() {
        let par = object_slice(SAMPLE, "parallel").unwrap();
        assert_eq!(num_field(par, "workers"), Some(4.0));
        assert_eq!(num_field(par, "cores"), Some(8.0));
        assert_eq!(num_field(par, "speedup"), Some(2.857));
        assert_eq!(num_field(par, "seq_execution_us"), Some(40000.0));
        assert_eq!(num_field(par, "par_execution_us"), Some(14000.0));
        assert_eq!(bool_field(par, "answers_match"), Some(true));
        // Sample has cores >= workers, so the floor applies — and passes.
        assert!(num_field(par, "cores").unwrap() >= num_field(par, "workers").unwrap());
        assert!(num_field(par, "speedup").unwrap() >= 2.0);
    }

    #[test]
    fn snapshot_v2_object_fields_readable_and_sample_passes_gate() {
        let v2 = object_slice(SAMPLE, "snapshot_v2").unwrap();
        assert_eq!(num_field(v2, "v2_load_us"), Some(5500.0));
        assert_eq!(num_field(v2, "v1_decode_us"), Some(122000.0));
        assert_eq!(num_field(v2, "v1_load_us"), Some(12400.0));
        assert_eq!(num_field(v2, "speedup"), Some(22.182));
        assert_eq!(num_field(v2, "compat_speedup"), Some(2.255));
        assert!(num_field(v2, "speedup").unwrap() >= 5.0);
        // `snapshot_v2` must not shadow the original `snapshot` object.
        let snap = object_slice(SAMPLE, "snapshot").unwrap();
        assert!(snap.contains("tsv_load_us"));
    }

    #[test]
    fn churn_object_fields_readable_and_sample_passes_gate() {
        let churn = object_slice(SAMPLE, "churn").unwrap();
        assert_eq!(bool_field(churn, "answers_stable"), Some(true));
        assert_eq!(bool_field(churn, "pinned_stable"), Some(true));
        assert_eq!(bool_field(churn, "post_compaction_match"), Some(true));
        assert_eq!(num_field(churn, "epochs"), Some(25.0));
        assert_eq!(num_field(churn, "v2_load_us"), Some(900.0));
        assert_eq!(num_field(churn, "v1_decode_us"), Some(14000.0));
        assert_eq!(num_field(churn, "load_speedup"), Some(15.556));
        assert!(num_field(churn, "load_speedup").unwrap() >= 5.0);
    }

    #[test]
    fn block_object_fields_readable() {
        let block = object_slice(SAMPLE, "block").unwrap();
        assert_eq!(num_field(block, "speedup"), Some(2.25));
        assert_eq!(num_field(block, "row_execution_us"), Some(9000.0));
        assert_eq!(num_field(block, "block_execution_us"), Some(4000.0));
        assert_eq!(bool_field(block, "answers_match"), Some(true));
        assert_eq!(bool_field(block, "block_size"), None);
        assert_eq!(bool_field(block, "missing"), None);
    }
}
