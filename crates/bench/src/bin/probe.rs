//! Diagnostic probe: dissects PLANGEN's decision for one workload query —
//! per-pattern estimates, the chosen plan, the ground-truth required set,
//! and the head of both answer lists.
//!
//! ```text
//! cargo run -p bench --release --bin probe -- xkg 2 10
//! ```
//!
//! With `--json <path>` the probe additionally writes a machine-readable
//! report (plan, ground truth, timings, accounting) for CI trend tracking —
//! the weekly bench-smoke workflow uploads it as the `BENCH_probe.json`
//! artifact.
//!
//! With `--service N` the probe additionally drives the whole workload
//! (cycled ×3 so repeated shapes exercise the plan cache) through an
//! N-thread [`QueryService`] and reports queries/sec, latency percentiles
//! and plan-cache hit rates — landing in the JSON report as a `service`
//! object so BENCH artifacts track serving throughput over time.
//!
//! With `--server` the probe additionally binds a loopback wire server over
//! the same service and drives the workload *open-loop* (Poisson arrivals)
//! at 2× the measured saturation rate — the regime where admission control
//! must shed with `RetryAfter` instead of queueing unboundedly. Accepted /
//! shed counts and accepted-latency percentiles land in the JSON report as
//! a `server` object; `bench_gate overload` holds them to the committed
//! baseline.
//!
//! With `--json`, the report also carries a `block` object comparing the
//! vectorized block executor against the row-at-a-time reference over the
//! whole workload (`--block-size N` overrides the default block size; the
//! CI bench gate asserts the block path stays faster).
//!
//! With `--quality` the JSON report additionally carries a `speculation`
//! object comparing Spec-QP with the fallback lifecycle enabled
//! (`SpeculationPolicy::Fallback`) against speculation-off and the TriniT
//! ground truth over the whole seeded workload: mis-speculation rate,
//! fallback rate, precision@k and the lifecycle's steady-state latency
//! overhead. `bench_gate quality` asserts precision ≥ 0.95 at ≤ 1.25x
//! overhead.
//!
//! With `--learned` the JSON report additionally carries a `learned` object
//! probing the online predictor on the skew-shaped seeded workload: a cold
//! learned engine must answer byte-identically to a static one (all
//! confidence gates closed), then teaching laps feed the feedback loop and
//! the taught engine's mis-speculation rate is measured. The planning+verify
//! overhead of learned mode is measured cold-vs-cold on fresh engine pairs
//! (where PLANGEN and verification do real work, rather than warm plan-cache
//! hits that would make the ratio degenerate). `bench_gate learned` asserts
//! the taught rate beats both the static first-pass rate and an absolute
//! ceiling, at bounded overhead.
//!
//! With `--morsels N` the JSON report additionally carries a `parallel`
//! object timing morsel-driven block execution at N workers against
//! sequential block execution on a deterministic adversarial rank-join (a
//! 200k-row scan that must drain almost fully before top-10 certifies),
//! with answers cross-checked bit-exact, plus a `snapshot_v2` object
//! comparing the v2 bulk snapshot loader against the v1 per-entry decoder
//! on the same graph. `bench_gate parallel` asserts both speedup floors.
//!
//! With `--churn` the JSON report additionally carries a `churn` object
//! exercising the live-write path: a [`LiveGraph`] over a 30k-row rank scan
//! absorbs rounds of low-scoring writer batches (asserts + retractions of
//! fresh terms) while the engine keeps answering the same top-k query. The
//! probe checks that answers are byte-stable within every epoch and across
//! the churn (the writes never rank), that a version pinned before the
//! churn still answers epoch 0, and that after a forced compaction the
//! folded base reloads through the v2 snapshot layout at least as fast as
//! the gate's floor over the seed-style v1 decode. `bench_gate churn`
//! asserts all of it.
//!
//! [`LiveGraph`]: kgstore::LiveGraph
//!
//! Snapshot flags: `--save-snapshot <path>` writes the generated graph as a
//! binary KG snapshot; `--snapshot <path>` boots the probe's graph from a
//! snapshot instead of the freshly built one (term ids are preserved, so the
//! regenerated registry/workload stay valid — CI uses this to check
//! determinism of the two storage paths). Whenever `--json` is given, the
//! report also carries a `snapshot` object comparing snapshot-load
//! (`load_us`) against TSV parse + index rebuild (`tsv_load_us`) on the same
//! graph — the CI bench gate asserts the speedup stays ≥ 3×.

use datagen::{TwitterConfig, TwitterGenerator, XkgConfig, XkgGenerator};
use operators::ExecutionMode;
use specqp::{
    precision_at_k, prediction_covering, prediction_exact, required_relaxations, Engine,
    EngineConfig, SpeculationPolicy,
};
use specqp_service::{ExecMode, QueryJob, QueryService, ServiceConfig};
use specqp_stats::{
    expected_score_at_rank, CardinalityEstimator, ExactCardinality, ScoreEstimator, StatsCatalog,
};
use std::sync::Arc;

/// Renders `\"`-escaped JSON string contents (the probe emits only ASCII
/// identifiers, so control characters and quotes are the whole game).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Faithful reproduction of the pre-v2 snapshot decoder — the load path the
/// v2 layout replaced: single-chain word FNV over the whole file, per-term
/// dictionary interning, then *per-entry hash-map insertion* for the spo
/// map and all six posting maps (the index was hash-based before the
/// sorted-array layout landed). The current `read_snapshot` still accepts
/// v1 bytes, but it fills sorted arrays sequentially and is itself far
/// faster than this; the `snapshot_v2` speedup is measured against what
/// loading actually cost before, not against the modernized compat reader.
/// Returns a structural fingerprint so the work cannot be optimized away.
fn seed_style_v1_decode(bytes: &[u8]) -> usize {
    use specqp_common::{fnv1a_64_words, Dictionary, FxHashMap, TermId};
    struct Cur<'a> {
        b: &'a [u8],
        p: usize,
    }
    impl Cur<'_> {
        fn u32(&mut self) -> u32 {
            let v = u32::from_le_bytes(self.b[self.p..self.p + 4].try_into().unwrap());
            self.p += 4;
            v
        }
        fn u64(&mut self) -> u64 {
            let v = u64::from_le_bytes(self.b[self.p..self.p + 8].try_into().unwrap());
            self.p += 8;
            v
        }
        fn u32s_into(&mut self, n: usize, out: &mut Vec<u32>) {
            let raw = &self.b[self.p..self.p + n * 4];
            self.p += n * 4;
            out.extend(
                raw.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
            );
        }
        fn u32s(&mut self, n: usize) -> Vec<u32> {
            let mut v = Vec::with_capacity(n);
            self.u32s_into(n, &mut v);
            v
        }
    }
    let check_list = |list: &[u32], n: usize| {
        assert!(
            list.iter().all(|&i| (i as usize) < n),
            "posting out of range"
        );
    };

    let body_end = bytes.len() - 8;
    let expected = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    assert_eq!(fnv1a_64_words(&bytes[..body_end]), expected, "v1 checksum");
    let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut sections = Vec::with_capacity(section_count);
    let mut off = 16 + section_count * 12;
    for i in 0..section_count {
        let at = 16 + i * 12;
        let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
        sections.push((id, &bytes[off..off + len]));
        off += len;
    }
    let section = |id: u32| sections.iter().find(|(i, _)| *i == id).unwrap().1;

    let mut c = Cur {
        b: section(1),
        p: 0,
    };
    let n_terms = c.u64() as usize;
    let mut names = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        let len = c.u32() as usize;
        names.push(std::str::from_utf8(&c.b[c.p..c.p + len]).unwrap());
        c.p += len;
    }
    let dict = Dictionary::from_names(names).expect("v1 dictionary");

    let mut c = Cur {
        b: section(2),
        p: 0,
    };
    let n = c.u64() as usize;
    let mut term_col = || {
        let col = c.u32s(n);
        check_list(&col, dict.len());
        col
    };
    let (s_col, p_col, o_col) = (term_col(), term_col(), term_col());
    let mut scores = Vec::with_capacity(n);
    for _ in 0..n {
        let v = f64::from_bits(c.u64());
        assert!(v.is_finite() && v >= 0.0, "invalid score");
        scores.push(v);
    }

    let mut c = Cur {
        b: section(3),
        p: 0,
    };
    let spo_count = c.u64() as usize;
    let mut spo: FxHashMap<(TermId, TermId, TermId), u32> =
        FxHashMap::with_capacity_and_hasher(spo_count, Default::default());
    for _ in 0..spo_count {
        let (s, p, o, t) = (c.u32(), c.u32(), c.u32(), c.u32());
        check_list(&[t], n);
        spo.insert((TermId(s), TermId(p), TermId(o)), t);
    }
    let mut arena: Vec<u32> = Vec::with_capacity(6 * n);
    let mut entries = 0usize;
    for wide_key in [true, true, true, false, false, false] {
        let count = c.u64() as usize;
        if wide_key {
            let mut map: FxHashMap<u64, (u64, u32)> =
                FxHashMap::with_capacity_and_hasher(count, Default::default());
            for _ in 0..count {
                let key = c.u64();
                let len = c.u32();
                let start = arena.len();
                c.u32s_into(len as usize, &mut arena);
                check_list(&arena[start..], n);
                map.insert(key, (start as u64, len));
            }
            entries += map.len();
        } else {
            let mut map: FxHashMap<TermId, (u64, u32)> =
                FxHashMap::with_capacity_and_hasher(count, Default::default());
            for _ in 0..count {
                let key = TermId(c.u32());
                let len = c.u32();
                let start = arena.len();
                c.u32s_into(len as usize, &mut arena);
                check_list(&arena[start..], n);
                map.insert(key, (start as u64, len));
            }
            entries += map.len();
        }
    }
    let all_count = c.u64() as usize;
    let all = c.u32s(all_count);
    check_list(&all, n);
    dict.len()
        + s_col.len()
        + p_col.len()
        + o_col.len()
        + scores.len()
        + spo.len()
        + entries
        + arena.len()
        + all.len()
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    // Boolean flags are drained first (no value follows them).
    let quality = raw
        .iter()
        .position(|a| a == "--quality")
        .map(|i| {
            raw.remove(i);
        })
        .is_some();
    let server_probe = raw
        .iter()
        .position(|a| a == "--server")
        .map(|i| {
            raw.remove(i);
        })
        .is_some();
    let churn = raw
        .iter()
        .position(|a| a == "--churn")
        .map(|i| {
            raw.remove(i);
        })
        .is_some();
    let learned_probe = raw
        .iter()
        .position(|a| a == "--learned")
        .map(|i| {
            raw.remove(i);
        })
        .is_some();
    // Drains `--flag <value>` out of the positional args, exiting 2 when the
    // value is missing (`what` names it in the error).
    let mut take_flag = |flag: &str, what: &str| {
        raw.iter().position(|a| a == flag).map(|i| {
            let mut pair = raw.drain(i..(i + 2).min(raw.len()));
            pair.next();
            pair.next().unwrap_or_else(|| {
                eprintln!("{flag} requires {what}");
                std::process::exit(2);
            })
        })
    };
    let json_path = take_flag("--json", "a file path");
    let service_threads = take_flag("--service", "a thread count").map(|s| {
        s.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--service requires a thread count, got {s:?}");
            std::process::exit(2);
        })
    });
    let save_snapshot_path = take_flag("--save-snapshot", "a file path");
    let snapshot_path = take_flag("--snapshot", "a file path");
    let block_size = take_flag("--block-size", "a row count")
        .map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("--block-size requires a positive row count, got {s:?}");
                    std::process::exit(2);
                })
        })
        .unwrap_or(operators::DEFAULT_BLOCK_SIZE);
    let morsels = take_flag("--morsels", "a worker count").map(|s| {
        s.parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                eprintln!("--morsels requires a worker count >= 1, got {s:?}");
                std::process::exit(2);
            })
    });
    let mut args = raw.into_iter();
    let dataset_name = args.next().unwrap_or_else(|| "xkg".into());
    let qid: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let scale_small = args.next().map(|s| s == "small").unwrap_or(true);

    let mut ds = match dataset_name.as_str() {
        "xkg" => {
            let mut c = if scale_small {
                XkgConfig::small(0x5eed001)
            } else {
                XkgConfig::default()
            };
            if scale_small {
                c.queries = 18;
            }
            XkgGenerator::new(c).generate()
        }
        "twitter" => {
            let mut c = if scale_small {
                TwitterConfig::small(0x71177e4)
            } else {
                TwitterConfig::default()
            };
            if scale_small {
                c.queries = 12;
            }
            TwitterGenerator::new(c).generate()
        }
        other => {
            eprintln!("unknown dataset {other}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &save_snapshot_path {
        if let Err(e) = ds.to_snapshot(path) {
            eprintln!("failed to write snapshot {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote snapshot to {path}");
    }
    // Boot the graph from a snapshot file instead of the freshly built one.
    // Term ids are identical by construction, so the generated registry and
    // workload remain valid against the reloaded graph.
    let from_snapshot = if let Some(path) = &snapshot_path {
        match kgstore::snapshot::load_snapshot(path) {
            Ok(g) => {
                if g.len() != ds.graph.len() || g.dictionary().len() != ds.graph.dictionary().len()
                {
                    eprintln!(
                        "snapshot {path} holds {} triples / {} terms but the generator \
                         produced {} / {} — wrong dataset or stale snapshot",
                        g.len(),
                        g.dictionary().len(),
                        ds.graph.len(),
                        ds.graph.dictionary().len()
                    );
                    std::process::exit(1);
                }
                ds.graph = g;
                println!("booted graph from snapshot {path}");
                true
            }
            Err(e) => {
                eprintln!("failed to load snapshot {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        false
    };
    println!("{}", ds.summary());
    let query = &ds.workload.queries[qid];
    let dict = ds.graph.dictionary();
    println!("query {qid} (k={k}):\n{}", query.display(dict));

    let catalog = StatsCatalog::new();
    let card = ExactCardinality::new();
    let est = ScoreEstimator::new(&catalog, &card);

    let original: Vec<_> = query.patterns().iter().map(|p| (*p, 1.0)).collect();
    let e_orig = est.estimate(&ds.graph, &original);
    println!(
        "original: n={} E(k={k})={:?} E(1)={:?}",
        e_orig.n,
        e_orig.expected_score_at_rank(k),
        e_orig.expected_top_score()
    );

    for (i, p) in query.patterns().iter().enumerate() {
        let stats = catalog.stats(&ds.graph, p);
        let m = stats.map(|s| s.m).unwrap_or(0);
        let sigma = stats.map(|s| s.sigma_r).unwrap_or(0.0);
        let top = ds.registry.top_relaxation_for(p);
        print!("q{i}: m={m} sigma_r={sigma:.4}");
        if let Some(t) = &top {
            let mut relaxed = original.clone();
            relaxed[i] = (t.pattern, t.weight);
            let e_rel = est.estimate(&ds.graph, &relaxed);
            let n_rel = card.cardinality(
                &ds.graph,
                &relaxed.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            );
            print!(
                "  top-relax w={:.3} n'={} E'(1)={:?}",
                t.weight,
                n_rel,
                e_rel.expected_top_score()
            );
            // What the *actual* best relaxed answer would be, via ranks:
            if let Some(d) = &e_rel.dist {
                let _ = expected_score_at_rank(d, e_rel.n, 1);
            }
        } else {
            print!("  (no relaxations)");
        }
        println!();
    }

    // Scoped so the engine (whose boxed estimator has drop glue) releases
    // its borrows before the service probe moves graph/registry into Arcs.
    let (spec, trinit) = {
        let engine = Engine::new(&ds.graph, &ds.registry);
        (engine.run_specqp(query, k), engine.run_trinit(query, k))
    };
    let required = required_relaxations(&ds.graph, query, &ds.registry, &trinit.answers);
    println!("plan singletons: {:?}", spec.plan.singletons());
    println!("required (ground truth): {required:?}");
    println!(
        "true top-{k} scores: {:?}",
        trinit
            .answers
            .iter()
            .map(|a| (a.score.value() * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!(
        "spec top-{k} scores: {:?}",
        spec.answers
            .iter()
            .map(|a| (a.score.value() * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    // Cold-start comparison for the JSON report: rebuild the graph from
    // scored TSV (parse + duplicate folding + full index build) vs
    // deserialize the binary snapshot (posting lists loaded verbatim).
    // Best-of-3 each, on in-memory buffers so disk speed is out of the
    // picture and the structural work is what's measured.
    let mut snapshot_json = String::new();
    if json_path.is_some() {
        use std::time::Instant;
        let mut tsv = Vec::new();
        kgstore::write_tsv(&ds.graph, &mut tsv).expect("serialize TSV");
        let snap = kgstore::snapshot::write_snapshot(&ds.graph);
        let best_of = |f: &dyn Fn() -> u128| (0..3).map(|_| f()).min().unwrap();
        let tsv_load_us = best_of(&|| {
            let t0 = Instant::now();
            let g = kgstore::read_tsv(tsv.as_slice()).expect("reload TSV");
            let us = t0.elapsed().as_micros();
            assert_eq!(g.len(), ds.graph.len());
            us
        });
        let load_us = best_of(&|| {
            let t0 = Instant::now();
            let g = kgstore::snapshot::read_snapshot(&snap).expect("reload snapshot");
            let us = t0.elapsed().as_micros();
            assert_eq!(g.len(), ds.graph.len());
            us
        });
        let speedup = tsv_load_us as f64 / (load_us.max(1)) as f64;
        println!(
            "storage: snapshot load {load_us}us vs TSV parse+index {tsv_load_us}us \
             ({speedup:.1}x, {} bytes, from_snapshot={from_snapshot})",
            snap.len(),
        );
        snapshot_json = format!(
            ",\n  \"snapshot\": {{\"triples\":{},\"bytes\":{},\"load_us\":{load_us},\
             \"tsv_load_us\":{tsv_load_us},\"speedup\":{speedup:.3},\
             \"from_snapshot\":{from_snapshot}}}",
            ds.graph.len(),
            snap.len(),
        );
    }

    // Row-vs-block executor comparison for the JSON report: the whole
    // workload through two engines differing only in
    // `EngineConfig::execution`, summing per-query execution time (planning
    // is warmed out via the plan cache). Rounds are *interleaved*
    // (row, block, row, block, …) and the best round per executor is kept,
    // so an ambient slowdown on a shared runner degrades both sides instead
    // of skewing the ratio; answers are cross-checked so the reported
    // speedup is only ever for an equivalent executor. The CI bench gate
    // asserts the speedup floor.
    let mut block_json = String::new();
    if json_path.is_some() {
        let row_engine = Engine::with_config(
            &ds.graph,
            &ds.registry,
            EngineConfig::default().with_execution(ExecutionMode::RowAtATime),
        );
        let block_engine = Engine::with_config(
            &ds.graph,
            &ds.registry,
            EngineConfig::default().with_execution(ExecutionMode::Block(block_size)),
        );
        for q in &ds.workload.queries {
            row_engine.warm(q, k);
            block_engine.warm(q, k);
        }
        let mut answers_match = true;
        for q in &ds.workload.queries {
            let a = row_engine.run_specqp(q, k);
            let b = block_engine.run_specqp(q, k);
            if a.answers != b.answers {
                answers_match = false;
            }
        }
        let one_round = |engine: &Engine<'_>| -> u128 {
            ds.workload
                .queries
                .iter()
                .map(|q| engine.run_specqp(q, k).report.execution.as_micros())
                .sum::<u128>()
        };
        let (mut row_us, mut block_us) = (u128::MAX, u128::MAX);
        for _ in 0..5 {
            row_us = row_us.min(one_round(&row_engine));
            block_us = block_us.min(one_round(&block_engine));
        }
        let speedup = row_us as f64 / (block_us.max(1)) as f64;
        println!(
            "execution: block({block_size}) {block_us}us vs row {row_us}us over {} queries \
             ({speedup:.2}x, answers_match={answers_match})",
            ds.workload.queries.len(),
        );
        block_json = format!(
            ",\n  \"block\": {{\"block_size\":{block_size},\"queries\":{},\"k\":{k},\
             \"row_execution_us\":{row_us},\"block_execution_us\":{block_us},\
             \"speedup\":{speedup:.3},\"answers_match\":{answers_match}}}",
            ds.workload.queries.len(),
        );
    }

    // Morsel-parallelism probe (`--morsels N`): a deterministic adversarial
    // rank-join — a 200k-row "heavy" scan whose only joinable rows sit at
    // the *bottom* of the score order — forces a near-full drain before the
    // top-10 certifies, which is exactly the regime morsel partitioning
    // exists for. The same graph (200k distinct subjects, so 200k tiny
    // subject-family posting lists) is also the v1 snapshot decoder's
    // per-entry worst case, so a `snapshot_v2` object measures the v2 bulk
    // loader against the v1 decoder where the layout difference matters.
    // Rounds are interleaved best-of-3 (one warm-up each) and the parallel
    // answers are cross-checked bit-exact against sequential execution;
    // `bench_gate parallel` holds both speedups to their floors.
    let mut parallel_json = String::new();
    let mut snapshot_v2_json = String::new();
    if let Some(workers) = morsels {
        use kgstore::KnowledgeGraphBuilder;
        use operators::{OpMetrics, PullStrategy};
        use relax::{ChainRuleSet, RelaxationRegistry};
        use specqp::{
            partition_target, run_plan_blocks_parallel, run_plan_blocks_with_chains, QueryPlan,
        };
        use std::time::Instant;

        let n_big = 200_000usize;
        let n_small = 2_000usize;
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..n_big {
            b.add(&format!("e{i}"), "heavy", "c_big", (n_big - i) as f64);
        }
        // Only the n_small *lowest-scoring* heavy entities also match the
        // light pattern; light scores are strictly increasing with i so
        // every total is distinct (no tie-order ambiguity in the answers).
        for i in (n_big - n_small)..n_big {
            let frac = (i - (n_big - n_small)) as f64 / n_small as f64;
            b.add(&format!("e{i}"), "light", "c_small", 1.0 + frac);
        }
        let graph = b.build();
        let d = graph.dictionary();
        let mut qb = sparql::QueryBuilder::new();
        let x = qb.var("x");
        qb.pattern(x, d.lookup("heavy").unwrap(), d.lookup("c_big").unwrap());
        qb.pattern(x, d.lookup("light").unwrap(), d.lookup("c_small").unwrap());
        qb.project(x);
        let q = qb.build().expect("probe join query");
        let registry = RelaxationRegistry::new();
        let chains = ChainRuleSet::new();
        let plan = QueryPlan::none_relaxed(2);
        let target = partition_target(&graph, &q, &plan, &registry, &chains)
            .expect("heavy scan must be partitionable");

        let seq_round = || {
            let t0 = Instant::now();
            let answers = run_plan_blocks_with_chains(
                &graph,
                &q,
                &plan,
                &registry,
                &chains,
                OpMetrics::new_handle(),
                PullStrategy::Adaptive,
                k,
                block_size,
            );
            (t0.elapsed().as_micros(), answers)
        };
        let par_round = || {
            let t0 = Instant::now();
            let answers = run_plan_blocks_parallel(
                &graph,
                &q,
                &plan,
                &registry,
                &chains,
                OpMetrics::new_handle(),
                PullStrategy::Adaptive,
                k,
                block_size,
                workers,
                target,
            );
            (t0.elapsed().as_micros(), answers)
        };
        let (seq_answers, par_answers) = (seq_round().1, par_round().1);
        let answers_match = seq_answers == par_answers;
        let (mut seq_us, mut par_us) = (u128::MAX, u128::MAX);
        for _ in 0..3 {
            seq_us = seq_us.min(seq_round().0);
            par_us = par_us.min(par_round().0);
        }
        let speedup = seq_us as f64 / (par_us.max(1)) as f64;
        // Wall-clock speedup needs real hardware parallelism; the gate
        // waives the floor (but never the answer check) when this runner
        // cannot provide it, so the core count rides along in the report.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        println!(
            "parallel: {workers} workers ({cores} cores) over a {n_big}-row heavy scan -> \
             {par_us}us vs sequential {seq_us}us ({speedup:.2}x, \
             answers_match={answers_match})",
        );
        parallel_json = format!(
            ",\n  \"parallel\": {{\"workers\":{workers},\"cores\":{cores},\"rows\":{n_big},\
             \"k\":{k},\"block_size\":{block_size},\"seq_execution_us\":{seq_us},\
             \"par_execution_us\":{par_us},\"speedup\":{speedup:.3},\
             \"answers_match\":{answers_match}}}",
        );

        // The snapshot comparison wants the opposite graph shape: the v1
        // decoder pays per *map entry* (per distinct key, with its inline
        // posting list), while the shared load work — dictionary interning —
        // pays per *term*. A dense subject × predicate product keeps the
        // dictionary tiny (2.2k terms) while producing ~600k map entries
        // across the spo/sp/so maps, so the measurement isolates the layout
        // difference v2 exists for instead of drowning it in interning.
        let (n_subj, n_pred, n_obj) = (2_000usize, 100usize, 100usize);
        let mut sb = KnowledgeGraphBuilder::new();
        for i in 0..n_subj {
            for j in 0..n_pred {
                // `j -> (i*31 + j) % n_obj` is a bijection per subject, so
                // every (s,o) pair is distinct and the so map stays as large
                // as sp.
                let o = (i * 31 + j) % n_obj;
                sb.add(
                    &format!("s{i}"),
                    &format!("p{j}"),
                    &format!("o{o}"),
                    (i * n_pred + j) as f64,
                );
            }
        }
        let snap_graph = sb.build();
        let v2 = kgstore::snapshot::write_snapshot(&snap_graph);
        let v1 = kgstore::snapshot::write_snapshot_v1(&snap_graph);
        let best_of = |f: &dyn Fn() -> u128| (0..3).map(|_| f()).min().unwrap();
        let v1_decode_us = best_of(&|| {
            let t0 = Instant::now();
            let fingerprint = seed_style_v1_decode(&v1);
            let us = t0.elapsed().as_micros();
            assert!(fingerprint > snap_graph.len());
            us
        });
        let v1_load_us = best_of(&|| {
            let t0 = Instant::now();
            let g = kgstore::snapshot::read_snapshot(&v1).expect("reload v1 snapshot");
            let us = t0.elapsed().as_micros();
            assert_eq!(g.len(), snap_graph.len());
            us
        });
        let v2_load_us = best_of(&|| {
            let t0 = Instant::now();
            let g = kgstore::snapshot::read_snapshot(&v2).expect("reload v2 snapshot");
            let us = t0.elapsed().as_micros();
            assert_eq!(g.len(), snap_graph.len());
            us
        });
        let v2_speedup = v1_decode_us as f64 / (v2_load_us.max(1)) as f64;
        let compat_speedup = v1_load_us as f64 / (v2_load_us.max(1)) as f64;
        println!(
            "snapshot_v2: load {v2_load_us}us vs v1 hash decode {v1_decode_us}us \
             ({v2_speedup:.1}x; modernized v1 compat reader {v1_load_us}us, \
             {compat_speedup:.1}x) over {} triples / {} terms",
            snap_graph.len(),
            snap_graph.dictionary().len(),
        );
        snapshot_v2_json = format!(
            ",\n  \"snapshot_v2\": {{\"triples\":{},\"terms\":{},\"v2_bytes\":{},\
             \"v1_bytes\":{},\"v2_load_us\":{v2_load_us},\"v1_decode_us\":{v1_decode_us},\
             \"v1_load_us\":{v1_load_us},\"speedup\":{v2_speedup:.3},\
             \"compat_speedup\":{compat_speedup:.3}}}",
            snap_graph.len(),
            snap_graph.dictionary().len(),
            v2.len(),
            v1.len(),
        );
    }

    // Live-churn probe (`--churn`): rounds of writer batches against a
    // LiveGraph-backed engine that keeps answering one top-k query. The
    // churn triples score far below the top-k, so three properties are
    // checkable: answers are byte-stable within every epoch (two runs at
    // the same epoch agree) and across the whole churn (irrelevant writes
    // never perturb the ranking); a version pinned before any commit still
    // answers epoch 0; and after a forced compaction the folded base
    // round-trips the v2 snapshot layout, which must load well ahead of the
    // seed-style v1 decode. `bench_gate churn` holds all of it.
    let mut churn_json = String::new();
    if churn {
        use kgstore::{CompactionPolicy, KnowledgeGraphBuilder, LiveGraph, WriteBatch};
        use relax::RelaxationRegistry;
        use std::time::Instant;

        let n_base = 30_000usize;
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..n_base {
            b.add(
                &format!("user{i}"),
                "follows",
                "celebrity",
                (n_base - i) as f64,
            );
        }
        // Compaction is forced explicitly below so the probe controls when
        // the fold happens (and can time it), not the policy.
        let live = Arc::new(LiveGraph::with_policy(b.build(), CompactionPolicy::never()));
        let registry = Arc::new(RelaxationRegistry::new());
        let engine = Engine::live(Arc::clone(&live), Arc::clone(&registry));
        let q = {
            let graph = engine.graph();
            let d = graph.dictionary();
            let mut qb = sparql::QueryBuilder::new();
            let x = qb.var("x");
            qb.pattern(
                x,
                d.lookup("follows").unwrap(),
                d.lookup("celebrity").unwrap(),
            );
            qb.project(x);
            qb.build().expect("churn probe query")
        };
        // Term ids are stable across epochs (and across the flatten), so
        // raw (score bits, bound ids) is a byte-level answer fingerprint.
        let fingerprint = |o: &specqp::QueryOutcome| -> Vec<(u64, Vec<u32>)> {
            o.answers
                .iter()
                .map(|a| {
                    (
                        a.score.value().to_bits(),
                        a.binding.iter().map(|(_, t)| t.0).collect(),
                    )
                })
                .collect()
        };
        let pinned0 = engine.graph();
        let baseline = engine.run_specqp(&q, k);

        let rounds = 24usize;
        let batch_size = 128usize;
        let mut answers_stable = true;
        for r in 0..rounds {
            let mut batch = WriteBatch::new();
            for j in 0..batch_size {
                batch.assert(&format!("churn{r}_{j}"), "follows", "celebrity", 0.25);
            }
            // Half of the previous round's churn is retracted again, so the
            // overlay carries dead rows and base-mask churn, not just
            // appends.
            if r > 0 {
                for j in 0..batch_size / 2 {
                    batch.retract(&format!("churn{}_{j}", r - 1), "follows", "celebrity");
                }
            }
            live.commit(&batch);
            let a = engine.run_specqp(&q, k);
            let rerun = engine.run_specqp(&q, k);
            if fingerprint(&a) != fingerprint(&rerun) || fingerprint(&a) != fingerprint(&baseline) {
                answers_stable = false;
            }
        }
        let delta_rows = live.stats().delta_rows;
        let pinned_stable = pinned0.epoch() == kgstore::Epoch::ZERO && pinned0.len() == n_base;

        let epoch_before = live.epoch().value();
        let t0 = Instant::now();
        let epochs = live.compact().value();
        let compact_us = t0.elapsed().as_micros();
        assert!(epochs > epoch_before, "a dirty overlay must fold");
        let after = engine.run_specqp(&q, k);
        let post_compaction_match = fingerprint(&after) == fingerprint(&baseline);

        // Cold-load of the folded base: v2 bulk loader vs the seed-style
        // per-entry v1 decode (same comparison the snapshot_v2 probe makes,
        // but over a graph produced by compaction rather than the builder).
        let (compacted, _) = live.pinned();
        let v2 = kgstore::snapshot::write_snapshot(&compacted);
        let v1 = kgstore::snapshot::write_snapshot_v1(&compacted);
        let best_of = |f: &dyn Fn() -> u128| (0..3).map(|_| f()).min().unwrap();
        let v1_decode_us = best_of(&|| {
            let t0 = Instant::now();
            let fingerprint = seed_style_v1_decode(&v1);
            let us = t0.elapsed().as_micros();
            assert!(fingerprint > compacted.len());
            us
        });
        let v2_load_us = best_of(&|| {
            let t0 = Instant::now();
            let g = kgstore::snapshot::read_snapshot(&v2).expect("reload compacted snapshot");
            let us = t0.elapsed().as_micros();
            assert_eq!(g.len(), compacted.len());
            us
        });
        let load_speedup = v1_decode_us as f64 / (v2_load_us.max(1)) as f64;
        println!(
            "churn: {rounds} rounds x {batch_size} ops over {n_base} rows -> {epochs} epochs, \
             {delta_rows} delta rows at fold (compact {compact_us}us); \
             answers_stable={answers_stable} pinned_stable={pinned_stable} \
             post_compaction_match={post_compaction_match}; \
             post-compaction load {v2_load_us}us vs v1 decode {v1_decode_us}us \
             ({load_speedup:.1}x)",
        );
        churn_json = format!(
            ",\n  \"churn\": {{\"rows\":{n_base},\"rounds\":{rounds},\
             \"batch_size\":{batch_size},\"epochs\":{epochs},\
             \"delta_rows_at_fold\":{delta_rows},\"compact_us\":{compact_us},\
             \"answers_stable\":{answers_stable},\"pinned_stable\":{pinned_stable},\
             \"post_compaction_match\":{post_compaction_match},\
             \"v2_load_us\":{v2_load_us},\"v1_decode_us\":{v1_decode_us},\
             \"load_speedup\":{load_speedup:.3}}}",
        );
    }

    // Speculation-quality probe (`--quality`): the whole seeded workload in
    // Spec-QP mode with the fallback lifecycle enabled vs speculation off vs
    // the TriniT baseline. Quality (precision@k against TriniT, mis-
    // speculation/fallback rates) is measured on the first pass — the pass
    // where fallback recoveries and feedback learning actually happen —
    // while the latency overhead of the lifecycle is measured afterwards in
    // steady state with interleaved best-of-5 rounds (same discipline as the
    // block probe: ambient slowdowns hit both sides). The CI quality gate
    // asserts precision_fallback ≥ 0.95 and overhead ≤ 1.25x.
    let mut speculation_json = String::new();
    if quality {
        let max_stages = specqp::speculation::DEFAULT_MAX_STAGES;
        let policy = SpeculationPolicy::Fallback { max_stages };
        let policy_label = format!("fallback:{max_stages}");
        let off_engine = Engine::with_config(
            &ds.graph,
            &ds.registry,
            EngineConfig::default().with_speculation(SpeculationPolicy::Off),
        );
        let fb_engine = Engine::with_config(
            &ds.graph,
            &ds.registry,
            EngineConfig::default().with_speculation(policy),
        );
        for q in &ds.workload.queries {
            off_engine.warm(q, k);
            fb_engine.warm(q, k);
        }
        let nq = ds.workload.queries.len();
        let (mut mis, mut fallback_runs, mut stages, mut wasted) = (0u64, 0u64, 0u64, 0u64);
        let (mut prec_fb, mut prec_off) = (0.0f64, 0.0f64);
        for q in &ds.workload.queries {
            let trinit = fb_engine.run_trinit(q, k);
            let fb = fb_engine.run_specqp(q, k);
            let off = off_engine.run_specqp(q, k);
            prec_fb += precision_at_k(&fb.answers, &trinit.answers, k);
            prec_off += precision_at_k(&off.answers, &trinit.answers, k);
            mis += u64::from(fb.report.mis_speculated);
            fallback_runs += u64::from(fb.report.fallback_stages > 0);
            stages += fb.report.fallback_stages;
            wasted += fb.report.wasted_answers;
        }
        let precision_fallback = prec_fb / nq as f64;
        let precision_off = prec_off / nq as f64;
        let mis_rate = mis as f64 / nq as f64;
        let fallback_rate = fallback_runs as f64 / nq as f64;

        let one_round = |engine: &Engine<'_>| -> u128 {
            ds.workload
                .queries
                .iter()
                .map(|q| engine.run_specqp(q, k).report.total_time().as_micros())
                .sum::<u128>()
        };
        let (mut off_us, mut fb_us) = (u128::MAX, u128::MAX);
        for _ in 0..5 {
            off_us = off_us.min(one_round(&off_engine));
            fb_us = fb_us.min(one_round(&fb_engine));
        }
        let overhead = fb_us as f64 / (off_us.max(1)) as f64;
        println!(
            "speculation: precision@{k} {precision_fallback:.3} with fallback vs \
             {precision_off:.3} off; mis-speculation rate {mis_rate:.2}, fallback rate \
             {fallback_rate:.2} ({stages} stages, {wasted} wasted answers); \
             lifecycle {fb_us}us vs off {off_us}us ({overhead:.2}x overhead)",
        );
        speculation_json = format!(
            ",\n  \"speculation\": {{\"policy\":\"{policy_label}\",\"queries\":{nq},\"k\":{k},\
             \"mis_speculation_rate\":{mis_rate:.4},\"fallback_rate\":{fallback_rate:.4},\
             \"fallback_stages\":{stages},\"wasted_answers\":{wasted},\
             \"precision_fallback\":{precision_fallback:.4},\"precision_off\":{precision_off:.4},\
             \"off_total_us\":{off_us},\"fallback_total_us\":{fb_us},\"overhead\":{overhead:.3}}}",
        );
    }

    // --learned: the online-predictor probe on the seeded workload (whose
    // scores are deliberately skew-shaped — the generators draw power-law
    // score distributions, exactly the regime where static two-bucket
    // histograms miscalibrate). Two fallback engines differ only in
    // `EngineConfig::learned`:
    //
    // 1. cold first pass — with empty models every confidence gate is
    //    closed, so the learned engine must answer AND plan byte-identically
    //    to the static engine (`cold_identical`); this same cold pass yields
    //    the static first-pass mis-speculation rate the gate compares
    //    against;
    // 2. teaching laps — repeated runs feed verified observations back into
    //    the catalog until the gates open;
    // 3. measured lap — the taught engine's mis-speculation rate must drop
    //    below the static first-pass rate (the static engine gets the same
    //    number of laps so its ledger is equally settled);
    // 4. overhead — best-of-5 cold-vs-cold on fresh engine pairs, so the
    //    ratio compares learned-mode's additions (shape keys, model lookups,
    //    observation recording) against *real* PLANGEN + verification work
    //    instead of warm plan-cache hits, where a ~µs denominator would make
    //    any absolute cost look unbounded.
    let mut learned_json = String::new();
    if learned_probe {
        let max_stages = specqp::speculation::DEFAULT_MAX_STAGES;
        let policy = SpeculationPolicy::Fallback { max_stages };
        let static_engine = Engine::with_config(
            &ds.graph,
            &ds.registry,
            EngineConfig::default()
                .with_speculation(policy)
                .with_learned(false),
        );
        let learned_engine = Engine::with_config(
            &ds.graph,
            &ds.registry,
            EngineConfig::default()
                .with_speculation(policy)
                .with_learned(true),
        );
        let nq = ds.workload.queries.len();

        // Cold first pass: byte-identity + the static baseline mis rate.
        let mut cold_identical = true;
        let mut mis_static = 0u64;
        for q in &ds.workload.queries {
            let a = learned_engine.run_specqp(q, k);
            let b = static_engine.run_specqp(q, k);
            cold_identical &= a.answers == b.answers && a.plan == b.plan;
            mis_static += u64::from(b.report.mis_speculated);
        }
        let mis_rate_static = mis_static as f64 / nq as f64;

        // Teaching laps (both engines, so the static ledger settles too and
        // the overhead comparison is warm-vs-warm).
        const TEACHING_LAPS: usize = 3;
        for _ in 0..TEACHING_LAPS {
            for q in &ds.workload.queries {
                let _ = learned_engine.run_specqp(q, k);
                let _ = static_engine.run_specqp(q, k);
            }
        }

        // Measured lap: taught mis rate + planning+verify overhead.
        let mut mis_learned = 0u64;
        for q in &ds.workload.queries {
            let out = learned_engine.run_specqp(q, k);
            mis_learned += u64::from(out.report.mis_speculated);
        }
        let mis_rate_learned = mis_learned as f64 / nq as f64;
        let plan_verify_round = |learned: bool| -> u128 {
            let engine = Engine::with_config(
                &ds.graph,
                &ds.registry,
                EngineConfig::default()
                    .with_speculation(policy)
                    .with_learned(learned),
            );
            ds.workload
                .queries
                .iter()
                .map(|q| {
                    let r = engine.run_specqp(q, k).report;
                    (r.planning + r.verify).as_micros()
                })
                .sum::<u128>()
        };
        let (mut static_us, mut learned_us) = (u128::MAX, u128::MAX);
        for _ in 0..5 {
            static_us = static_us.min(plan_verify_round(false));
            learned_us = learned_us.min(plan_verify_round(true));
        }
        let overhead = learned_us as f64 / (static_us.max(1)) as f64;
        let counters = learned_engine.catalog().learned_counters();
        println!(
            "learned: mis rate {mis_rate_learned:.3} taught vs {mis_rate_static:.3} static \
             first-pass (cold identical: {cold_identical}); cold planning+verify {learned_us}us \
             vs {static_us}us ({overhead:.2}x); {} observations, {} predictions, {} revisions",
            counters.observations, counters.predictions, counters.revisions,
        );
        learned_json = format!(
            ",\n  \"learned\": {{\"queries\":{nq},\"k\":{k},\"teaching_laps\":{TEACHING_LAPS},\
             \"cold_identical\":{cold_identical},\"mis_rate_static\":{mis_rate_static:.4},\
             \"mis_rate_learned\":{mis_rate_learned:.4},\
             \"planning_verify_static_us\":{static_us},\
             \"planning_verify_learned_us\":{learned_us},\"overhead\":{overhead:.3},\
             \"observations\":{},\"predictions\":{},\"revisions\":{}}}",
            counters.observations, counters.predictions, counters.revisions,
        );
    }

    // Optional serving probes: the closed-loop batch probe (`--service N`)
    // and the open-loop wire probe (`--server`) share one service so the
    // plan cache stays warm across both. This consumes the dataset's
    // graph/registry (moved into Arcs), so it runs after every borrowed
    // diagnostic above.
    let summary = ds.summary();
    let mut service_json = String::new();
    let mut server_json = String::new();
    if service_threads.is_some() || server_probe {
        let threads = service_threads.unwrap_or(2);
        let queries = ds.workload.queries.clone();
        // Rendered query texts for the wire driver (display → reparse is
        // stable; pinned by the parser's roundtrip test).
        let query_texts: Vec<String> = queries
            .iter()
            .map(|q| q.display(ds.graph.dictionary()).to_string())
            .collect();
        let service = Arc::new(QueryService::new(
            Arc::new(ds.graph),
            Arc::new(ds.registry),
            ServiceConfig::with_threads(threads),
        ));
        // Two Spec-QP passes plus one TriniT pass over the workload: the
        // repeated Spec-QP shapes exercise the plan cache, and the mixed
        // modes exercise the per-mode latency breakdown in BatchStats.
        let jobs: Vec<QueryJob> = queries
            .iter()
            .cycle()
            .take(queries.len() * 2)
            .map(|q| QueryJob::specqp(q.clone(), k))
            .chain(queries.iter().map(|q| QueryJob::trinit(q.clone(), k)))
            .collect();
        let report = service.run_batch(&jobs);
        let s = &report.stats;
        if service_threads.is_some() {
            println!(
                "service: {} queries / {} threads -> {:.1} q/s (mean {:?}, p95 {:?}); \
             plan cache: {} hits / {} lookups ({:.0}% hit rate, {} evictions, {} stale); \
             speculation: {} mis / {} fallback runs, {} stages",
                s.queries,
                s.threads,
                s.queries_per_sec,
                s.mean_latency,
                s.p95_latency,
                s.cache.hits,
                s.cache.lookups,
                s.cache.hit_rate * 100.0,
                s.cache.evictions,
                s.cache.stale,
                s.speculation.mis_speculations,
                s.speculation.fallback_runs,
                s.speculation.fallback_stages,
            );
            let modes_json = ExecMode::ALL
                .iter()
                .filter_map(|m| s.per_mode[m.index()].as_ref())
                .map(|m| {
                    format!(
                        "\"{}\":{{\"queries\":{},\"mean_latency_us\":{},\"p50_latency_us\":{},\
                     \"p95_latency_us\":{},\"max_latency_us\":{}}}",
                        m.mode.label(),
                        m.queries,
                        m.mean_latency.as_micros(),
                        m.p50_latency.as_micros(),
                        m.p95_latency.as_micros(),
                        m.max_latency.as_micros(),
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            service_json = format!(
                ",\n  \"service\": {{\"threads\":{},\"queries\":{},\"queries_per_sec\":{:.3},\
             \"wall_us\":{},\"mean_latency_us\":{},\"p50_latency_us\":{},\
             \"p95_latency_us\":{},\"p99_latency_us\":{},\"max_latency_us\":{},\
             \"modes\":{{{modes_json}}},\
             \"speculation\":{{\"speculative_runs\":{},\"mis_speculations\":{},\
             \"fallback_runs\":{},\"fallback_stages\":{},\"wasted_answers\":{},\
             \"verify_us\":{}}},\
             \"cache\":{{\"lookups\":{},\
             \"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\"stale\":{},\
             \"hit_rate\":{:.4}}}}}",
                s.threads,
                s.queries,
                s.queries_per_sec,
                s.wall.as_micros(),
                s.mean_latency.as_micros(),
                s.p50_latency.as_micros(),
                s.p95_latency.as_micros(),
                s.p99_latency.as_micros(),
                s.max_latency.as_micros(),
                s.speculation.speculative_runs,
                s.speculation.mis_speculations,
                s.speculation.fallback_runs,
                s.speculation.fallback_stages,
                s.speculation.wasted_answers,
                s.speculation.verify.as_micros(),
                s.cache.lookups,
                s.cache.hits,
                s.cache.misses,
                s.cache.insertions,
                s.cache.evictions,
                s.cache.stale,
                s.cache.hit_rate,
            );
        }

        // Open-loop wire probe (`--server`): bind a loopback server over the
        // same (now warm) service and offer the workload at 2× the measured
        // saturation rate — the regime where admission control must shed
        // with RetryAfter instead of queueing unboundedly. The closed-loop
        // batch above doubles as the saturation measurement: `threads`
        // workers each busy `mean_latency` per query saturate near
        // threads / mean_latency.
        if server_probe {
            use bench::openloop::{drive, OpenLoopConfig};
            use specqp_server::{Server, ServerConfig};
            let mean_us = s.mean_latency.as_micros().max(1) as f64;
            let saturation_per_sec = threads as f64 * 1_000_000.0 / mean_us;
            let rate_per_sec = 2.0 * saturation_per_sec;
            let server = Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
                .unwrap_or_else(|e| {
                    eprintln!("failed to bind loopback server: {e}");
                    std::process::exit(1);
                });
            let mut config = OpenLoopConfig::new(rate_per_sec, 400);
            config.k = k as u32;
            let wire = drive(server.local_addr(), &query_texts, &config).unwrap_or_else(|e| {
                eprintln!("open-loop drive failed: {e}");
                std::process::exit(1);
            });
            let counters = server.stats();
            server.shutdown();
            println!(
                "server: offered {} at {rate_per_sec:.0}/s (2x saturation {saturation_per_sec:.0}/s) \
                 -> {} accepted, {} retry-after, {} deadline, {} other; \
                 accepted p50 {:?} p99 {:?} max {:?}",
                wire.offered,
                wire.accepted,
                wire.shed_retry_after,
                wire.shed_deadline,
                wire.other_errors,
                wire.p50_accepted,
                wire.p99_accepted,
                wire.max_accepted,
            );
            server_json = format!(
                ",\n  \"server\": {{\"threads\":{threads},\"offered\":{},\
                 \"rate_per_sec\":{rate_per_sec:.1},\
                 \"saturation_per_sec\":{saturation_per_sec:.1},\
                 \"accepted\":{},\"shed_retry_after\":{},\"shed_deadline\":{},\
                 \"other_errors\":{},\"p50_accepted_us\":{},\"p99_accepted_us\":{},\
                 \"mean_accepted_us\":{},\"max_accepted_us\":{},\"wall_us\":{},\
                 \"connections\":{},\"quota_rejected\":{},\"protocol_errors\":{}}}",
                wire.offered,
                wire.accepted,
                wire.shed_retry_after,
                wire.shed_deadline,
                wire.other_errors,
                wire.p50_accepted.as_micros(),
                wire.p99_accepted.as_micros(),
                wire.mean_accepted.as_micros(),
                wire.max_accepted.as_micros(),
                wire.wall.as_micros(),
                counters.connections,
                counters.quota_rejected,
                counters.protocol_errors,
            );
        }
    }

    if let Some(path) = json_path {
        let scores = |o: &specqp::QueryOutcome| {
            o.answers
                .iter()
                .map(|a| format!("{:.6}", a.score.value()))
                .collect::<Vec<_>>()
                .join(",")
        };
        let report = |o: &specqp::QueryOutcome| {
            format!(
                "{{\"planning_us\":{},\"execution_us\":{},\"verify_us\":{},\
                 \"answers_created\":{},\
                 \"sorted_accesses\":{},\"random_accesses\":{},\"heap_pushes\":{},\
                 \"fallback_stages\":{},\"wasted_answers\":{},\"mis_speculated\":{},\
                 \"top_k\":{},\"scores\":[{}]}}",
                o.report.planning.as_micros(),
                o.report.execution.as_micros(),
                o.report.verify.as_micros(),
                o.report.answers_created,
                o.report.sorted_accesses,
                o.report.random_accesses,
                o.report.heap_pushes,
                o.report.fallback_stages,
                o.report.wasted_answers,
                o.report.mis_speculated,
                o.answers.len(),
                scores(o),
            )
        };
        let exact = prediction_exact(&spec.plan, &required);
        let covers = prediction_covering(&spec.plan, &required);
        let json = format!(
            "{{\n  \"dataset\": \"{}\",\n  \"summary\": \"{}\",\n  \"query\": {qid},\n  \
             \"k\": {k},\n  \"plan_singletons\": {:?},\n  \"required\": {:?},\n  \
             \"prediction_exact\": {exact},\n  \"prediction_covers\": {covers},\n  \
             \"specqp\": {},\n  \"trinit\": \
             {}{snapshot_json}{block_json}{parallel_json}{snapshot_v2_json}\
             {churn_json}{speculation_json}{learned_json}{service_json}{server_json}\n}}\n",
            json_escape(&ds.name),
            json_escape(&summary),
            spec.plan.singletons(),
            required,
            report(&spec),
            report(&trinit),
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote JSON report to {path}");
    }
}
