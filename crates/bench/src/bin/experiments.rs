//! Regenerates every table and figure of the Spec-QP paper's evaluation.
//!
//! ```text
//! cargo run -p bench --release --bin experiments -- --all
//! cargo run -p bench --release --bin experiments -- table2 table3
//! cargo run -p bench --release --bin experiments -- fig6 --scale small
//! ```
//!
//! Artifacts: tables on stdout, raw per-query CSVs under `results/`.

use bench::{
    measure_workload, render_fig_by_relaxed, render_fig_by_tp, render_table2, render_table3,
    render_table4, DatasetReport, KS,
};
use datagen::{Dataset, TwitterConfig, TwitterGenerator, XkgConfig, XkgGenerator};
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Small,
    Full,
}

struct Args {
    experiments: Vec<String>,
    scale: Scale,
}

fn parse_args() -> Args {
    let mut experiments = Vec::new();
    let mut scale = Scale::Full;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--all" => experiments.extend(
                [
                    "table2", "table3", "table4", "fig6", "fig7", "fig8", "fig9", "ablation",
                ]
                .map(String::from),
            ),
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?}, expected small|full");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--all] [table2 table3 table4 fig6 fig7 fig8 fig9 ablation] [--scale small|full]"
                );
                std::process::exit(0);
            }
            exp => experiments.push(exp.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.extend(
            ["table2", "table3", "table4", "fig6", "fig7", "fig8", "fig9"].map(String::from),
        );
    }
    experiments.dedup();
    Args { experiments, scale }
}

fn build_xkg(scale: Scale) -> Dataset {
    let cfg = match scale {
        Scale::Full => XkgConfig::default(),
        Scale::Small => {
            let mut c = XkgConfig::small(0x5eed001);
            c.queries = 18;
            c
        }
    };
    XkgGenerator::new(cfg).generate()
}

fn build_twitter(scale: Scale) -> Dataset {
    let cfg = match scale {
        Scale::Full => TwitterConfig::default(),
        Scale::Small => {
            let mut c = TwitterConfig::small(0x71177e4);
            c.queries = 12;
            c
        }
    };
    TwitterGenerator::new(cfg).generate()
}

fn main() {
    let args = parse_args();
    let need_xkg = args.experiments.iter().any(|e| {
        matches!(
            e.as_str(),
            "table2" | "table3" | "table4" | "fig6" | "fig7" | "ablation"
        )
    });
    let need_twitter = args
        .experiments
        .iter()
        .any(|e| matches!(e.as_str(), "table2" | "table3" | "table4" | "fig8" | "fig9"));

    let mut xkg_report: Option<DatasetReport> = None;
    let mut twitter_report: Option<DatasetReport> = None;
    let mut ablation_out: Option<String> = None;

    if need_xkg {
        let t0 = Instant::now();
        let ds = build_xkg(args.scale);
        eprintln!("built {} in {:.1?}", ds.summary(), t0.elapsed());
        if args.experiments.iter().any(|e| e == "ablation") {
            let t0 = Instant::now();
            ablation_out = Some(bench::ablation_summary(&ds, 10));
            eprintln!("ran planner ablation in {:.1?}", t0.elapsed());
        }
        if args.experiments.iter().any(|e| e != "ablation") {
            let t0 = Instant::now();
            let report = measure_workload(&ds, &KS, |m| eprintln!("{m}"));
            eprintln!("measured xkg in {:.1?}", t0.elapsed());
            write_csv(&report);
            xkg_report = Some(report);
        }
    }
    if need_twitter {
        let t0 = Instant::now();
        let ds = build_twitter(args.scale);
        eprintln!("built {} in {:.1?}", ds.summary(), t0.elapsed());
        let t0 = Instant::now();
        let report = measure_workload(&ds, &KS, |m| eprintln!("{m}"));
        eprintln!("measured twitter in {:.1?}", t0.elapsed());
        write_csv(&report);
        twitter_report = Some(report);
    }

    let both: Vec<&DatasetReport> = [xkg_report.as_ref(), twitter_report.as_ref()]
        .into_iter()
        .flatten()
        .collect();

    for exp in &args.experiments {
        println!();
        match exp.as_str() {
            "table2" => println!("{}", render_table2(&both, &KS)),
            "table3" => println!("{}", render_table3(&both, &KS)),
            "table4" => println!("{}", render_table4(&both, &KS)),
            "fig6" => {
                if let Some(r) = &xkg_report {
                    println!("{}", render_fig_by_tp(r, &KS, "Figure 6 (XKG)"));
                }
            }
            "fig7" => {
                if let Some(r) = &xkg_report {
                    println!("{}", render_fig_by_relaxed(r, &KS, "Figure 7 (XKG)"));
                }
            }
            "fig8" => {
                if let Some(r) = &twitter_report {
                    println!("{}", render_fig_by_tp(r, &KS, "Figure 8 (Twitter)"));
                }
            }
            "fig9" => {
                if let Some(r) = &twitter_report {
                    println!("{}", render_fig_by_relaxed(r, &KS, "Figure 9 (Twitter)"));
                }
            }
            "ablation" => {
                if let Some(a) = &ablation_out {
                    println!("{a}");
                }
            }
            other => eprintln!("unknown experiment {other:?} — skipped"),
        }
    }
}

fn write_csv(report: &DatasetReport) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{}.csv", report.name));
        if let Err(e) = std::fs::write(&path, bench::tables::to_csv(report)) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}
