//! Open-loop workload driver for the wire front-end.
//!
//! Closed-loop harnesses (like [`crate::harness`]) wait for each response
//! before issuing the next query, so offered load can never exceed service
//! capacity and overload behavior goes untested. This driver is the
//! opposite: requests are issued on a fixed *Poisson arrival schedule*
//! (exponential inter-arrival gaps from a seeded generator) regardless of
//! how the server is coping, which is exactly the regime where admission
//! control, shedding and `RetryAfter` semantics matter.
//!
//! The driver is split-threaded over one connection: the sender paces the
//! schedule, the receiver drains responses and classifies them
//! (accepted / shed-with-`RetryAfter` / deadline-expired), measuring
//! client-observed latency per accepted request. `probe --server` uses it
//! at 2× the measured saturation rate and `bench_gate overload` holds the
//! resulting accepted-p99 and shed counts to the committed baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specqp_server::{ErrorCode, SpecQpClient, WireResponse};
use specqp_service::{percentile, ExecMode};
use std::collections::HashMap;
use std::net::ToSocketAddrs;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Open-loop run parameters.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Target offered load (Poisson arrival rate), requests per second.
    pub rate_per_sec: f64,
    /// Total requests to offer.
    pub requests: usize,
    /// Seed for the arrival schedule (same seed → same schedule).
    pub seed: u64,
    /// Top-k budget on every request.
    pub k: u32,
    /// Per-request deadline budget in ms (0 = none).
    pub deadline_ms: u32,
    /// Client id presented for quota accounting.
    pub client_id: u64,
}

impl OpenLoopConfig {
    /// `requests` arrivals at `rate_per_sec`, defaults elsewhere.
    pub fn new(rate_per_sec: f64, requests: usize) -> Self {
        OpenLoopConfig {
            rate_per_sec,
            requests,
            seed: 0x0bea_100b,
            k: 10,
            deadline_ms: 0,
            client_id: 1,
        }
    }
}

/// What came back from one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// Requests offered (sent on schedule).
    pub offered: usize,
    /// Requests that executed and returned answers.
    pub accepted: usize,
    /// Requests shed by admission control (`RetryAfter`: full queue or
    /// quota).
    pub shed_retry_after: usize,
    /// Requests shed for deadline expiry while queued.
    pub shed_deadline: usize,
    /// Any other error responses (protocol/internal — should be zero).
    pub other_errors: usize,
    /// Client-observed latency percentiles over *accepted* requests only.
    pub p50_accepted: Duration,
    /// 99th percentile of accepted-request latency.
    pub p99_accepted: Duration,
    /// Mean accepted-request latency.
    pub mean_accepted: Duration,
    /// Worst accepted-request latency.
    pub max_accepted: Duration,
    /// Wall-clock time of the whole run (schedule + drain).
    pub wall: Duration,
}

impl OpenLoopReport {
    /// Total shed requests (admission + deadline).
    pub fn shed_total(&self) -> usize {
        self.shed_retry_after + self.shed_deadline
    }
}

/// Precomputes the Poisson arrival offsets: the cumulative sum of
/// exponential gaps with mean `1/rate`. Deterministic per seed.
pub fn poisson_schedule(rate_per_sec: f64, requests: usize, seed: u64) -> Vec<Duration> {
    assert!(rate_per_sec > 0.0, "arrival rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = 0.0f64;
    (0..requests)
        .map(|_| {
            // Inverse-CDF sample; u ∈ [0, 1) so 1 − u ∈ (0, 1] never ln(0).
            let u: f64 = rng.gen();
            at += -(1.0 - u).ln() / rate_per_sec;
            Duration::from_secs_f64(at)
        })
        .collect()
}

/// Drives `config.requests` queries (round-robin over `queries`) at the
/// configured Poisson rate against a wire server and classifies every
/// response. Blocks until all responses arrive.
pub fn drive(
    addr: impl ToSocketAddrs,
    queries: &[String],
    config: &OpenLoopConfig,
) -> std::io::Result<OpenLoopReport> {
    assert!(
        !queries.is_empty(),
        "open-loop driver needs at least one query"
    );
    let mut sender = SpecQpClient::connect(addr)?;
    let mut receiver = sender.try_clone()?;
    // Belt-and-braces: a wedged server must fail the gate, not hang CI.
    receiver.set_read_timeout(Some(Duration::from_secs(60)))?;

    let sent_at: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let expected = config.requests;
    let rx_times = Arc::clone(&sent_at);
    let rx_thread = std::thread::spawn(move || {
        let mut accepted_lat: Vec<Duration> = Vec::new();
        let (mut accepted, mut retry, mut deadline, mut other) = (0usize, 0usize, 0usize, 0usize);
        for _ in 0..expected {
            let reply = match receiver.recv() {
                Ok(r) => r,
                Err(_) => {
                    other += 1;
                    continue;
                }
            };
            let now = Instant::now();
            let sent = rx_times
                .lock()
                .expect("send-time map poisoned")
                .remove(&reply.request_id());
            match reply {
                WireResponse::Answers { .. } => {
                    accepted += 1;
                    if let Some(t0) = sent {
                        accepted_lat.push(now.duration_since(t0));
                    }
                }
                WireResponse::Error { code, .. } => match code {
                    ErrorCode::RetryAfter => retry += 1,
                    ErrorCode::DeadlineExceeded => deadline += 1,
                    _ => other += 1,
                },
                // The query driver never sends WRITE frames.
                WireResponse::WriteOk { .. } => other += 1,
            }
        }
        (accepted_lat, accepted, retry, deadline, other)
    });

    let t0 = Instant::now();
    let schedule = poisson_schedule(config.rate_per_sec, config.requests, config.seed);
    for (i, due) in schedule.iter().enumerate() {
        if let Some(wait) = due.checked_sub(t0.elapsed()) {
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
        let query = &queries[i % queries.len()];
        let id = {
            // Record before sending so the response can never race the map.
            let now = Instant::now();
            let id = sender.send(
                query,
                ExecMode::SpecQp,
                config.k,
                config.deadline_ms,
                config.client_id,
            );
            match id {
                Ok(id) => {
                    sent_at
                        .lock()
                        .expect("send-time map poisoned")
                        .insert(id, now);
                    id
                }
                Err(e) => {
                    return Err(std::io::Error::other(format!(
                        "send failed at request {i}: {e}"
                    )));
                }
            }
        };
        let _ = id;
    }

    let (mut accepted_lat, accepted, retry, deadline, other) =
        rx_thread.join().expect("receiver thread panicked");
    let wall = t0.elapsed();
    accepted_lat.sort_unstable();
    let mean = if accepted_lat.is_empty() {
        Duration::ZERO
    } else {
        accepted_lat.iter().sum::<Duration>() / accepted_lat.len() as u32
    };
    Ok(OpenLoopReport {
        offered: config.requests,
        accepted,
        shed_retry_after: retry,
        shed_deadline: deadline,
        other_errors: other,
        p50_accepted: percentile(&accepted_lat, 0.50),
        p99_accepted: percentile(&accepted_lat, 0.99),
        mean_accepted: mean,
        max_accepted: accepted_lat.last().copied().unwrap_or(Duration::ZERO),
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;
    use relax::RelaxationRegistry;
    use specqp_server::{Server, ServerConfig};
    use specqp_service::{QueryService, ServiceConfig};
    use std::sync::Arc;

    #[test]
    fn poisson_schedule_is_seed_deterministic_with_mean_gap() {
        let a = poisson_schedule(100.0, 500, 42);
        let b = poisson_schedule(100.0, 500, 42);
        assert_eq!(a, b, "same seed, same schedule");
        let c = poisson_schedule(100.0, 500, 43);
        assert_ne!(a, c, "different seed, different schedule");
        // Monotone arrivals; mean gap within 3σ of 1/rate (σ = 1/(rate√n)).
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = a.last().unwrap().as_secs_f64() / 500.0;
        assert!(
            (mean_gap - 0.01).abs() < 3.0 * 0.01 / (500.0f64).sqrt(),
            "mean gap {mean_gap} too far from 10ms"
        );
    }

    /// End-to-end: an open-loop burst against a deliberately tiny service
    /// classifies every offered request, sheds some with RetryAfter, and
    /// still gets accepted work through.
    #[test]
    fn overloaded_run_sheds_and_accounts_for_every_request() {
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..50 {
            b.add(&format!("e{i}"), "type", "thing", 50.0 / (i + 1) as f64);
        }
        let service = Arc::new(QueryService::new(
            Arc::new(b.build()),
            Arc::new(RelaxationRegistry::new()),
            ServiceConfig::with_threads(1).with_queue_depth(2),
        ));
        let server =
            Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let queries = vec!["SELECT ?s WHERE { ?s <type> <thing> }".to_string()];
        // An effectively-infinite rate: all 120 arrivals due immediately.
        let config = OpenLoopConfig::new(1e9, 120);
        let report = drive(server.local_addr(), &queries, &config).unwrap();
        assert_eq!(report.offered, 120);
        assert_eq!(
            report.accepted + report.shed_total() + report.other_errors,
            120,
            "every request classified exactly once"
        );
        assert!(report.accepted >= 1, "some work gets through");
        assert!(
            report.shed_retry_after >= 1,
            "a 2-deep queue under a 120-burst sheds"
        );
        assert_eq!(report.other_errors, 0, "no protocol/internal errors");
        assert!(report.p50_accepted <= report.p99_accepted);
        assert!(report.p99_accepted <= report.max_accepted);
        server.shutdown();
    }
}
