//! Rendering of the paper's tables and figures from measurements.
//!
//! Figures 6–9 are bar charts in the paper; here each figure is rendered as
//! the table of the bar heights (runtimes in milliseconds and memory-object
//! counts, TriniT `T` vs Spec-QP `S`), one row per group, one panel per k —
//! the same information the charts plot.

use crate::harness::DatasetReport;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Table 2: precision (= recall) per dataset per k.
pub fn render_table2(reports: &[&DatasetReport], ks: &[usize]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 2: Precision (and Recall) over each dataset.");
    let _ = write!(s, "{:>4}", "k");
    for r in reports {
        let _ = write!(s, " {:>10}", r.name);
    }
    let _ = writeln!(s);
    for &k in ks {
        let _ = write!(s, "{k:>4}");
        for r in reports {
            let (mut sum, mut n) = (0.0, 0usize);
            for row in r.for_k(k) {
                sum += row.precision;
                n += 1;
            }
            let avg = if n > 0 { sum / n as f64 } else { 0.0 };
            let _ = write!(s, " {avg:>10.2}");
        }
        let _ = writeln!(s);
    }
    s
}

/// Table 3: prediction accuracy grouped by the number of relaxations
/// required to generate the true top-k. Each cell is `exact(total)`.
pub fn render_table3(reports: &[&DatasetReport], ks: &[usize]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 3: Prediction accuracy by #relaxations required (exact(total))."
    );
    let _ = write!(s, "{:<28}", "Dataset");
    for r in reports {
        for &k in ks {
            let _ = write!(s, " {:>12}", format!("{} k={k}", r.name));
        }
    }
    let _ = writeln!(s);
    let max_req = reports
        .iter()
        .flat_map(|r| r.rows.iter().map(|row| row.relaxed_required))
        .max()
        .unwrap_or(0);
    for req in 0..=max_req {
        let _ = write!(
            s,
            "{:<28}",
            format!("queries requiring {req} relaxation(s)")
        );
        let mut any = false;
        let mut line = String::new();
        for r in reports {
            for &k in ks {
                let mut exact = 0usize;
                let mut total = 0usize;
                for row in r.for_k(k).filter(|row| row.relaxed_required == req) {
                    total += 1;
                    if row.prediction_exact {
                        exact += 1;
                    }
                }
                if total > 0 {
                    any = true;
                    let _ = write!(line, " {:>12}", format!("{exact}({total})"));
                } else {
                    let _ = write!(line, " {:>12}", "-");
                }
            }
        }
        if any {
            let _ = writeln!(s, "{line}");
        } else {
            // Trim all-empty rows except req 0 (informative for our data).
            let _ = writeln!(s, "{line}");
        }
    }
    s
}

/// Table 4: average score deviation (± std-dev, % deviation) grouped by
/// #TP per query, per dataset, per k.
pub fn render_table4(reports: &[&DatasetReport], ks: &[usize]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 4: Average score deviations from the true top-k (mean(pct%)±std)."
    );
    for r in reports {
        let mut tps: Vec<usize> = r.rows.iter().map(|row| row.tp).collect();
        tps.sort_unstable();
        tps.dedup();
        let _ = write!(s, "{:<10}{:>4}", r.name, "k");
        for &tp in &tps {
            let _ = write!(s, " {:>22}", format!("#TP={tp}"));
        }
        let _ = writeln!(s);
        for &k in ks {
            let _ = write!(s, "{:<10}{k:>4}", "");
            for &tp in &tps {
                let rows: Vec<_> = r.for_k(k).filter(|row| row.tp == tp).collect();
                if rows.is_empty() {
                    let _ = write!(s, " {:>22}", "-");
                    continue;
                }
                let n = rows.len() as f64;
                let mean = rows.iter().map(|x| x.error.mean_abs).sum::<f64>() / n;
                let pct = rows.iter().map(|x| x.error.mean_pct).sum::<f64>() / n;
                let std = rows.iter().map(|x| x.error.std_dev).sum::<f64>() / n;
                let _ = write!(s, " {:>22}", format!("{mean:.2}({pct:.0}%)±{std:.2}"));
            }
            let _ = writeln!(s);
        }
    }
    s
}

/// Figures 6 (XKG) / 8 (Twitter): runtimes and memory grouped by the number
/// of triple patterns, one panel per k, bars T (TriniT) and S (Spec-QP).
pub fn render_fig_by_tp(report: &DatasetReport, ks: &[usize], figure_name: &str) -> String {
    render_grouped(report, ks, figure_name, "#TP", |row| row.tp)
}

/// Figures 7 (XKG) / 9 (Twitter): the same, grouped by the number of triple
/// patterns Spec-QP decided to relax.
pub fn render_fig_by_relaxed(report: &DatasetReport, ks: &[usize], figure_name: &str) -> String {
    render_grouped(report, ks, figure_name, "#relaxed", |row| {
        row.relaxed_by_spec
    })
}

fn render_grouped(
    report: &DatasetReport,
    ks: &[usize],
    figure_name: &str,
    group_label: &str,
    group_of: impl Fn(&crate::harness::QueryMeasurement) -> usize,
) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{figure_name}: runtimes (ms) and memory (answer objects), T=TriniT S=Spec-QP, grouped by {group_label}."
    );
    for &k in ks {
        let mut groups: BTreeMap<usize, Vec<&crate::harness::QueryMeasurement>> = BTreeMap::new();
        for row in report.for_k(k) {
            groups.entry(group_of(row)).or_default().push(row);
        }
        let _ = writeln!(s, "  k={k}:");
        let _ = writeln!(
            s,
            "    {group_label:>9} {:>8} {:>12} {:>12} {:>14} {:>14} {:>8}",
            "queries", "T time", "S time", "T memory", "S memory", "S/T"
        );
        for (g, rows) in groups {
            let n = rows.len() as f64;
            let t_ms = rows.iter().map(|r| r.trinit_total_ms).sum::<f64>() / n;
            let s_ms = rows.iter().map(|r| r.spec_total_ms).sum::<f64>() / n;
            let t_mem = rows.iter().map(|r| r.trinit_mem as f64).sum::<f64>() / n;
            let s_mem = rows.iter().map(|r| r.spec_mem as f64).sum::<f64>() / n;
            let ratio = if t_ms > 0.0 { s_ms / t_ms } else { 1.0 };
            let _ = writeln!(
                s,
                "    {g:>9} {:>8} {t_ms:>12.2} {s_ms:>12.2} {t_mem:>14.0} {s_mem:>14.0} {ratio:>8.2}",
                rows.len()
            );
        }
    }
    s
}

/// CSV dump of the raw measurement rows (one file per dataset), for
/// re-plotting.
pub fn to_csv(report: &DatasetReport) -> String {
    let mut s = String::from(
        "qid,tp,k,spec_plan_ms,spec_total_ms,trinit_total_ms,spec_mem,trinit_mem,relaxed_by_spec,relaxed_required,prediction_exact,prediction_covering,precision,err_mean,err_std,err_pct\n",
    );
    for r in &report.rows {
        let _ = writeln!(
            s,
            "{},{},{},{:.4},{:.4},{:.4},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.2}",
            r.qid,
            r.tp,
            r.k,
            r.spec_plan_ms,
            r.spec_total_ms,
            r.trinit_total_ms,
            r.spec_mem,
            r.trinit_mem,
            r.relaxed_by_spec,
            r.relaxed_required,
            r.prediction_exact,
            r.prediction_covering,
            r.precision,
            r.error.mean_abs,
            r.error.std_dev,
            r.error.mean_pct,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::QueryMeasurement;
    use specqp::ScoreError;

    fn row(qid: usize, tp: usize, k: usize, relaxed: usize, required: usize) -> QueryMeasurement {
        QueryMeasurement {
            qid,
            tp,
            k,
            spec_plan_ms: 0.5,
            spec_total_ms: 5.0,
            trinit_total_ms: 10.0,
            spec_mem: 100,
            trinit_mem: 200,
            relaxed_by_spec: relaxed,
            relaxed_required: required,
            prediction_exact: relaxed == required,
            prediction_covering: relaxed >= required,
            precision: 0.9,
            error: ScoreError {
                mean_abs: 0.1,
                std_dev: 0.05,
                mean_pct: 5.0,
            },
        }
    }

    fn report() -> DatasetReport {
        DatasetReport {
            name: "xkg".into(),
            rows: vec![
                row(0, 2, 10, 1, 1),
                row(1, 3, 10, 2, 3),
                row(0, 2, 15, 2, 2),
                row(1, 3, 15, 3, 3),
            ],
        }
    }

    #[test]
    fn table2_has_avg_precision() {
        let r = report();
        let out = render_table2(&[&r], &[10, 15]);
        assert!(out.contains("xkg"));
        assert!(out.contains("0.90"));
    }

    #[test]
    fn table3_counts_exact_over_total() {
        let r = report();
        let out = render_table3(&[&r], &[10, 15]);
        assert!(out.contains("1(1)"), "{out}");
    }

    #[test]
    fn table4_formats_error() {
        let r = report();
        let out = render_table4(&[&r], &[10, 15]);
        assert!(out.contains("0.10(5%)±0.05"), "{out}");
    }

    #[test]
    fn figures_group_rows() {
        let r = report();
        let by_tp = render_fig_by_tp(&r, &[10], "Figure 6");
        assert!(by_tp.contains("k=10"));
        assert!(by_tp.contains("Figure 6"));
        let by_rel = render_fig_by_relaxed(&r, &[10], "Figure 7");
        assert!(by_rel.contains("#relaxed"));
    }

    #[test]
    fn csv_roundtrip_columns() {
        let r = report();
        let csv = to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0].split(',').count(), 16);
        assert_eq!(lines[1].split(',').count(), 16);
    }
}
