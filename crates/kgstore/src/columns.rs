//! Struct-of-arrays storage for scored triples.
//!
//! The triple table is kept as four parallel columns (`s`, `p`, `o`,
//! `score`) instead of an array of [`ScoredTriple`] structs. Operators that
//! only need scores (upper bounds, normalizers, cumulative sums) touch the
//! score column alone — 8 bytes per triple instead of 32 — and the snapshot
//! format serializes each column as one contiguous block.

use crate::triple::{ScoredTriple, Triple};
use specqp_common::{Score, TermId};

/// Parallel `s`/`p`/`o`/`score` columns over the triple table.
///
/// Row `i` of all four columns together is the `i`-th [`ScoredTriple`];
/// the invariant that all columns have equal length is maintained by every
/// constructor and mutator.
#[derive(Debug, Default, Clone)]
pub struct TripleColumns {
    pub(crate) s: Vec<TermId>,
    pub(crate) p: Vec<TermId>,
    pub(crate) o: Vec<TermId>,
    pub(crate) score: Vec<Score>,
}

impl TripleColumns {
    /// Empty columns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.score.len()
    }

    /// `true` when there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.score.is_empty()
    }

    /// Pre-allocates space for `n` additional rows in every column.
    pub fn reserve(&mut self, n: usize) {
        self.s.reserve(n);
        self.p.reserve(n);
        self.o.reserve(n);
        self.score.reserve(n);
    }

    /// Appends one row.
    #[inline]
    pub fn push(&mut self, t: Triple, score: Score) {
        self.s.push(t.s);
        self.p.push(t.p);
        self.o.push(t.o);
        self.score.push(score);
    }

    /// The triple components at row `i`.
    #[inline]
    pub fn triple(&self, i: usize) -> Triple {
        Triple::new(self.s[i], self.p[i], self.o[i])
    }

    /// The score at row `i` (touches only the score column).
    #[inline]
    pub fn score(&self, i: usize) -> Score {
        self.score[i]
    }

    /// Row `i` assembled into a [`ScoredTriple`].
    #[inline]
    pub fn scored(&self, i: usize) -> ScoredTriple {
        ScoredTriple {
            triple: self.triple(i),
            score: self.score[i],
        }
    }

    /// Overwrites the score at row `i` (builder duplicate-policy path).
    #[inline]
    pub(crate) fn set_score(&mut self, i: usize, score: Score) {
        self.score[i] = score;
    }

    /// The subject column.
    pub fn subjects(&self) -> &[TermId] {
        &self.s
    }

    /// The predicate column.
    pub fn predicates(&self) -> &[TermId] {
        &self.p
    }

    /// The object column.
    pub fn objects(&self) -> &[TermId] {
        &self.o
    }

    /// The score column.
    pub fn scores(&self) -> &[Score] {
        &self.score
    }

    /// Iterates all rows as [`ScoredTriple`]s in storage order.
    pub fn iter(&self) -> impl Iterator<Item = ScoredTriple> + '_ {
        (0..self.len()).map(move |i| self.scored(i))
    }

    /// Gathers the rows at `ids` into four parallel output vectors
    /// (appending) — the block-at-a-time fill path: one tight loop per
    /// column, no per-row `ScoredTriple` assembly.
    ///
    /// # Panics
    /// Panics if any id is out of range (ids come from this graph's own
    /// posting lists, which are validated on build/load).
    pub fn gather_into(
        &self,
        ids: &[u32],
        s: &mut Vec<TermId>,
        p: &mut Vec<TermId>,
        o: &mut Vec<TermId>,
        score: &mut Vec<Score>,
    ) {
        s.extend(ids.iter().map(|&i| self.s[i as usize]));
        p.extend(ids.iter().map(|&i| self.p[i as usize]));
        o.extend(ids.iter().map(|&i| self.o[i as usize]));
        score.extend(ids.iter().map(|&i| self.score[i as usize]));
    }

    /// Resident bytes of the four columns.
    pub fn approx_bytes(&self) -> usize {
        self.len() * (3 * std::mem::size_of::<TermId>() + std::mem::size_of::<Score>())
    }

    /// Rebuilds columns from parts (snapshot load). Fails if the column
    /// lengths disagree.
    pub(crate) fn from_parts(
        s: Vec<TermId>,
        p: Vec<TermId>,
        o: Vec<TermId>,
        score: Vec<Score>,
    ) -> Option<Self> {
        if s.len() != score.len() || p.len() != score.len() || o.len() != score.len() {
            return None;
        }
        Some(TripleColumns { s, p, o, score })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> TripleColumns {
        let mut c = TripleColumns::new();
        c.push(
            Triple::new(TermId(1), TermId(2), TermId(3)),
            Score::new(5.0),
        );
        c.push(
            Triple::new(TermId(4), TermId(2), TermId(3)),
            Score::new(1.0),
        );
        c
    }

    #[test]
    fn push_and_read_back() {
        let c = cols();
        assert_eq!(c.len(), 2);
        assert_eq!(c.triple(0), Triple::new(TermId(1), TermId(2), TermId(3)));
        assert_eq!(c.score(1).value(), 1.0);
        assert_eq!(c.scored(1).triple.s, TermId(4));
    }

    #[test]
    fn columns_stay_parallel() {
        let c = cols();
        assert_eq!(c.subjects().len(), c.len());
        assert_eq!(c.predicates().len(), c.len());
        assert_eq!(c.objects().len(), c.len());
        assert_eq!(c.scores().len(), c.len());
    }

    #[test]
    fn iter_matches_rows() {
        let c = cols();
        let v: Vec<ScoredTriple> = c.iter().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], c.scored(0));
        assert_eq!(v[1], c.scored(1));
    }

    #[test]
    fn gather_appends_selected_rows() {
        let c = cols();
        let (mut s, mut p, mut o, mut sc) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        c.gather_into(&[1, 0, 1], &mut s, &mut p, &mut o, &mut sc);
        assert_eq!(s, vec![TermId(4), TermId(1), TermId(4)]);
        assert_eq!(p, vec![TermId(2); 3]);
        assert_eq!(o, vec![TermId(3); 3]);
        assert_eq!(
            sc.iter().map(|x| x.value()).collect::<Vec<_>>(),
            vec![1.0, 5.0, 1.0]
        );
        // Appending: a second gather extends, never truncates.
        c.gather_into(&[0], &mut s, &mut p, &mut o, &mut sc);
        assert_eq!(s.len(), 4);
        assert_eq!(sc.len(), 4);
    }

    #[test]
    fn from_parts_validates_lengths() {
        assert!(TripleColumns::from_parts(
            vec![TermId(1)],
            vec![TermId(2)],
            vec![TermId(3)],
            vec![Score::new(1.0)],
        )
        .is_some());
        assert!(
            TripleColumns::from_parts(vec![TermId(1)], vec![], vec![TermId(3)], vec![]).is_none()
        );
    }
}
