//! In-memory dictionary-encoded scored triple store.
//!
//! This crate is the knowledge-graph substrate of the Spec-QP reproduction.
//! The paper (§4.4) retrieves the matches of each triple pattern *in
//! score-sorted order* from PostgreSQL; the planner and the top-k operators
//! only ever interact with the storage layer through that interface. Here the
//! substrate is an in-memory store that precomputes, for every triple-pattern
//! *signature* (each of s/p/o either bound or variable), posting lists sorted
//! by descending triple score.
//!
//! # Contents
//!
//! * [`Dictionary`] — string ⇄ [`TermId`] interning,
//! * [`Triple`], [`ScoredTriple`] — the 〈s,p,o〉 data model with scores
//!   (Def. 1 of the paper),
//! * [`KnowledgeGraphBuilder`] → [`KnowledgeGraph`] — construction and
//!   storage,
//! * [`PatternKey`] — a lookup key with optional s/p/o components,
//! * [`MatchList`] — a borrowed, score-descending list of matching triples,
//!   the unit consumed by sorted scans and by the statistics builder.
//!
//! # Example
//!
//! ```
//! use kgstore::{KnowledgeGraphBuilder, PatternKey};
//!
//! let mut b = KnowledgeGraphBuilder::new();
//! b.add("shakira", "rdf:type", "singer", 10.0);
//! b.add("beyonce", "rdf:type", "singer", 9.0);
//! b.add("shakira", "rdf:type", "lyricist", 4.0);
//! let kg = b.build();
//!
//! let singer = kg.dictionary().lookup("singer").unwrap();
//! let ty = kg.dictionary().lookup("rdf:type").unwrap();
//! let matches = kg.matches(PatternKey::po(ty, singer));
//! assert_eq!(matches.len(), 2);
//! // Sorted by descending score:
//! assert!(matches.score_at(0) >= matches.score_at(1));
//! ```

pub mod builder;
pub mod columns;
pub mod index;
pub mod io;
pub mod live;
pub mod pattern_key;
pub mod snapshot;
pub mod store;
pub mod triple;

pub use builder::{DuplicatePolicy, KnowledgeGraphBuilder};
pub use columns::TripleColumns;
pub use io::{read_tsv, read_tsv_into, write_tsv};
pub use live::{CompactionPolicy, DeltaStore, Epoch, LiveGraph, LiveStats, WriteBatch, WriteOp};
pub use pattern_key::{PatternKey, Signature};
pub use snapshot::{
    load_snapshot, read_snapshot, save_snapshot, write_snapshot, write_snapshot_v1,
};
pub use store::{KnowledgeGraph, MatchList};
pub use triple::{ScoredTriple, Triple};

pub use specqp_common::{Dictionary, Score, TermId};
