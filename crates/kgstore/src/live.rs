//! Live writes: delta accumulation, epoch-pinned versions, compaction.
//!
//! The MVCC-lite scheme has three moving parts:
//!
//! * a [`DeltaStore`] — the single-writer accumulator of asserted and
//!   retracted triples on top of an immutable base graph;
//! * immutable **versions** — on every [`LiveGraph::commit`] the delta
//!   store freezes its current state into an
//!   [`OverlaySegment`](crate::store) and publishes a new
//!   [`KnowledgeGraph`] that shares the base columns/indexes by `Arc`;
//!   readers pin whichever version was current when their query started
//!   ([`LiveGraph::pinned`]) and keep answering from it unaffected by later
//!   commits;
//! * **compaction** — when the overlay outgrows its [`CompactionPolicy`]
//!   (or [`LiveGraph::compact`] is called), the overlay is folded into a
//!   fresh flat base with re-densified storage ids and a
//!   [`flattened`](specqp_common::Dictionary::flattened) dictionary; the
//!   delta store restarts empty on the new base.
//!
//! Every commit — including a compacting one — bumps the [`Epoch`], a
//! monotonically increasing version counter. [`TermId`] assignments are
//! **stable across epochs within a compaction generation**: the delta
//! store's dictionary is layered on the base's, so terms only ever gain
//! ids. A query parsed against the newest dictionary therefore resolves
//! identically against any older pinned version of the same generation
//! (unknown-to-that-version ids simply match nothing).
//!
//! Write semantics (the retraction masking rules):
//!
//! * **assert** of a triple already visible replaces its score (the base
//!   row is masked and a delta row takes over, or the old delta row dies);
//! * **assert** of a new triple appends a delta row;
//! * **retract** hides the triple wherever it lives — masks a base row,
//!   kills a delta row — and is a no-op for unknown triples or terms.
//!
//! [`TermId`]: specqp_common::TermId

use crate::columns::TripleColumns;
use crate::index::PatternIndexes;
use crate::pattern_key::pack3;
use crate::store::{KnowledgeGraph, OverlaySegment};
use crate::triple::Triple;
use specqp_common::{Dictionary, FxHashMap, Score};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A monotonically increasing version counter for a [`LiveGraph`].
///
/// Epoch 0 is the initial base; every commit (including compactions)
/// publishes the next epoch. Queries pin an epoch when they start and see
/// that version's answers for their whole lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(u64);

impl Epoch {
    /// The initial epoch (the base graph before any commit).
    pub const ZERO: Epoch = Epoch(0);

    /// Wraps a raw epoch counter (wire decoding).
    pub fn new(value: u64) -> Epoch {
        Epoch(value)
    }

    /// The raw counter value (wire encoding).
    pub fn value(self) -> u64 {
        self.0
    }

    /// The epoch after this one.
    pub(crate) fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One write operation, by term names.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    /// Upsert a scored triple: inserts it, or replaces the score of an
    /// existing visible triple.
    Assert {
        /// Subject term.
        s: String,
        /// Predicate term.
        p: String,
        /// Object term.
        o: String,
        /// New raw score (finite, non-negative).
        score: f64,
    },
    /// Hide a visible triple. No-op if absent.
    Retract {
        /// Subject term.
        s: String,
        /// Predicate term.
        p: String,
        /// Object term.
        o: String,
    },
}

/// An ordered batch of write operations, committed atomically under one
/// epoch.
///
/// ```
/// use kgstore::{KnowledgeGraphBuilder, LiveGraph, PatternKey, WriteBatch};
///
/// let mut b = KnowledgeGraphBuilder::new();
/// b.add("a", "type", "singer", 5.0);
/// let live = LiveGraph::new(b.build());
///
/// let mut batch = WriteBatch::new();
/// batch.assert("b", "type", "singer", 9.0);
/// batch.retract("a", "type", "singer");
/// let epoch = live.commit(&batch);
/// assert_eq!(epoch.value(), 1);
///
/// let (graph, at) = live.pinned();
/// assert_eq!(at, epoch);
/// let ty = graph.dictionary().lookup("type").unwrap();
/// let singer = graph.dictionary().lookup("singer").unwrap();
/// let m = graph.matches(PatternKey::po(ty, singer));
/// assert_eq!(m.len(), 1); // "a" retracted, "b" asserted
/// assert_eq!(m.score_at(0).value(), 9.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WriteBatch {
    ops: Vec<WriteOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an assert (upsert) of `(s, p, o)` with `score`.
    pub fn assert(&mut self, s: &str, p: &str, o: &str, score: f64) -> &mut Self {
        self.ops.push(WriteOp::Assert {
            s: s.to_string(),
            p: p.to_string(),
            o: o.to_string(),
            score,
        });
        self
    }

    /// Queues a retraction of `(s, p, o)`.
    pub fn retract(&mut self, s: &str, p: &str, o: &str) -> &mut Self {
        self.ops.push(WriteOp::Retract {
            s: s.to_string(),
            p: p.to_string(),
            o: o.to_string(),
        });
        self
    }

    /// Queues an already-built [`WriteOp`] (wire decoding).
    pub fn push(&mut self, op: WriteOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued operations in commit order.
    pub fn ops(&self) -> &[WriteOp] {
        &self.ops
    }
}

/// When the writer folds its delta overlay into a new flat base.
///
/// Compaction triggers at the *end of a commit* once either bound is
/// reached; [`LiveGraph::compact`] forces it regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Fold once this many alive delta rows have accumulated.
    pub max_delta_rows: usize,
    /// Fold once this many base rows are masked by retractions/replacements.
    pub max_masked_rows: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_delta_rows: 8192,
            max_masked_rows: 4096,
        }
    }
}

impl CompactionPolicy {
    /// A policy that never compacts on its own — only explicit
    /// [`LiveGraph::compact`] calls fold the overlay. Useful in tests and
    /// for exercising deep overlays.
    pub fn never() -> Self {
        CompactionPolicy {
            max_delta_rows: usize::MAX,
            max_masked_rows: usize::MAX,
        }
    }
}

/// The single-writer accumulator of live writes on top of a flat base.
///
/// Owned by a [`LiveGraph`] behind its writer lock; exposed read-only
/// through [`LiveGraph::stats`]. Rows are appended (never moved) so delta
/// row identity is stable between commits; retracted/replaced delta rows
/// are only marked dead and get dropped at the next freeze, masked base
/// rows at the next compaction.
#[derive(Debug)]
pub struct DeltaStore {
    /// The immutable base every version of this generation shares.
    base: Arc<KnowledgeGraph>,
    /// Layered dictionary: base terms keep their ids, new terms append.
    dict: Dictionary,
    /// Every delta row ever asserted this generation, dead ones included.
    rows: TripleColumns,
    /// Liveness flag per delta row.
    alive: Vec<bool>,
    /// Triple → its alive delta row, for replace/retract.
    live_by_triple: FxHashMap<Triple, u32>,
    /// Bitset over base storage ids: set = masked (retracted/replaced).
    masked: Vec<u64>,
    masked_count: u32,
    alive_count: u32,
}

impl DeltaStore {
    fn new(base: Arc<KnowledgeGraph>) -> Self {
        debug_assert!(!base.has_overlay(), "delta base must be flat");
        let words = base.base_len().div_ceil(64);
        let dict = Dictionary::layered(Arc::new(base.dictionary().clone()));
        DeltaStore {
            base,
            dict,
            rows: TripleColumns::new(),
            alive: Vec::new(),
            live_by_triple: FxHashMap::default(),
            masked: vec![0u64; words],
            masked_count: 0,
            alive_count: 0,
        }
    }

    #[inline]
    fn is_masked(&self, id: u32) -> bool {
        self.masked[(id / 64) as usize] & (1u64 << (id % 64)) != 0
    }

    fn mask(&mut self, id: u32) {
        let w = &mut self.masked[(id / 64) as usize];
        let bit = 1u64 << (id % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.masked_count += 1;
        }
    }

    fn base_row_of(&self, t: Triple) -> Option<u32> {
        self.base.indexes.spo.get(pack3(t.s, t.p, t.o))
    }

    fn apply(&mut self, op: &WriteOp) {
        match op {
            WriteOp::Assert { s, p, o, score } => {
                let t = Triple::new(
                    self.dict.intern(s),
                    self.dict.intern(p),
                    self.dict.intern(o),
                );
                if let Some(row) = self.live_by_triple.remove(&t) {
                    // Replacing an earlier live write: the old row dies.
                    self.alive[row as usize] = false;
                    self.alive_count -= 1;
                } else if let Some(base_row) = self.base_row_of(t) {
                    // Replacing a base triple: hide the base row.
                    self.mask(base_row);
                }
                let row = self.rows.len() as u32;
                self.rows.push(t, Score::new(score.max(0.0)));
                self.alive.push(true);
                self.alive_count += 1;
                self.live_by_triple.insert(t, row);
            }
            WriteOp::Retract { s, p, o } => {
                let (Some(s), Some(p), Some(o)) = (
                    self.dict.lookup(s),
                    self.dict.lookup(p),
                    self.dict.lookup(o),
                ) else {
                    return; // unknown term → triple cannot exist
                };
                let t = Triple::new(s, p, o);
                if let Some(row) = self.live_by_triple.remove(&t) {
                    self.alive[row as usize] = false;
                    self.alive_count -= 1;
                    // A base row replaced by this delta row stays masked.
                } else if let Some(base_row) = self.base_row_of(t) {
                    self.mask(base_row);
                }
            }
        }
    }

    /// Freezes the current delta state into a published version: compacts
    /// the alive rows into fresh local ids, indexes them, and materializes
    /// the merged global scan list.
    fn freeze_version(&self) -> KnowledgeGraph {
        let mut cols = TripleColumns::new();
        cols.reserve(self.alive_count as usize);
        for i in 0..self.rows.len() {
            if self.alive[i] {
                cols.push(self.rows.triple(i), self.rows.score(i));
            }
        }
        let indexes = PatternIndexes::build(&cols);

        // Merge the base global list (masked rows skipped) with the delta
        // global list into one score-descending id-ascending scan list.
        let base_len = self.base.base_len() as u32;
        let base_all: &[u32] = &self.base.indexes.all;
        let delta_all: &[u32] = &indexes.all;
        let mut all =
            Vec::with_capacity(base_all.len() - self.masked_count as usize + delta_all.len());
        let (mut bi, mut di) = (0usize, 0usize);
        loop {
            while bi < base_all.len() && self.is_masked(base_all[bi]) {
                bi += 1;
            }
            match (bi < base_all.len(), di < delta_all.len()) {
                (false, false) => break,
                (true, false) => {
                    all.push(base_all[bi]);
                    bi += 1;
                }
                (false, true) => {
                    all.push(base_len + delta_all[di]);
                    di += 1;
                }
                (true, true) => {
                    let bs = self.base.columns().score(base_all[bi] as usize);
                    let ds = cols.score(delta_all[di] as usize);
                    if bs >= ds {
                        all.push(base_all[bi]);
                        bi += 1;
                    } else {
                        all.push(base_len + delta_all[di]);
                        di += 1;
                    }
                }
            }
        }

        let overlay = OverlaySegment {
            cols,
            indexes,
            masked: self.masked.clone(),
            masked_count: self.masked_count,
            all,
        };
        KnowledgeGraph::overlay_version(&self.base, self.dict.clone(), overlay)
    }

    /// `true` when there is literally nothing to fold — no alive delta
    /// rows, no masks, no new terms.
    fn is_pristine(&self) -> bool {
        self.alive_count == 0
            && self.masked_count == 0
            && self.dict.len() == self.base.dictionary().len()
    }

    /// Folds the overlay into a new flat base and restarts empty on it.
    fn compact_into_base(&mut self) -> Arc<KnowledgeGraph> {
        let folded = Arc::new(self.freeze_version().flattened());
        *self = DeltaStore::new(Arc::clone(&folded));
        folded
    }
}

/// Read-only counters describing a [`LiveGraph`]'s write-side state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveStats {
    /// The currently published epoch.
    pub epoch: Epoch,
    /// Alive delta rows awaiting compaction.
    pub delta_rows: usize,
    /// Base rows hidden by retractions/replacements.
    pub masked_rows: usize,
    /// Compactions performed so far.
    pub compactions: u64,
}

/// A knowledge graph that accepts writes while continuing to serve
/// consistent reads.
///
/// Readers call [`LiveGraph::pinned`] once per query and use the returned
/// `Arc<KnowledgeGraph>` for planning, execution and verification — that
/// version is immutable, so the query is isolated from concurrent commits.
/// Writers call [`LiveGraph::commit`]; commits serialize on an internal
/// writer lock and never block readers (publication is one `RwLock` write
/// of an `Arc` + epoch pair).
///
/// ```
/// use kgstore::{Epoch, KnowledgeGraphBuilder, LiveGraph, WriteBatch};
///
/// let mut b = KnowledgeGraphBuilder::new();
/// b.add("shakira", "rdf:type", "singer", 100.0);
/// let live = LiveGraph::new(b.build());             // epoch 0
///
/// // A reader pins the version current when its query starts…
/// let (version, at) = live.pinned();
/// assert_eq!(at, Epoch::ZERO);
///
/// // …and a commit landing mid-query cannot touch it.
/// let mut batch = WriteBatch::new();
/// batch.assert("adele", "rdf:type", "singer", 90.0);
/// batch.retract("shakira", "rdf:type", "singer");
/// let epoch = live.commit(&batch);
/// assert_eq!(epoch, Epoch::new(1));
/// assert_eq!(version.len(), 1);                     // still the epoch-0 view
/// assert_eq!(live.pinned().0.len(), 1);             // adele in, shakira masked
/// assert_eq!(live.stats().delta_rows, 1);
/// ```
pub struct LiveGraph {
    writer: Mutex<DeltaStore>,
    current: RwLock<(Arc<KnowledgeGraph>, Epoch)>,
    policy: CompactionPolicy,
    compactions: AtomicU64,
}

impl std::fmt::Debug for LiveGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (graph, epoch) = self.pinned();
        f.debug_struct("LiveGraph")
            .field("epoch", &epoch)
            .field("len", &graph.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl LiveGraph {
    /// Wraps `base` as epoch 0 with the default [`CompactionPolicy`].
    pub fn new(base: KnowledgeGraph) -> Self {
        Self::with_policy(base, CompactionPolicy::default())
    }

    /// Wraps `base` as epoch 0 with an explicit compaction policy.
    /// An overlay-carrying `base` is flattened first.
    pub fn with_policy(base: KnowledgeGraph, policy: CompactionPolicy) -> Self {
        let base = if base.has_overlay() {
            Arc::new(base.flattened())
        } else {
            Arc::new(base)
        };
        LiveGraph {
            writer: Mutex::new(DeltaStore::new(Arc::clone(&base))),
            current: RwLock::new((base, Epoch::ZERO)),
            policy,
            compactions: AtomicU64::new(0),
        }
    }

    /// Pins the current version: the returned graph is immutable and
    /// reflects exactly the commits up to the returned epoch. Hold the
    /// `Arc` for the lifetime of one query.
    pub fn pinned(&self) -> (Arc<KnowledgeGraph>, Epoch) {
        let cur = self.current.read().expect("live graph lock poisoned");
        (Arc::clone(&cur.0), cur.1)
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> Epoch {
        self.current.read().expect("live graph lock poisoned").1
    }

    /// Applies `batch` atomically and publishes the next epoch. If the
    /// resulting overlay exceeds the [`CompactionPolicy`], the commit also
    /// folds it into a new flat base before publishing (one epoch bump
    /// covers both).
    pub fn commit(&self, batch: &WriteBatch) -> Epoch {
        let mut w = self.writer.lock().expect("live graph writer poisoned");
        for op in batch.ops() {
            w.apply(op);
        }
        let should_compact = w.alive_count as usize >= self.policy.max_delta_rows
            || w.masked_count as usize >= self.policy.max_masked_rows;
        let graph = if should_compact {
            self.compactions.fetch_add(1, Ordering::Relaxed);
            w.compact_into_base()
        } else {
            Arc::new(w.freeze_version())
        };
        let mut cur = self.current.write().expect("live graph lock poisoned");
        let epoch = cur.1.next();
        *cur = (graph, epoch);
        epoch
    }

    /// Forces a compaction: folds the current overlay into a new flat base
    /// and publishes it under the next epoch. Returns the current epoch
    /// unchanged (and performs no work) when there is nothing to fold —
    /// pointless epoch bumps would only evict warm plan caches downstream.
    pub fn compact(&self) -> Epoch {
        let mut w = self.writer.lock().expect("live graph writer poisoned");
        if w.is_pristine() {
            return self.epoch();
        }
        self.compactions.fetch_add(1, Ordering::Relaxed);
        let graph = w.compact_into_base();
        let mut cur = self.current.write().expect("live graph lock poisoned");
        let epoch = cur.1.next();
        *cur = (graph, epoch);
        epoch
    }

    /// Current write-side counters.
    pub fn stats(&self) -> LiveStats {
        let w = self.writer.lock().expect("live graph writer poisoned");
        LiveStats {
            epoch: self.epoch(),
            delta_rows: w.alive_count as usize,
            masked_rows: w.masked_count as usize,
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern_key::PatternKey;
    use crate::snapshot::{read_snapshot, write_snapshot};
    use crate::KnowledgeGraphBuilder;

    fn base() -> KnowledgeGraph {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("a", "type", "singer", 10.0);
        b.add("b", "type", "singer", 4.0);
        b.add("c", "type", "singer", 2.0);
        b.add("a", "plays", "guitar", 3.0);
        b.build()
    }

    fn po(kg: &KnowledgeGraph, p: &str, o: &str) -> Vec<(String, f64)> {
        let d = kg.dictionary();
        let (Some(p), Some(o)) = (d.lookup(p), d.lookup(o)) else {
            return Vec::new();
        };
        kg.matches(PatternKey::po(p, o))
            .iter_triples()
            .map(|(t, s)| (d.name(t.s).unwrap().to_string(), s.value()))
            .collect()
    }

    #[test]
    fn assert_inserts_and_merges_by_score() {
        let live = LiveGraph::new(base());
        let mut batch = WriteBatch::new();
        batch.assert("d", "type", "singer", 7.0);
        batch.assert("e", "type", "singer", 1.0);
        live.commit(&batch);
        let (g, _) = live.pinned();
        assert_eq!(
            po(&g, "type", "singer"),
            vec![
                ("a".into(), 10.0),
                ("d".into(), 7.0),
                ("b".into(), 4.0),
                ("c".into(), 2.0),
                ("e".into(), 1.0),
            ]
        );
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn retract_masks_base_and_kills_delta() {
        let live = LiveGraph::new(base());
        let mut b1 = WriteBatch::new();
        b1.assert("d", "type", "singer", 7.0);
        b1.retract("b", "type", "singer");
        live.commit(&b1);
        let (g, _) = live.pinned();
        assert_eq!(
            po(&g, "type", "singer"),
            vec![("a".into(), 10.0), ("d".into(), 7.0), ("c".into(), 2.0)]
        );
        // Retract the delta row too.
        let mut b2 = WriteBatch::new();
        b2.retract("d", "type", "singer");
        live.commit(&b2);
        let (g, _) = live.pinned();
        assert_eq!(
            po(&g, "type", "singer"),
            vec![("a".into(), 10.0), ("c".into(), 2.0)]
        );
        // Unknown triple/terms: no-op.
        let mut b3 = WriteBatch::new();
        b3.retract("zz", "type", "singer");
        b3.retract("a", "plays", "singer");
        let e = live.commit(&b3);
        assert_eq!(e.value(), 3);
        assert_eq!(live.pinned().0.len(), 3);
    }

    #[test]
    fn assert_replaces_score_of_visible_triple() {
        let live = LiveGraph::new(base());
        let mut b1 = WriteBatch::new();
        b1.assert("b", "type", "singer", 11.0); // base replace
        live.commit(&b1);
        let (g, _) = live.pinned();
        assert_eq!(
            po(&g, "type", "singer"),
            vec![("b".into(), 11.0), ("a".into(), 10.0), ("c".into(), 2.0)]
        );
        let d = g.dictionary();
        let (s, p, o) = (
            d.lookup("b").unwrap(),
            d.lookup("type").unwrap(),
            d.lookup("singer").unwrap(),
        );
        assert_eq!(g.score_of(s, p, o).unwrap().value(), 11.0);
        assert_eq!(g.matches(PatternKey::spo(s, p, o)).len(), 1);
        // Replace the replacement.
        let mut b2 = WriteBatch::new();
        b2.assert("b", "type", "singer", 1.0);
        live.commit(&b2);
        let (g, _) = live.pinned();
        assert_eq!(g.score_of(s, p, o).unwrap().value(), 1.0);
        assert_eq!(g.len(), 4, "replace must not duplicate");
    }

    #[test]
    fn pinned_version_is_isolated_from_later_commits() {
        let live = LiveGraph::new(base());
        let (g0, e0) = live.pinned();
        let before = po(&g0, "type", "singer");
        let mut batch = WriteBatch::new();
        batch.assert("d", "type", "singer", 99.0);
        batch.retract("a", "type", "singer");
        let e1 = live.commit(&batch);
        assert!(e1 > e0);
        // The pinned version still answers exactly as before.
        assert_eq!(po(&g0, "type", "singer"), before);
        // The new version sees the writes.
        assert_ne!(po(&live.pinned().0, "type", "singer"), before);
    }

    #[test]
    fn live_equals_rebuilt_from_scratch() {
        let live = LiveGraph::new(base());
        let mut batch = WriteBatch::new();
        batch.assert("d", "type", "singer", 7.0);
        batch.assert("a", "type", "singer", 5.0); // replace
        batch.retract("c", "type", "singer");
        batch.assert("d", "plays", "drums", 2.0);
        live.commit(&batch);
        let (g, _) = live.pinned();

        let mut b = KnowledgeGraphBuilder::with_policy(crate::DuplicatePolicy::Replace);
        b.add("b", "type", "singer", 4.0);
        b.add("a", "plays", "guitar", 3.0);
        b.add("d", "type", "singer", 7.0);
        b.add("a", "type", "singer", 5.0);
        b.add("d", "plays", "drums", 2.0);
        let rebuilt = b.build();

        assert_eq!(g.len(), rebuilt.len());
        assert_eq!(po(&g, "type", "singer"), po(&rebuilt, "type", "singer"));
        assert_eq!(po(&g, "plays", "drums"), po(&rebuilt, "plays", "drums"));
    }

    #[test]
    fn compaction_folds_and_preserves_answers() {
        let live = LiveGraph::with_policy(base(), CompactionPolicy::never());
        let mut batch = WriteBatch::new();
        batch.assert("d", "type", "singer", 7.0);
        batch.retract("b", "type", "singer");
        live.commit(&batch);
        let before = po(&live.pinned().0, "type", "singer");
        assert!(live.pinned().0.has_overlay());

        let e = live.compact();
        assert_eq!(e.value(), 2);
        let (g, _) = live.pinned();
        assert!(!g.has_overlay());
        assert_eq!(po(&g, "type", "singer"), before);
        assert_eq!(live.stats().compactions, 1);
        assert_eq!(live.stats().delta_rows, 0);
        // Nothing to fold → no-op, epoch unchanged.
        assert_eq!(live.compact(), e);
    }

    #[test]
    fn policy_triggers_automatic_compaction() {
        let policy = CompactionPolicy {
            max_delta_rows: 3,
            max_masked_rows: usize::MAX,
        };
        let live = LiveGraph::with_policy(base(), policy);
        let mut b1 = WriteBatch::new();
        b1.assert("x1", "type", "singer", 1.0);
        b1.assert("x2", "type", "singer", 1.5);
        live.commit(&b1);
        assert!(live.pinned().0.has_overlay());
        let mut b2 = WriteBatch::new();
        b2.assert("x3", "type", "singer", 2.5);
        live.commit(&b2);
        assert!(!live.pinned().0.has_overlay(), "threshold reached → folded");
        assert_eq!(live.stats().compactions, 1);
        assert_eq!(live.pinned().0.len(), 7);
    }

    #[test]
    fn overlay_snapshot_roundtrips_flattened() {
        let live = LiveGraph::with_policy(base(), CompactionPolicy::never());
        let mut batch = WriteBatch::new();
        batch.assert("d", "type", "singer", 7.0);
        batch.retract("a", "plays", "guitar");
        live.commit(&batch);
        let (g, _) = live.pinned();
        assert!(g.has_overlay());
        let bytes = write_snapshot(&g);
        let loaded = read_snapshot(&bytes).unwrap();
        assert!(!loaded.has_overlay());
        assert_eq!(loaded.len(), g.len());
        assert_eq!(po(&loaded, "type", "singer"), po(&g, "type", "singer"));
        assert!(po(&loaded, "plays", "guitar").is_empty());
        // Term ids survive the flatten (layered dict flattening is id-stable).
        for (id, name) in g.dictionary().iter() {
            assert_eq!(loaded.dictionary().lookup(name), Some(id));
        }
    }

    #[test]
    fn term_ids_stay_stable_across_epochs() {
        let live = LiveGraph::with_policy(base(), CompactionPolicy::never());
        let mut b1 = WriteBatch::new();
        b1.assert("newterm", "type", "singer", 1.0);
        live.commit(&b1);
        let (g1, _) = live.pinned();
        let id = g1.dictionary().lookup("newterm").unwrap();
        let mut b2 = WriteBatch::new();
        b2.assert("another", "type", "singer", 1.0);
        live.commit(&b2);
        let (g2, _) = live.pinned();
        assert_eq!(g2.dictionary().lookup("newterm"), Some(id));
        assert!(g2.dictionary().lookup("another").unwrap() > id);
    }

    #[test]
    fn spo_lookup_sees_delta_and_masks() {
        let live = LiveGraph::with_policy(base(), CompactionPolicy::never());
        let mut batch = WriteBatch::new();
        batch.retract("a", "type", "singer");
        batch.assert("d", "type", "singer", 7.0);
        live.commit(&batch);
        let (g, _) = live.pinned();
        let d = g.dictionary();
        let (a, dd, ty, singer) = (
            d.lookup("a").unwrap(),
            d.lookup("d").unwrap(),
            d.lookup("type").unwrap(),
            d.lookup("singer").unwrap(),
        );
        assert!(g.matches(PatternKey::spo(a, ty, singer)).is_empty());
        assert!(!g.contains(a, ty, singer));
        let m = g.matches(PatternKey::spo(dd, ty, singer));
        assert_eq!(m.len(), 1);
        assert_eq!(m.score_at(0).value(), 7.0);
        assert!(g.contains(dd, ty, singer));
    }
}
